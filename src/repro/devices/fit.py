"""Fit device response curves from measurements.

The shipped device profiles are calibrated to the paper's tables; a
downstream user with different hardware needs the *inverse* operation:
given a per-node I/O sweep (their fio measurements) and the machine's
DMA paths, recover the deficit curve
``bw = cap − beta·(ref − path)^gamma``.

:func:`fit_response_curve` solves the bounded least-squares problem
with :mod:`scipy.optimize`; :func:`fit_engine_profile` wraps the result
into a ready-to-attach :class:`~repro.devices.response.EngineProfile`.
The calibration recipe in ``docs/calibration.md`` §4 is exactly this
function run by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import optimize

from repro.devices.response import EngineProfile, ResponseCurve
from repro.errors import DeviceError
from repro.topology.machine import Machine

__all__ = ["CurveFit", "fit_response_curve", "fit_engine_profile"]


@dataclass(frozen=True)
class CurveFit:
    """A fitted curve plus its quality."""

    curve: ResponseCurve
    residual_rms_gbps: float
    max_abs_error_gbps: float

    def render(self) -> str:
        """One-line summary."""
        c = self.curve
        return (
            f"cap={c.cap_gbps:.2f} ref={c.path_ref_gbps:.1f} "
            f"beta={c.beta:.4g} gamma={c.gamma:.3f} "
            f"(rms {self.residual_rms_gbps:.2f}, "
            f"worst {self.max_abs_error_gbps:.2f} Gbps)"
        )


def fit_response_curve(
    path_gbps: Mapping[int, float],
    measured_gbps: Mapping[int, float],
    path_ref_gbps: float | None = None,
) -> CurveFit:
    """Fit ``(cap, beta, gamma)`` to per-node (path, bandwidth) samples.

    Parameters
    ----------
    path_gbps:
        node -> DMA-path bandwidth of the placement (from
        :meth:`~repro.topology.machine.Machine.dma_path_gbps` or an
        Algorithm 1 model).
    measured_gbps:
        node -> measured I/O bandwidth of the same placement.
    path_ref_gbps:
        Saturation anchor; defaults to the largest *non-local* path in
        the data (the class-1 level, per the calibration recipe).

    Raises
    ------
    DeviceError
        With fewer than three distinct path levels (the curve has three
        parameters).
    """
    common = sorted(set(path_gbps) & set(measured_gbps))
    if len(common) < 3:
        raise DeviceError(
            f"need >= 3 common nodes to fit a curve, got {len(common)}"
        )
    paths = np.array([path_gbps[n] for n in common], dtype=float)
    bws = np.array([measured_gbps[n] for n in common], dtype=float)
    if (paths <= 0).any() or (bws <= 0).any():
        raise DeviceError("paths and bandwidths must be positive")
    if len(np.unique(np.round(paths, 3))) < 3:
        raise DeviceError(
            "need >= 3 distinct path levels to identify the curve shape"
        )
    ref = float(path_ref_gbps) if path_ref_gbps is not None else float(
        np.sort(paths)[-2]
    )

    def predict(params: np.ndarray) -> np.ndarray:
        # No 5 %-of-cap floor here: clamping inside the fit would zero
        # the gradient for deeply-degraded points and strand the
        # optimizer; the floor applies only when the curve is *used*.
        cap, beta, gamma = params
        deficit = np.maximum(0.0, ref - paths)
        return cap - beta * deficit**gamma

    def residuals(params: np.ndarray) -> np.ndarray:
        return predict(params) - bws

    cap0 = float(bws.max())
    deficit = np.maximum(ref - paths, 0.0)
    mask = deficit > 1e-6
    beta0 = (
        float(np.median((cap0 - bws[mask]) / np.maximum(deficit[mask], 1e-6)))
        if mask.any()
        else 0.01
    )
    result = optimize.least_squares(
        residuals,
        x0=[cap0, max(beta0, 1e-4), 1.5],
        bounds=([bws.max() * 0.8, 1e-9, 0.05], [bws.max() * 1.5, 1e3, 6.0]),
    )
    cap, beta, gamma = (float(v) for v in result.x)
    curve = ResponseCurve(cap_gbps=cap, path_ref_gbps=ref, beta=beta, gamma=gamma)
    errors = predict(result.x) - bws
    return CurveFit(
        curve=curve,
        residual_rms_gbps=float(np.sqrt(np.mean(errors**2))),
        max_abs_error_gbps=float(np.abs(errors).max()),
    )


def fit_engine_profile(
    machine: Machine,
    device_node: int,
    direction: str,
    measured_gbps: Mapping[int, float],
    name: str,
    path_ref_gbps: float | None = None,
    **profile_kwargs,
) -> EngineProfile:
    """Fit a full engine profile from a per-node I/O sweep.

    Computes the DMA paths for ``direction`` against ``device_node``,
    fits the curve (``path_ref_gbps`` anchors saturation, defaulting as
    in :func:`fit_response_curve`), and returns an
    :class:`EngineProfile` carrying it (remaining profile parameters
    pass through ``profile_kwargs``).
    """
    if direction == "write":
        paths = {n: machine.dma_path_gbps(n, device_node) for n in machine.node_ids}
    elif direction == "read":
        paths = {n: machine.dma_path_gbps(device_node, n) for n in machine.node_ids}
    else:
        raise DeviceError(f"direction must be 'write' or 'read', got {direction!r}")
    fit = fit_response_curve(paths, measured_gbps, path_ref_gbps=path_ref_gbps)
    return EngineProfile(name=name, curve=fit.curve, **profile_kwargs)
