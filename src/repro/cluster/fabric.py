"""Switched clusters: many NUMA hosts behind one Ethernet switch.

Generalises the back-to-back pair of :mod:`repro.cluster.twohost` to a
data-transfer-cluster: each host keeps its own fabric/NUMA behaviour,
every transfer composes sender-side service, receiver-side service and
the wire — and now hosts' *uplinks* and the switch backplane are shared
resources, so an all-to-all shuffle contends in three places at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.engines import StreamPlacement, device_service_levels
from repro.cluster.link import EthernetLink
from repro.cluster.twohost import _ENGINE_PROFILES
from repro.errors import BenchmarkError
from repro.flows.flow import Flow
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.solver.session import SolverSession
from repro.topology.machine import Machine
from repro.units import GB

__all__ = ["Transfer", "TransferOutcome", "SwitchedCluster"]


@dataclass(frozen=True)
class Transfer:
    """One bulk transfer between two cluster hosts.

    ``src_node`` / ``dst_node`` of ``None`` mean "well tuned" on that
    side, as in the two-host runner.
    """

    name: str
    src_host: str
    dst_host: str
    engine: str = "rdma"
    numjobs: int = 4
    src_node: int | None = None
    dst_node: int | None = None
    size_bytes: float = 40 * GB

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_PROFILES:
            raise BenchmarkError(
                f"transfer {self.name!r}: unknown engine {self.engine!r}"
            )
        if self.src_host == self.dst_host:
            raise BenchmarkError(
                f"transfer {self.name!r}: source and destination host must differ"
            )
        if self.numjobs < 1 or self.size_bytes <= 0:
            raise BenchmarkError(f"transfer {self.name!r}: bad job shape")


@dataclass(frozen=True)
class TransferOutcome:
    """Result of one transfer within a cluster run.

    Healthy runs always report ``status="ok"``.  Under a fault plan a
    transfer may instead report ``"recovered"`` (streams waited out a
    fault via retries), ``"rerouted"`` (streams continued on an
    alternative route) or ``"failed"`` (retry budget exhausted; the
    aggregate covers the partial bytes moved and ``reason`` says why).
    """

    name: str
    aggregate_gbps: float
    duration_s: float
    src_placement: tuple[str, int]
    dst_placement: tuple[str, int]
    status: str = "ok"
    reason: str | None = None
    retries: int = 0
    reroutes: int = 0


class SwitchedCluster:
    """Hosts behind one switch.

    Parameters
    ----------
    hosts:
        name -> NIC-equipped machine.
    uplink:
        Each host's cable to the switch (shared by all of that host's
        concurrent transfers, in and out separately).
    backplane_gbps:
        Switch fabric capacity shared by everything.
    """

    def __init__(
        self,
        hosts: dict[str, Machine],
        uplink: EthernetLink | None = None,
        backplane_gbps: float = 160.0,
        registry: RngRegistry | None = None,
        nic_name: str = "nic",
    ) -> None:
        if len(hosts) < 2:
            raise BenchmarkError("a cluster needs at least two hosts")
        for name, machine in hosts.items():
            if nic_name not in machine.devices:
                raise BenchmarkError(
                    f"host {name!r} ({machine.name!r}) has no device {nic_name!r}"
                )
        if backplane_gbps <= 0:
            raise BenchmarkError("backplane capacity must be positive")
        self.hosts = dict(hosts)
        self.uplink = uplink or EthernetLink()
        self.backplane_gbps = backplane_gbps
        self.registry = registry or RngRegistry()
        self.nic_name = nic_name
        # Cluster capacity maps are assembled per run, so the session is
        # machine-less: it contributes the shared allocation memo and the
        # instrumentation across repeated run() calls.
        self.session = SolverSession()

    # --- helpers ----------------------------------------------------------
    def _host(self, name: str) -> Machine:
        try:
            return self.hosts[name]
        except KeyError as exc:
            raise BenchmarkError(
                f"unknown host {name!r}; cluster has {sorted(self.hosts)}"
            ) from exc

    def _levels(self, machine: Machine, profile_name: str, node: int,
                numjobs: int, direction: str) -> list[float]:
        nic = machine.devices[self.nic_name]
        profile = nic.engine(profile_name)
        placements = [
            StreamPlacement(cpu_node=node, mem_node=node) for _ in range(numjobs)
        ]
        return device_service_levels(machine, nic, profile, placements, direction)

    def _best_node(self, machine: Machine, profile_name: str, direction: str) -> int:
        return max(
            machine.node_ids,
            key=lambda n: (self._levels(machine, profile_name, n, 1, direction)[0], -n),
        )

    # --- execution -----------------------------------------------------------
    def run(
        self,
        transfers: list[Transfer],
        run_idx: int = 0,
        fault_plan=None,
        retry=None,
    ) -> dict[str, TransferOutcome]:
        """Run all ``transfers`` concurrently across the cluster.

        Parameters
        ----------
        transfers, run_idx:
            The workload and the per-run RNG namespace.
        fault_plan:
            Optional :class:`~repro.faults.plan.FaultPlan`.  When given,
            the run goes through the degraded-mode simulator: streams hit
            by an active fault retry with seeded exponential backoff and
            transfers whose budget is exhausted complete with
            ``status="failed"`` instead of raising.  ``None`` (the
            default) keeps the healthy fast path bit-identical.
        retry:
            Optional :class:`~repro.faults.degraded.RetryPolicy`
            (fault-plan runs only).
        """
        if not transfers:
            raise BenchmarkError("need at least one transfer")
        names = [t.name for t in transfers]
        if len(set(names)) != len(names):
            raise BenchmarkError(f"duplicate transfer names: {sorted(names)}")

        capacities: dict[str, float] = {"backplane": self.backplane_gbps}
        for host in self.hosts:
            capacities[f"uplink-tx:{host}"] = self.uplink.payload_gbps
            capacities[f"uplink-rx:{host}"] = self.uplink.payload_gbps

        flows: list[Flow] = []
        meta: dict[str, Transfer] = {}
        placements: dict[str, tuple[tuple[str, int], tuple[str, int]]] = {}
        for t in transfers:
            src_machine = self._host(t.src_host)
            dst_machine = self._host(t.dst_host)
            send_profile, recv_profile = _ENGINE_PROFILES[t.engine]
            src_node = (
                t.src_node if t.src_node is not None
                else self._best_node(src_machine, send_profile, "write")
            )
            dst_node = (
                t.dst_node if t.dst_node is not None
                else self._best_node(dst_machine, recv_profile, "read")
            )
            for machine, node, role in ((src_machine, src_node, "source"),
                                        (dst_machine, dst_node, "destination")):
                if node not in machine.node_ids:
                    raise BenchmarkError(
                        f"transfer {t.name!r}: unknown {role} node {node}"
                    )
            send_levels = self._levels(src_machine, send_profile, src_node,
                                       t.numjobs, "write")
            recv_levels = self._levels(dst_machine, recv_profile, dst_node,
                                       t.numjobs, "read")
            levels = [min(s, r) for s, r in zip(send_levels, recv_levels)]

            nic = src_machine.devices[self.nic_name]
            profile = nic.engine(send_profile)
            service = nic.dma.per_stream_caps(levels)
            noise = NoiseModel(
                self.registry.stream(f"cluster/{t.name}/run{run_idx}")
            )
            sigma = (profile.sigma if t.numjobs < profile.crowd_threshold
                     else profile.crowd_sigma)
            stream_noise = noise.factors(sigma, t.numjobs)

            dev_tx = f"nic-tx:{t.src_host}"
            dev_rx = f"nic-rx:{t.dst_host}"
            capacities.setdefault(dev_tx, 0.0)
            capacities.setdefault(dev_rx, 0.0)
            agg = sum(levels) / len(levels)
            capacities[dev_tx] = max(capacities[dev_tx], agg)
            capacities[dev_rx] = max(capacities[dev_rx], agg)

            for i in range(t.numjobs):
                demand = service[i]
                if profile.per_stream_cap_gbps is not None:
                    demand = min(demand, profile.per_stream_cap_gbps)
                if profile.cpu_gbps_per_stream is not None:
                    cores = src_machine.node(src_node).n_cores
                    demand = min(
                        demand,
                        profile.cpu_gbps_per_stream * min(1.0, cores / t.numjobs),
                    )
                flows.append(
                    Flow(
                        name=f"{t.name}/{i}",
                        resources=(
                            dev_tx, dev_rx,
                            f"uplink-tx:{t.src_host}",
                            f"uplink-rx:{t.dst_host}",
                            "backplane",
                        ),
                        demand_gbps=demand * float(stream_noise[i]),
                        size_bytes=float(t.size_bytes),
                    )
                )
            meta[t.name] = t
            placements[t.name] = ((t.src_host, src_node), (t.dst_host, dst_node))

        if fault_plan is not None:
            return self._run_degraded(
                flows, capacities, meta, placements, fault_plan, retry, run_idx
            )
        outcomes = self.session.simulate(flows, capacities)
        results: dict[str, TransferOutcome] = {}
        for name, t in meta.items():
            mine = {k: o for k, o in outcomes.items()
                    if k.rsplit("/", 1)[0] == name}
            results[name] = TransferOutcome(
                name=name,
                aggregate_gbps=sum(o.avg_gbps for o in mine.values()),
                duration_s=max(o.finish_s for o in mine.values()),
                src_placement=placements[name][0],
                dst_placement=placements[name][1],
            )
        return results

    def _run_degraded(
        self, flows, capacities, meta, placements, fault_plan, retry, run_idx
    ) -> dict[str, TransferOutcome]:
        """Fault-plan path of :meth:`run`: structured partial results."""
        from repro.faults.degraded import DegradedFlowRunner

        runner = DegradedFlowRunner(
            capacities,
            plan=fault_plan,
            rng=self.registry.stream(f"cluster/faults/run{run_idx}"),
            retry=retry,
            stats=self.session.stats,
        )
        outcomes = runner.simulate(flows)
        results: dict[str, TransferOutcome] = {}
        for name in meta:
            mine = [o for k, o in sorted(outcomes.items())
                    if k.rsplit("/", 1)[0] == name]
            failed = [o for o in mine if o.status == "failed"]
            if failed:
                status, reason = "failed", failed[0].reason
            elif any(o.status == "rerouted" for o in mine):
                status, reason = "rerouted", None
            elif any(o.status == "recovered" for o in mine):
                status, reason = "recovered", None
            else:
                status, reason = "ok", None
            results[name] = TransferOutcome(
                name=name,
                aggregate_gbps=sum(o.avg_gbps for o in mine),
                duration_s=max(o.finish_s for o in mine),
                src_placement=placements[name][0],
                dst_placement=placements[name][1],
                status=status,
                reason=reason,
                retries=sum(o.retries for o in mine),
                reroutes=sum(o.reroutes for o in mine),
            )
        return results
