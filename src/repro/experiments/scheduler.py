"""S1 — the §V-B scheduling application.

"Instead of allocating all application processes to node 7 only, we can
evenly split the task processes among all nodes in class 1 and class 2.
Therefore, the overall performance will be improved due to much less
contention for shared resources."

We take 16 RDMA_WRITE tasks, compare the advisor's spread placement
against the naive all-local binding, and require a measurable win.
"""

from __future__ import annotations

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.experiments.common import (
    IO_NODE,
    check,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import operation_sweep

TITLE = "Scheduler application: spread RDMA_WRITE across classes 1+2 vs all-local"

N_TASKS = 16


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Advisor spread vs naive local binding, measured end to end."""
    m = default_machine(machine)
    registry = default_registry(registry)
    model = IOModelBuilder(m, registry=registry, runs=10 if quick else 100).build(
        IO_NODE, "write"
    )
    runner = FioRunner(m, registry=registry)
    rdma_write = operation_sweep(runner, "rdma", "write", numjobs=4)

    advisor = PlacementAdvisor(m, model, rdma_write, tolerance=0.05)
    plan = advisor.advise(N_TASKS)
    naive = advisor.naive_plan(N_TASKS)

    def measure(tag: str, stream_nodes) -> float:
        job = FioJob(
            name=f"s1-{tag}",
            engine="rdma",
            rw="write",
            numjobs=len(stream_nodes),
            stream_nodes=tuple(stream_nodes),
        )
        return runner.run(job).aggregate_gbps

    spread_gbps = measure("spread", plan.stream_nodes())
    local_gbps = measure("local", naive.stream_nodes())
    gain = spread_gbps / local_gbps - 1.0

    checks = (
        check(
            "advisor selects classes 1 and 2 as equivalent",
            plan.classes_used == (1, 2),
            f"got {plan.classes_used}",
        ),
        check(
            "spread placement uses every class-1/2 node",
            set(plan.nodes) == {0, 1, 4, 5, 6, 7},
            f"got {plan.nodes}",
        ),
        check(
            "spread beats all-local by >5 %",
            gain > 0.05,
            f"spread {spread_gbps:.2f} vs local {local_gbps:.2f} Gbps "
            f"(+{100 * gain:.1f} %)",
        ),
    )
    text = "\n".join(
        [
            f"advisor plan: {plan.render()}",
            f"naive plan:   {naive.render()}",
            f"measured: spread {spread_gbps:.2f} Gbps, all-local {local_gbps:.2f} Gbps "
            f"(+{100 * gain:.1f} %)",
        ]
    )
    return ExperimentResult(
        exp_id="s1", title=TITLE, text=text,
        data={"spread": spread_gbps, "local": local_gbps, "gain": gain},
        checks=checks,
    )
