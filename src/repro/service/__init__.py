"""The resilient placement-advisory service.

``repro.service`` is the operational front end the paper argues for in
§V–VI: the class model exists so a scheduler can ask "where do I place
this I/O task" cheaply — and keep asking while the fabric misbehaves.
Stdlib-only asyncio JSON-RPC over TCP or stdio, backed by the warm
:class:`~repro.solver.session.SolverSession` registry so repeated
placement queries amortise capacity and allocation caches.

Answers flow through a **three-tier answer path**
(:mod:`repro.service.tiers`): an analytic closed-form fit (tier 1,
microseconds), memoized class snapshots (tier 2, bit-identical to the
solver path), and the full Algorithm 1 solve (tier 3) that refreshes
the fast tiers — every response tagged ``{"tier", "staleness_s"}``,
identical in-flight solves coalesced onto one pending build.

The robustness machinery is the point:

* schema-validated requests with **typed errors** (never a traceback
  over the wire);
* per-request **deadlines** with real cancellation;
* a bounded admission queue with explicit **backpressure** rejection;
* a **circuit breaker** that trips on repeated solver failures and
  serves *degraded class-level answers* (last-good per-class bandwidths
  from the most recent characterization) until half-open probes succeed;
* graceful **drain** on shutdown;
* a deterministic **chaos soak** that drives scripted traffic while a
  :class:`~repro.faults.plan.FaultPlan` fires mid-stream;
* an always-on **live metrics plane** (:mod:`repro.obs.live`): per
  method/tier latency histograms, a bounded flight recorder dumped on
  breaker trips and crashes, a model **drift watch** over every tier-3
  solve, all served by the ``metrics`` method and ``repro-numa obs
  scrape`` / ``obs top`` / ``obs tail``.
"""

from repro.service.backend import AdvisoryBackend, ClassSnapshot, SessionPool
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import (
    ERROR_CODES,
    METHODS,
    TIER_NAMES,
    decode_request,
    encode_message,
    error_response,
    result_response,
    validate_params,
)
from repro.service.tiers import (
    TIER_ANALYTIC,
    TIER_CLASS,
    TIER_SOLVE,
    AnalyticFit,
    TierEntry,
    TierStore,
    stamp_tier,
)
from repro.service.server import (
    AsyncPlacementServer,
    PlacementService,
    ServiceConfig,
    serve_stdio,
)
from repro.service.soak import (
    ConvergenceReport,
    SoakReport,
    build_derate_plan,
    build_soak_plan,
    run_convergence_soak,
    run_soak,
)

__all__ = [
    "AdvisoryBackend",
    "ClassSnapshot",
    "SessionPool",
    "CircuitBreaker",
    "ERROR_CODES",
    "METHODS",
    "TIER_NAMES",
    "TIER_ANALYTIC",
    "TIER_CLASS",
    "TIER_SOLVE",
    "AnalyticFit",
    "TierEntry",
    "TierStore",
    "stamp_tier",
    "decode_request",
    "encode_message",
    "error_response",
    "result_response",
    "validate_params",
    "AsyncPlacementServer",
    "PlacementService",
    "ServiceConfig",
    "serve_stdio",
    "ConvergenceReport",
    "SoakReport",
    "build_derate_plan",
    "build_soak_plan",
    "run_convergence_soak",
    "run_soak",
]
