"""IRQ locality model."""

import pytest

from repro.devices.interrupts import IrqModel
from repro.errors import DeviceError


class TestIrqModel:
    def test_penalty_on_irq_node(self):
        irq = IrqModel(irq_node=7)
        assert irq.factor(cpu_node=7, sensitivity=0.966) == pytest.approx(0.966)

    def test_no_penalty_elsewhere(self):
        irq = IrqModel(irq_node=7)
        assert irq.factor(cpu_node=6, sensitivity=0.966) == 1.0

    def test_offloaded_protocols_immune(self):
        irq = IrqModel(irq_node=7)
        assert irq.factor(cpu_node=7, sensitivity=1.0) == 1.0

    def test_invalid_sensitivity(self):
        irq = IrqModel(irq_node=7)
        with pytest.raises(DeviceError):
            irq.factor(cpu_node=7, sensitivity=0.0)
        with pytest.raises(DeviceError):
            irq.factor(cpu_node=7, sensitivity=1.5)

    def test_invalid_node(self):
        with pytest.raises(DeviceError):
            IrqModel(irq_node=-1)
