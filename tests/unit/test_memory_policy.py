"""Memory policies and bindings."""

import pytest

from repro.errors import AllocationError
from repro.memory.policy import AllocPolicy, MemBinding


class TestConstructors:
    def test_local_default(self):
        binding = MemBinding.local()
        assert binding.policy is AllocPolicy.LOCAL_PREFERRED
        assert binding.nodes == ()

    def test_bind(self):
        binding = MemBinding.bind(3, 5)
        assert binding.policy is AllocPolicy.BIND
        assert binding.nodes == (3, 5)

    def test_interleave(self):
        binding = MemBinding.interleave(0, 1, 2)
        assert binding.policy is AllocPolicy.INTERLEAVE

    def test_preferred(self):
        binding = MemBinding.preferred(4)
        assert binding.nodes == (4,)


class TestValidation:
    def test_local_preferred_rejects_nodes(self):
        with pytest.raises(AllocationError):
            MemBinding(policy=AllocPolicy.LOCAL_PREFERRED, nodes=(1,))

    def test_bind_requires_nodes(self):
        with pytest.raises(AllocationError):
            MemBinding(policy=AllocPolicy.BIND, nodes=())

    def test_preferred_takes_exactly_one(self):
        with pytest.raises(AllocationError):
            MemBinding(policy=AllocPolicy.PREFERRED, nodes=(1, 2))

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(AllocationError):
            MemBinding.bind(1, 1)
