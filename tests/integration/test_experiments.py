"""Every registered experiment runs and passes its shape checks.

Quick mode keeps the suite fast; the benchmark harness runs the full
protocol and EXPERIMENTS.md records the full-mode numbers.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.errors import ReproError


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
def test_experiment_passes(exp_id):
    result = run_experiment(exp_id, quick=True)
    assert result.exp_id == exp_id
    failed = result.failed_checks()
    assert not failed, "\n".join(c.render() for c in failed)


@pytest.mark.parametrize("exp_id", EXPERIMENTS)
def test_experiment_render(exp_id):
    result = run_experiment(exp_id, quick=True)
    text = result.render()
    assert result.title in text
    assert "[PASS]" in text


def test_unknown_experiment_rejected():
    with pytest.raises(ReproError):
        get_experiment("nope")


def test_experiments_deterministic():
    a = run_experiment("f10", quick=True)
    b = run_experiment("f10", quick=True)
    assert a.data == b.data
