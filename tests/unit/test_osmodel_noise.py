"""Measurement noise model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry


@pytest.fixture()
def noise(registry):
    return NoiseModel(registry.stream("test/noise"))


class TestFactor:
    def test_zero_sigma_is_identity(self, noise):
        assert noise.factor(0.0) == 1.0
        assert (noise.factors(0.0, 5) == 1.0).all()

    def test_mean_is_one(self, registry):
        noise = NoiseModel(registry.stream("test/mean"))
        draws = noise.factors(0.05, 20000)
        assert float(np.mean(draws)) == pytest.approx(1.0, abs=0.005)

    def test_dispersion_scales_with_sigma(self, registry):
        quiet = NoiseModel(registry.stream("q")).factors(0.01, 5000)
        loud = NoiseModel(registry.stream("q")).factors(0.05, 5000)
        assert float(np.std(loud)) > 3 * float(np.std(quiet))

    def test_deterministic_per_stream(self, registry):
        a = NoiseModel(registry.stream("same")).factors(0.02, 10)
        b = NoiseModel(RngRegistry().stream("same")).factors(0.02, 10)
        assert (a == b).all()

    def test_negative_sigma_rejected(self, noise):
        with pytest.raises(SimulationError):
            noise.factor(-0.1)
        with pytest.raises(SimulationError):
            noise.factors(-0.1, 3)

    def test_zero_draws_rejected(self, noise):
        with pytest.raises(SimulationError):
            noise.factors(0.01, 0)

    def test_factors_positive(self, noise):
        assert (noise.factors(0.1, 1000) > 0).all()
