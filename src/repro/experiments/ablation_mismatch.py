"""A2 — §IV-B/§V flagship: STREAM models mispredict I/O; memcpy predicts.

Cross-correlates three candidate models of node 7 (STREAM CPU-centric,
STREAM memory-centric, and the proposed memcpy read model) against the
measured read-direction operations, and demonstrates the rank reversal:
STREAM puts {0,1} far above {2,3}; RDMA_READ measures the opposite.
"""

from __future__ import annotations

from repro.analysis.mismatch import mismatch_report
from repro.bench.fio import FioRunner
from repro.bench.stream import StreamBenchmark
from repro.core.iomodel import IOModelBuilder
from repro.experiments.common import (
    IO_NODE,
    check,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import READ_OPERATIONS, operation_sweep

TITLE = "Ablation: STREAM models vs the memcpy model as I/O predictors"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Build all three models, measure read operations, compare."""
    m = default_machine(machine)
    registry = default_registry(registry)
    runs = 10 if quick else 100

    stream = StreamBenchmark(m, registry=registry, runs=runs)
    models = {
        "stream_cpu_centric": stream.cpu_centric(IO_NODE),
        "stream_mem_centric": stream.memory_centric(IO_NODE),
        "iomodel_read": IOModelBuilder(m, registry=registry, runs=runs)
        .build(IO_NODE, "read")
        .values,
    }
    runner = FioRunner(m, registry=registry)
    operations = {
        label: operation_sweep(runner, engine, rw, numjobs)
        for label, (engine, rw, numjobs) in READ_OPERATIONS.items()
    }
    report = mismatch_report(models, operations)

    checks = (
        check(
            "memcpy read model is the best predictor of read-direction I/O",
            report.best_model() == "iomodel_read",
            f"mean rho: iomodel {report.mean_rho('iomodel_read'):+.3f}, "
            f"cpu-centric {report.mean_rho('stream_cpu_centric'):+.3f}, "
            f"mem-centric {report.mean_rho('stream_mem_centric'):+.3f}",
        ),
        check(
            "rank reversal: CPU-centric STREAM says {0,1} > {2,3}, "
            "RDMA_READ says the opposite",
            report.reversal_demonstrated("stream_cpu_centric", "RDMA_READ"),
        ),
        check(
            "rank reversal also visible vs the memory-centric model",
            report.reversal_demonstrated("stream_mem_centric", "RDMA_READ"),
        ),
        check(
            "memcpy model agrees with RDMA_READ on the {0,1}/{2,3} ordering",
            not report.reversal_demonstrated("iomodel_read", "RDMA_READ"),
        ),
    )
    return ExperimentResult(
        exp_id="a2", title=TITLE, text=report.render(),
        data={model: report.mean_rho(model) for model in models},
        checks=checks,
    )
