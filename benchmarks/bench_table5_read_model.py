"""T5 — Table V: device-read model validated against TCP/RDMA/SSD."""


def test_table5_read_model(run_paper_experiment):
    result = run_paper_experiment("t5")
    assert set(result.data["measurements"]) == {
        "TCP receiver", "RDMA_READ", "SSD read"
    }
