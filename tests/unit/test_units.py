"""Unit conversions."""

import pytest

from repro import units


class TestBandwidthConversions:
    def test_gbps_to_bytes_per_s(self):
        assert units.gbps_to_bytes_per_s(8.0) == 1e9

    def test_bytes_per_s_to_gbps(self):
        assert units.bytes_per_s_to_gbps(1e9) == 8.0

    def test_roundtrip(self):
        for value in (0.001, 1.0, 25.0, 400.0):
            assert units.bytes_per_s_to_gbps(
                units.gbps_to_bytes_per_s(value)
            ) == pytest.approx(value)

    def test_gbps_from_transfer(self):
        # 1 GB in 1 second = 8 Gbps.
        assert units.gbps(1e9, 1.0) == pytest.approx(8.0)

    def test_gbps_rejects_zero_time(self):
        with pytest.raises(ValueError):
            units.gbps(100, 0.0)

    def test_gbps_rejects_negative_time(self):
        with pytest.raises(ValueError):
            units.gbps(100, -1.0)

    def test_transfer_time(self):
        assert units.transfer_time(1e9, 8.0) == pytest.approx(1.0)

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(100, 0.0)


class TestHtRaw:
    def test_x16_at_3p2(self):
        assert units.ht_raw_gbps(16, 3.2) == pytest.approx(51.2)

    def test_x8_at_3p2(self):
        assert units.ht_raw_gbps(8, 3.2) == pytest.approx(25.6)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            units.ht_raw_gbps(0, 3.2)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.ht_raw_gbps(16, -1)


class TestPcie:
    def test_gen2_x8_is_32gbps(self):
        # The paper's NIC: 40 Gbps raw, 32 usable after 8b/10b.
        assert units.pcie_data_gbps(8, 2) == pytest.approx(32.0)

    def test_gen1_x8(self):
        assert units.pcie_data_gbps(8, 1) == pytest.approx(16.0)

    def test_gen3_encoding(self):
        assert units.pcie_data_gbps(1, 3) == pytest.approx(8.0 * 128 / 130)

    def test_rejects_unknown_gen(self):
        with pytest.raises(ValueError):
            units.pcie_data_gbps(8, 9)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            units.pcie_data_gbps(0, 2)


class TestFormatting:
    def test_fmt_gbps(self):
        assert units.fmt_gbps(21.339) == "21.34 Gbps"

    def test_fmt_bytes_small(self):
        assert units.fmt_bytes(512) == "512 B"

    def test_fmt_bytes_kib(self):
        assert units.fmt_bytes(131072) == "128.0 KiB"

    def test_fmt_bytes_gib(self):
        assert units.fmt_bytes(4 * units.GiB) == "4.0 GiB"

    def test_size_constants(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GB == 10**9
        assert units.CACHE_LINE == 64
