"""The fault taxonomy: factors, description mutation, windows."""

import pytest

from repro.errors import FaultError
from repro.faults.events import (
    FaultEvent,
    IrqStorm,
    LinkDegrade,
    LinkFail,
    MemoryThrottle,
    NicPortFlap,
    SsdWearThrottle,
)
from repro.topology.serialize import machine_from_dict, machine_to_dict


class TestFactorValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_degrade_factor_bounds(self, bad):
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=7, factor=bad)

    def test_self_link_rejected(self):
        with pytest.raises(FaultError):
            LinkDegrade(src=3, dst=3, factor=0.5)
        with pytest.raises(FaultError):
            LinkFail(a=3, b=3)

    def test_throttle_factor_bounds(self):
        with pytest.raises(FaultError):
            MemoryThrottle(node=0, factor=0.0)
        with pytest.raises(FaultError):
            IrqStorm(node=0, factor=2.0)
        with pytest.raises(FaultError):
            SsdWearThrottle(factor=-1.0)


class TestCapacityFactors:
    def test_link_degrade_one_direction(self):
        fault = LinkDegrade(src=2, dst=7, factor=0.5)
        assert fault.capacity_factors() == {"link-dma:2>7": 0.5}

    def test_link_fail_both_directions(self):
        fault = LinkFail(a=2, b=7)
        assert fault.capacity_factors() == {
            "link-dma:2>7": 0.0,
            "link-dma:7>2": 0.0,
        }

    def test_memory_throttle_hits_both_controllers(self):
        assert MemoryThrottle(node=3, factor=0.4).capacity_factors() == {
            "ctrl-dma:3": 0.4,
            "ctrl-pio:3": 0.4,
        }

    def test_irq_storm_hits_pio_only(self):
        assert IrqStorm(node=3, factor=0.4).capacity_factors() == {
            "ctrl-pio:3": 0.4,
        }

    def test_nic_flap_host_mode(self):
        factors = NicPortFlap(host="h1").capacity_factors()
        assert factors == {
            "nic-tx:h1": 0.0,
            "nic-rx:h1": 0.0,
            "uplink-tx:h1": 0.0,
            "uplink-rx:h1": 0.0,
        }

    def test_nic_flap_device_mode(self):
        assert NicPortFlap().capacity_factors() == {
            "dev:nic:write": 0.0,
            "dev:nic:read": 0.0,
        }

    def test_ssd_wear_asymmetric(self):
        assert SsdWearThrottle(factor=0.3, read_factor=0.9).capacity_factors() == {
            "dev:ssd:write": 0.3,
            "dev:ssd:read": 0.9,
        }


class TestDescriptionMutation:
    def test_link_degrade_scales_credit(self, bare_host):
        data = machine_to_dict(bare_host)
        before = next(
            e for e in data["links"] if e["src"] == 0 and e["dst"] == 7
        )["dma_credit"]
        LinkDegrade(src=0, dst=7, factor=0.5).mutate_description(data)
        entry = next(e for e in data["links"] if e["src"] == 0 and e["dst"] == 7)
        assert entry["dma_credit"] == pytest.approx(0.5 * before)
        assert entry["pio_cap_gbps"] is not None
        machine_from_dict(data)  # still a valid machine

    def test_link_fail_removes_both_directions(self, bare_host):
        data = machine_to_dict(bare_host)
        LinkFail(a=0, b=7).mutate_description(data)
        pairs = {(e["src"], e["dst"]) for e in data["links"]}
        assert (0, 7) not in pairs and (7, 0) not in pairs

    def test_link_fail_is_idempotent(self, bare_host):
        data = machine_to_dict(bare_host)
        LinkFail(a=0, b=7).mutate_description(data)
        n_links = len(data["links"])
        LinkFail(a=0, b=7).mutate_description(data)  # no-op, no error
        assert len(data["links"]) == n_links

    def test_link_fail_unknown_node_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        with pytest.raises(FaultError):
            LinkFail(a=0, b=99).mutate_description(data)

    def test_missing_link_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=6, factor=0.5).mutate_description(data)

    def test_memory_throttle_scales_node(self, bare_host):
        data = machine_to_dict(bare_host)
        before = data["nodes"][2]["dram_gbps"]
        MemoryThrottle(node=data["nodes"][2]["node_id"], factor=0.25
                       ).mutate_description(data)
        assert data["nodes"][2]["dram_gbps"] == pytest.approx(0.25 * before)

    def test_unknown_node_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        with pytest.raises(FaultError):
            MemoryThrottle(node=99, factor=0.5).mutate_description(data)

    def test_resource_faults_have_no_static_form(self, bare_host):
        data = machine_to_dict(bare_host)
        with pytest.raises(FaultError):
            NicPortFlap().mutate_description(data)
        with pytest.raises(FaultError):
            SsdWearThrottle(factor=0.5).mutate_description(data)


class TestFaultEvent:
    def test_window_semantics(self):
        event = FaultEvent(LinkFail(a=0, b=7), at_s=1.0, until_s=2.0)
        assert not event.active_at(0.5)
        assert event.active_at(1.0)
        assert event.active_at(1.999)
        assert not event.active_at(2.0)

    def test_permanent_event(self):
        event = FaultEvent(LinkFail(a=0, b=7), at_s=1.0)
        assert event.active_at(1e9)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(LinkFail(a=0, b=7), at_s=-1.0)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(LinkFail(a=0, b=7), at_s=2.0, until_s=2.0)

    def test_describe_is_deterministic(self):
        event = FaultEvent(LinkFail(a=7, b=0), at_s=1.5, until_s=3.0)
        assert event.describe() == "fail:0<>7@[1.5,3)s"
        assert FaultEvent(LinkDegrade(src=2, dst=7, factor=0.5)).describe() == (
            "degrade:2>7x0.5@0s"
        )
