"""T4 — Table IV: the device-*write* performance model, validated.

Builds the memcpy write model (Algorithm 1), measures TCP send /
RDMA_WRITE / SSD write per node, folds the measurements into the model's
classes, and checks per-class averages against the paper's cells.
"""

from __future__ import annotations

import numpy as np

from repro.bench.fio import FioRunner
from repro.core.iomodel import IOModelBuilder
from repro.core.model import ModelTable
from repro.core.validation import class_ordering_holds
from repro.experiments import paper_values
from repro.experiments.common import (
    IO_NODE,
    check,
    check_close,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import WRITE_OPERATIONS, operation_sweep

TITLE = "Table IV: NUMA I/O bandwidth performance model for device write"

#: Operation label -> paper_values key.
_PAPER_KEYS = {
    "TCP sender": "tcp_send",
    "RDMA_WRITE": "rdma_write",
    "SSD write": "ssd_write",
}


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Build + validate Table IV."""
    m = default_machine(machine)
    registry = default_registry(registry)
    builder = IOModelBuilder(m, registry=registry, runs=10 if quick else 100)
    model = builder.build(IO_NODE, "write")
    runner = FioRunner(m, registry=registry)

    measurements = {
        label: operation_sweep(runner, engine, rw, numjobs)
        for label, (engine, rw, numjobs) in WRITE_OPERATIONS.items()
    }
    table = ModelTable.from_measurements(model, measurements)

    checks = [
        check(
            "classes match Table IV",
            [sorted(c.node_ids) for c in model.classes] == paper_values.TABLE4_CLASSES,
            f"got {[sorted(c.node_ids) for c in model.classes]}",
        )
    ]
    for cls, paper_avg in zip(model.classes, paper_values.TABLE4_AVG["memcpy"]):
        checks.append(
            check_close(f"memcpy class {cls.rank} avg", cls.avg, paper_avg, 0.10)
        )
    for label, per_node in measurements.items():
        paper_avgs = paper_values.TABLE4_AVG[_PAPER_KEYS[label]]
        for cls, paper_avg in zip(model.classes, paper_avgs):
            measured = float(np.mean([per_node[n] for n in cls.node_ids]))
            checks.append(
                check_close(f"{label} class {cls.rank} avg", measured, paper_avg, 0.10)
            )
        checks.append(
            check(
                f"{label}: class ordering holds",
                class_ordering_holds(model, per_node, tolerance=0.06),
            )
        )
    return ExperimentResult(
        exp_id="t4", title=TITLE, text=table.render(),
        data={"model": model.values, "measurements": measurements},
        checks=tuple(checks),
    )
