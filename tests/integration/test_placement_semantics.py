"""Placement semantics the paper leaves implicit: CPU vs memory binding.

For device DMA, the *buffer's* node determines the fabric path; the
*CPU's* node determines interrupt exposure and oversubscription.  The
engines honour the split (``cpunodebind`` vs ``membind``), so the cases
the paper folds together ("applications allocate locally") come apart
here and behave as the mechanisms dictate.
"""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.rng import RngRegistry


@pytest.fixture()
def runner(host):
    return FioRunner(host, RngRegistry())


class TestMemoryNodeDeterminesPath:
    def test_remote_buffers_inherit_their_class(self, runner):
        """CPU on a class-1 node, buffers on a class-3 node: the DMA
        path (hence the class) follows the buffers."""
        good_cpu_bad_mem = runner.run(
            FioJob(name="ps-a", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=6, membind=2)
        ).aggregate_gbps
        all_bad = runner.run(
            FioJob(name="ps-b", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=2)
        ).aggregate_gbps
        assert good_cpu_bad_mem == pytest.approx(all_bad, rel=0.05)

    def test_local_buffers_rescue_remote_cpu(self, runner):
        """CPU on a class-3 node but buffers bound to a class-2 node:
        RDMA (offloaded) runs at the buffer node's class."""
        bad_cpu_good_mem = runner.run(
            FioJob(name="ps-c", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=2, membind=0)
        ).aggregate_gbps
        baseline = runner.run(
            FioJob(name="ps-d", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=0)
        ).aggregate_gbps
        assert bad_cpu_good_mem == pytest.approx(baseline, rel=0.05)


class TestCpuNodeDeterminesIrqExposure:
    def test_irq_penalty_tracks_cpu_not_memory(self, runner):
        """TCP with buffers on node 6 but CPU on node 7 still pays the
        interrupt penalty; CPU on 6 with buffers on 6 does not."""
        cpu_on_irq_node = runner.run(
            FioJob(name="ps-e", engine="tcp", rw="send", numjobs=4,
                   cpunodebind=7, membind=6)
        ).aggregate_gbps
        cpu_off_irq_node = runner.run(
            FioJob(name="ps-f", engine="tcp", rw="send", numjobs=4,
                   cpunodebind=6, membind=6)
        ).aggregate_gbps
        assert cpu_on_irq_node < cpu_off_irq_node


class TestLocalPreferredFallback:
    def test_exhausted_node_spills_and_changes_class(self, host):
        """When the pinned node is out of memory, local-preferred spills
        to a neighbour — and the measured bandwidth follows the spilled
        buffers, which is exactly why the paper watches numastat."""
        from repro.bench.engines import resolve_placements
        from repro.memory.allocator import PageAllocator
        from repro.memory.policy import MemBinding

        allocator = PageAllocator(host)
        free = allocator.free_bytes(2)
        allocator.allocate(free, cpu_node=2, binding=MemBinding.bind(2))
        job = FioJob(name="ps-g", engine="rdma", rw="write", numjobs=2,
                     cpunodebind=2)
        placements, _ = resolve_placements(host, allocator, job)
        assert all(p.cpu_node == 2 for p in placements)
        assert all(p.mem_node != 2 for p in placements)
