#!/usr/bin/env sh
# Crash-recovery smoke: the journal's resume contract, end to end.
#
# Gates, in order:
#   1. A deterministic torn-tail drill: an iomodel sweep is SIGKILLed
#      halfway through writing journal record 2 (TornWrite), resumed,
#      and the resumed stdout must be byte-identical to an
#      uninterrupted golden run — with the torn tail truncated and the
#      completed shards never recomputed.
#   2. The same drill for a clean crash point (CrashPoint: the record
#      lands, then SIGKILL), resuming `experiment all --quick`.
#   3. The full seeded soak: `repro-numa recover` kills both workloads
#      at randomized (seeded, reproducible) points, resumes, and gates
#      stdout bit-identity, manifest twin-ness, and /dev/shm hygiene.
#   4. No arena segment is leaked after any of it.
set -eu

cd "$(dirname "$0")/.."

TMPDIR="${TMPDIR:-/tmp}"
WORK="$TMPDIR/recovery_smoke.$$"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK"

leak_check() {
    leaked="$(ls /dev/shm 2>/dev/null | grep '^repro_fab_' || true)"
    if [ -n "$leaked" ]; then
        echo "FAIL: leaked arena segments after $1: $leaked" >&2
        exit 1
    fi
    echo "no leaked /dev/shm segments after $1"
}

echo "== 1. torn-write drill: iomodel sweep killed mid-record"
PYTHONPATH=src python -m repro.cli.main --seed 7 iomodel --targets all \
    --mode both --runs 5 --jobs 2 > "$WORK/io_golden.txt"
if PYTHONPATH=src REPRO_JOURNAL_CRASH=2:torn python -m repro.cli.main \
    --seed 7 iomodel --targets all --mode both --runs 5 --jobs 2 \
    --resume "$WORK/io_run" > /dev/null 2>&1; then
    echo "FAIL: the armed crash point never fired" >&2
    exit 1
fi
PYTHONPATH=src python -m repro.cli.main --seed 7 iomodel --targets all \
    --mode both --runs 5 --jobs 2 --resume "$WORK/io_run" \
    > "$WORK/io_resumed.txt" 2> "$WORK/io_notes.txt"
if ! cmp -s "$WORK/io_golden.txt" "$WORK/io_resumed.txt"; then
    echo "FAIL: resumed iomodel stdout differs from the golden run" >&2
    diff "$WORK/io_golden.txt" "$WORK/io_resumed.txt" >&2 || true
    exit 1
fi
grep -q "truncated a torn tail" "$WORK/io_notes.txt"
grep -q "unit(s) already completed" "$WORK/io_notes.txt"
echo "torn tail truncated; resumed sweep byte-identical to golden"
leak_check "the torn-write drill"

echo "== 2. crash-point drill: experiment batch killed after record 5"
# Journaled runs print the serial format (no wall-time columns — those
# are scheduling noise), so the golden is the serial run.
PYTHONPATH=src python -m repro.cli.main experiment all --quick \
    > "$WORK/exp_golden.txt"
if PYTHONPATH=src REPRO_JOURNAL_CRASH=5 python -m repro.cli.main \
    experiment all --quick --jobs 2 --resume "$WORK/exp_run" \
    > /dev/null 2>&1; then
    echo "FAIL: the armed crash point never fired" >&2
    exit 1
fi
PYTHONPATH=src python -m repro.cli.main experiment all --quick --jobs 2 \
    --resume "$WORK/exp_run" > "$WORK/exp_resumed.txt" 2> "$WORK/exp_notes.txt"
if ! cmp -s "$WORK/exp_golden.txt" "$WORK/exp_resumed.txt"; then
    echo "FAIL: resumed experiment stdout differs from the golden run" >&2
    diff "$WORK/exp_golden.txt" "$WORK/exp_resumed.txt" >&2 || true
    exit 1
fi
grep -q "unit(s) already completed" "$WORK/exp_notes.txt"
echo "completed experiments skipped; resumed batch byte-identical to golden"
leak_check "the crash-point drill"

echo "== 3. seeded randomized soak: repro-numa recover"
PYTHONPATH=src python -m repro.cli.main --seed 2013 recover \
    --workload both --trials "${RECOVERY_TRIALS:-2}" --jobs 2 --runs 5
leak_check "the recovery soak"

echo "recovery smoke passed"
