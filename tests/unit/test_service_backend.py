"""Advisory backend: warm sessions, models, last-good degraded answers."""

import pytest

from repro.errors import ReproError, ServiceError
from repro.rng import RngRegistry
from repro.service.backend import SOLVER_FAILURES, AdvisoryBackend, SessionPool
from repro.service.soak import build_soak_plan


@pytest.fixture()
def backend(host):
    return AdvisoryBackend(host, registry=RngRegistry(), runs=3)


class TestSessionPool:
    def test_hit_miss_accounting(self, host):
        from repro.topology.builders import intel_4s4n

        pool = SessionPool(maxsize=2)
        s1 = pool.acquire(host)
        assert pool.acquire(host) is s1
        pool.acquire(intel_4s4n())  # different fabric, different session
        assert pool.stats() == {"size": 2, "hits": 1, "misses": 2}

    def test_lru_bound(self, host):
        from repro.topology.builders import intel_4s4n

        pool = SessionPool(maxsize=1)
        pool.acquire(host)
        pool.acquire(intel_4s4n())
        assert len(pool) == 1

    def test_rejects_silly_sizes(self):
        with pytest.raises(ValueError):
            SessionPool(maxsize=0)


class TestLiveAnswers:
    def test_advise_is_not_degraded(self, backend):
        out = backend.advise(target=7, mode="write", tasks=4)
        assert out["degraded"] is False
        assert sum(out["tasks_per_node"].values()) == 4

    def test_model_cache_hits(self, backend):
        m1 = backend.model(7, "write")
        assert backend.model(7, "write") is m1

    def test_unknown_target_is_invalid_params(self, backend):
        with pytest.raises(ServiceError) as exc:
            backend.classify(target=99, mode="write")
        assert exc.value.kind == "invalid_params"
        assert "99" in str(exc.value)

    def test_unknown_stream_node_is_invalid_params(self, backend):
        with pytest.raises(ServiceError) as exc:
            backend.predict_eq1(target=7, mode="read", streams=[0, 42])
        assert exc.value.kind == "invalid_params"

    def test_cold_predict_is_exact_class_mixture(self, backend):
        # A cold request solves (tier 3) and answers with the exact
        # Eq. 1 mixture over the freshly built class model.
        out = backend.predict_eq1(target=7, mode="read", streams=[0, 1])
        model = backend.model(7, "read")
        avg = {c.rank: c.avg for c in model.classes}
        ranks = [model.class_of(n).rank for n in (0, 1)]
        expected = sum(avg[r] for r in ranks) / 2
        assert out["tier"] == 3
        assert out["predicted_gbps"] == pytest.approx(expected)

    def test_warm_predict_matches_mixture_within_fit_bound(self, backend):
        model = backend.model(7, "read")
        out = backend.predict_eq1(target=7, mode="read", streams=[0, 1])
        avg = {c.rank: c.avg for c in model.classes}
        ranks = [model.class_of(n).rank for n in (0, 1)]
        expected = sum(avg[r] for r in ranks) / 2
        # Warm entry -> the analytic tier answers, within its own
        # documented error bound of the exact Eq. 1 mixture.
        assert out["tier"] == 1
        assert 0.0 <= out["fit_rel_err_bound"] < 0.05
        assert out["predicted_gbps"] == pytest.approx(
            expected, rel=max(out["fit_rel_err_bound"], 1e-12)
        )


class TestDegradedAnswers:
    def test_no_snapshot_means_none(self, backend):
        assert backend.degraded_answer(
            "classify", {"target": 7, "mode": "write"}
        ) is None

    def test_snapshot_recorded_by_successful_build(self, backend):
        backend.classify(target=7, mode="write")
        snap = backend.snapshot(7, "write")
        assert snap is not None
        assert snap.target_node == 7

    def test_degraded_classify_is_marked(self, backend):
        backend.classify(target=7, mode="write")
        out = backend.degraded_answer("classify", {"target": 7, "mode": "write"})
        assert out["degraded"] is True
        assert out["source"] == "last-good-characterization"

    def test_degraded_advise_places_all_tasks(self, backend):
        backend.classify(target=7, mode="write")
        out = backend.degraded_answer("advise", {
            "target": 7, "mode": "write", "tasks": 5,
            "avoid_irq_node": True, "tolerance": 0.05,
        })
        assert out["degraded"] is True
        assert sum(out["tasks_per_node"].values()) == 5
        assert "7" not in out["tasks_per_node"]  # avoid_irq_node honoured

    def test_degraded_predict_uses_snapshot_classes(self, backend):
        live = backend.predict_eq1(target=7, mode="read", streams=[0, 1, 2])
        degraded = backend.degraded_answer("predict_eq1", {
            "target": 7, "mode": "read", "streams": [0, 1, 2],
        })
        assert degraded["degraded"] is True
        assert degraded["predicted_gbps"] == pytest.approx(live["predicted_gbps"])

    def test_degraded_plan_requires_cached_weight(self, backend):
        assert backend.degraded_answer("plan", {"write_weight": 0.5}) is None
        backend.plan(write_weight=0.5)
        out = backend.degraded_answer("plan", {"write_weight": 0.5})
        assert out["degraded"] is True


class TestFaultSwap:
    def test_partitioned_machine_raises_solver_failure(self, backend, host):
        backend.classify(target=7, mode="write")  # snapshot first
        plan = build_soak_plan(host, 7, 0.0, 10.0)
        backend.set_machine(plan.apply(host, at_s=1.0))
        with pytest.raises(SOLVER_FAILURES):
            backend.classify(target=7, mode="write")
        # the last-good snapshot survives the fault
        assert backend.snapshot(7, "write") is not None
        backend.restore_machine()
        out = backend.classify(target=7, mode="write")
        assert out["degraded"] is False

    def test_solver_failures_are_repro_errors(self):
        assert all(issubclass(t, ReproError) for t in SOLVER_FAILURES)
