"""Placement advice from the class model (§V-B, third application).

"Instead of allocating all application processes to node 7 only, we can
evenly split the task processes among all nodes in class 1 and class 2"
— the advisor finds the classes whose performance is within a tolerance
of the best, spreads tasks round-robin across their nodes (respecting
core counts), and can quantify the win against the naive all-local
binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.model import IOPerformanceModel
from repro.errors import ModelError
from repro.topology.machine import Machine

__all__ = ["PlacementPlan", "PlacementAdvisor"]


@dataclass(frozen=True)
class PlacementPlan:
    """Tasks per node, plus the classes the advisor drew from."""

    tasks_per_node: dict[int, int]
    classes_used: tuple[int, ...]

    @property
    def n_tasks(self) -> int:
        """Total tasks placed."""
        return sum(self.tasks_per_node.values())

    @property
    def nodes(self) -> tuple[int, ...]:
        """Nodes receiving at least one task."""
        return tuple(sorted(n for n, c in self.tasks_per_node.items() if c))

    def stream_nodes(self) -> list[int]:
        """Flat per-stream node list (for predictors and runners)."""
        out: list[int] = []
        for node in sorted(self.tasks_per_node):
            out.extend([node] * self.tasks_per_node[node])
        return out

    def render(self) -> str:
        """Human-readable placement."""
        body = ", ".join(
            f"node {n}: {c}" for n, c in sorted(self.tasks_per_node.items()) if c
        )
        return f"{self.n_tasks} tasks over classes {self.classes_used}: {body}"


class PlacementAdvisor:
    """Spread I/O tasks across performance-equivalent classes.

    Parameters
    ----------
    machine:
        The host (for core counts).
    model:
        The memcpy class model of the device's node.
    operation_values:
        Optional per-node measured bandwidths of the operation being
        scheduled; class equivalence is judged on these when given
        (the paper judges RDMA_WRITE classes 1 and 2 "almost identical"
        on the RDMA_WRITE numbers, not the memcpy ones), else on the
        model's own values.
    tolerance:
        Classes within ``tolerance`` (relative) of the best class's
        average are considered equivalent.
    """

    def __init__(
        self,
        machine: Machine,
        model: IOPerformanceModel,
        operation_values: Mapping[int, float] | None = None,
        tolerance: float = 0.05,
    ) -> None:
        if not 0 <= tolerance < 1:
            raise ModelError(f"tolerance must be in [0, 1), got {tolerance}")
        self.machine = machine
        self.model = model
        self.tolerance = tolerance
        values = dict(operation_values) if operation_values else dict(model.values)
        missing = [n for n in model.values if n not in values]
        if missing:
            raise ModelError(f"operation values missing for nodes {missing}")
        self._class_avg = {
            cls.rank: float(np.mean([values[n] for n in cls.node_ids]))
            for cls in model.classes
        }

    def equivalent_classes(self) -> tuple[int, ...]:
        """Ranks of the classes within tolerance of the best class."""
        best = max(self._class_avg.values())
        return tuple(
            rank
            for rank, avg in sorted(self._class_avg.items())
            if (best - avg) / best <= self.tolerance
        )

    def candidate_nodes(self) -> tuple[int, ...]:
        """Nodes of every equivalent class, best class first."""
        ranks = set(self.equivalent_classes())
        nodes: list[int] = []
        for cls in sorted(self.model.classes, key=lambda c: -self._class_avg[c.rank]):
            if cls.rank in ranks:
                nodes.extend(cls.node_ids)
        return tuple(nodes)

    def advise(self, n_tasks: int, avoid_irq_node: bool = False) -> PlacementPlan:
        """Spread ``n_tasks`` round-robin over the equivalent classes.

        ``avoid_irq_node`` skips the device-local node while alternatives
        exist (it pays the interrupt-handling penalty, §IV-B1).
        """
        if n_tasks < 1:
            raise ModelError(f"n_tasks must be >= 1, got {n_tasks}")
        nodes = list(self.candidate_nodes())
        if avoid_irq_node and len(nodes) > 1:
            nodes = [n for n in nodes if n != self.model.target_node]
        capacity = {n: self.machine.node(n).n_cores for n in nodes}
        placement = {n: 0 for n in nodes}
        remaining = n_tasks
        # Fill by rounds so load stays even, honouring core counts first.
        while remaining:
            progressed = False
            for node in nodes:
                if remaining == 0:
                    break
                if placement[node] < capacity[node]:
                    placement[node] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                # All cores occupied; keep spreading evenly (oversubscribe).
                for node in nodes:
                    if remaining == 0:
                        break
                    placement[node] += 1
                    remaining -= 1
        return PlacementPlan(
            tasks_per_node=placement, classes_used=self.equivalent_classes()
        )

    def naive_plan(self, n_tasks: int) -> PlacementPlan:
        """The baseline the paper argues against: everything on the local node."""
        if n_tasks < 1:
            raise ModelError(f"n_tasks must be >= 1, got {n_tasks}")
        return PlacementPlan(
            tasks_per_node={self.model.target_node: n_tasks},
            classes_used=(1,),
        )
