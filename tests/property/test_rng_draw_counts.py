"""RNG draw accounting invariants.

The :class:`~repro.rng.CountingGenerator` wrapper must be invisible to
the numbers (sequences bit-identical to a bare generator) while its
accounting must be *path-independent*: Algorithm 1 run pair-by-pair
(:meth:`IOModelBuilder.measure_pair` in a loop) and as a vectorized
sweep (:meth:`IOModelBuilder.build_many`) draw the same named streams
the same number of times — that equality is what makes the run-manifest
seed block trustworthy as a determinism fingerprint.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iomodel import IOModelBuilder
from repro.rng import DEFAULT_SEED, RngRegistry
from repro.topology.builders import reference_host, scaled_host

hosts = st.builds(
    scaled_host,
    n_packages=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=20),
)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.text(min_size=1, max_size=30),
    n=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_counting_wrapper_preserves_sequences(seed, name, n):
    counted = RngRegistry(seed).stream(name)
    bare = np.random.Generator(np.random.PCG64(counted.bit_generator.seed_seq))
    assert (counted.standard_normal(n) == bare.standard_normal(n)).all()
    assert counted.uniform() == bare.uniform()
    assert (counted.integers(0, 100, size=n) == bare.integers(0, 100, size=n)).all()


@given(
    name=st.text(min_size=1, max_size=20),
    shape=st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=10),
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
    ),
)
@settings(max_examples=50, deadline=None)
def test_draw_counts_match_values_produced(name, shape):
    registry = RngRegistry(3)
    out = np.asarray(registry.stream(name).normal(size=shape))
    expected = 1 if shape is None else out.size  # size=None draws one scalar
    assert registry.draw_counts == {name: expected}


@given(hosts, st.sampled_from(["write", "read"]), st.integers(min_value=1, max_value=8))
@settings(max_examples=12, deadline=None)
def test_build_many_draws_match_per_pair_loop(machine, mode, runs):
    """The vectorized sweep and the pair loop have identical draw ledgers."""
    from repro.solver import reset_sessions

    target = machine.node_ids[-1]

    reset_sessions()
    loop_registry = RngRegistry(DEFAULT_SEED)
    loop_builder = IOModelBuilder(machine, registry=loop_registry, runs=runs)
    for other in machine.node_ids:
        loop_builder.measure_pair(other, target, mode)

    reset_sessions()
    sweep_registry = RngRegistry(DEFAULT_SEED)
    sweep_builder = IOModelBuilder(machine, registry=sweep_registry, runs=runs)
    sweep_builder.build_many((target,), mode)

    assert loop_registry.draw_counts == sweep_registry.draw_counts
    assert sum(loop_registry.draw_counts.values()) == machine.n_nodes * runs
    reset_sessions()


def test_zero_sigma_sweep_draws_nothing():
    """sigma=0 skips noise generation on both paths — and the ledger shows it."""
    machine = reference_host()
    registry = RngRegistry(DEFAULT_SEED)
    builder = IOModelBuilder(machine, registry=registry, runs=5, sigma=0.0)
    builder.build_many((machine.node_ids[-1],), "write")
    assert registry.draw_counts == {}


def test_draws_land_in_metrics_when_recording():
    from repro.obs import MetricsRegistry, TraceRecorder
    from repro.obs import recorder as obs

    registry = RngRegistry(5)
    recorder = TraceRecorder(MetricsRegistry())
    obs.install(recorder)
    try:
        registry.stream("noise/a").standard_normal(4)
        registry.stream("noise/b").uniform()
    finally:
        obs.uninstall()
    assert recorder.metrics.counters("rng.draws/") == {
        "rng.draws/noise/a": 4,
        "rng.draws/noise/b": 1,
    }
    # The per-registry ledger counts regardless of recording state.
    registry.stream("noise/a").standard_normal(2)
    assert registry.draw_counts == {"noise/a": 6, "noise/b": 1}
