"""Machine (de)serialisation.

A machine description — nodes, packages, directed links with their
per-plane parameters, host parameters — round-trips through a plain
JSON-compatible dict.  This is how a user records a characterised host
(``repro-numa hardware`` territory) or shares a calibration, and it
keeps machine descriptions diffable in version control.

Devices are *not* serialised here: their response curves belong to the
device vendor model (:mod:`repro.devices`), and
:func:`machine_from_dict` leaves the ``devices`` map empty for the
caller to re-attach.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TopologyError
from repro.interconnect.link import DirectedLink, LinkKind
from repro.topology.machine import Machine, MachineParams
from repro.topology.node import Core, NumaNode, Package

__all__ = [
    "machine_to_dict",
    "machine_from_dict",
    "machine_from_json_file",
    "components_from_dict",
]

_FORMAT_VERSION = 1


def machine_to_dict(machine: Machine) -> dict[str, Any]:
    """A JSON-compatible description of ``machine`` (excluding devices)."""
    params = machine.params
    return {
        "format_version": _FORMAT_VERSION,
        "name": machine.name,
        "params": {
            "local_latency_s": params.local_latency_s,
            "pio_core_gbps_ns": params.pio_core_gbps_ns,
            "oslib_penalty": params.oslib_penalty,
            "os_node": params.os_node,
            "dma_per_thread_gbps": params.dma_per_thread_gbps,
            "pio_request_frac": params.pio_request_frac,
            "pio_response_frac": params.pio_response_frac,
            "router_latency_s": params.router_latency_s,
            "llc_bytes": params.llc_bytes,
            "description": params.description,
        },
        "nodes": [
            {
                "node_id": node.node_id,
                "package_id": node.package_id,
                "core_ids": [c.core_id for c in node.cores],
                "memory_bytes": node.memory_bytes,
                "dram_gbps": node.dram_gbps,
                "pio_ctrl_gbps": node.pio_ctrl_gbps,
                "os_resident_bytes": node.os_resident_bytes,
            }
            for node in (machine.node(n) for n in machine.node_ids)
        ],
        "packages": [
            {"package_id": pkg.package_id, "node_ids": list(pkg.node_ids)}
            for pkg in (machine.packages[p] for p in sorted(machine.packages))
        ],
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "width_bits": link.width_bits,
                "gts": link.gts,
                "kind": link.kind.value,
                "dma_credit": link.dma_credit,
                "pio_cap_gbps": link.pio_cap_gbps,
                "pio_latency_s": link.pio_latency_s,
            }
            for _ends, link in sorted(machine.links.items())
        ],
    }


#: ``section -> (field, required types)`` for the per-entry validation.
#: ``bool`` is excluded from numeric fields explicitly (it *is* an int).
_NODE_FIELDS = (
    ("node_id", (int,)),
    ("package_id", (int,)),
    ("core_ids", (list, tuple)),
    ("memory_bytes", (int,)),
    ("dram_gbps", (int, float)),
    ("pio_ctrl_gbps", (int, float)),
    ("os_resident_bytes", (int,)),
)
_PACKAGE_FIELDS = (
    ("package_id", (int,)),
    ("node_ids", (list, tuple)),
)
_LINK_FIELDS = (
    ("src", (int,)),
    ("dst", (int,)),
    ("width_bits", (int,)),
    ("gts", (int, float)),
    ("kind", (str,)),
    ("dma_credit", (int, float)),
    ("pio_cap_gbps", (int, float, type(None))),  # None: derived default
    ("pio_latency_s", (int, float)),
)
_PARAM_FIELDS = {
    "local_latency_s": (int, float),
    "pio_core_gbps_ns": (int, float),
    "oslib_penalty": (int, float),
    "os_node": (int,),
    "dma_per_thread_gbps": (int, float),
    "pio_request_frac": (int, float),
    "pio_response_frac": (int, float),
    "router_latency_s": (int, float),
    "llc_bytes": (int,),
    "description": (str,),
}


def _typed(value: Any, types: tuple) -> bool:
    if isinstance(value, bool):
        return bool in types
    return isinstance(value, types)


def _type_names(types: tuple) -> str:
    return " or ".join(t.__name__ for t in types)


def _field(entry: Any, name: str, types: tuple, where: str) -> Any:
    """One validated field of one description entry, or a named error."""
    if not isinstance(entry, Mapping):
        raise TopologyError(
            f"malformed machine description: {where} must be an object, "
            f"got {type(entry).__name__}"
        )
    if name not in entry:
        raise TopologyError(
            f"malformed machine description: {where}.{name} is missing"
        )
    value = entry[name]
    if not _typed(value, types):
        raise TopologyError(
            f"malformed machine description: {where}.{name} must be "
            f"{_type_names(types)}, got {type(value).__name__}"
        )
    return value


def _section(data: Mapping[str, Any], name: str) -> list:
    if name not in data:
        raise TopologyError(
            f"malformed machine description: section {name!r} is missing"
        )
    section = data[name]
    if not isinstance(section, (list, tuple)):
        raise TopologyError(
            f"malformed machine description: {name} must be a list, "
            f"got {type(section).__name__}"
        )
    return list(section)


def _int_list(values: Any, where: str) -> tuple[int, ...]:
    bad = [v for v in values if not _typed(v, (int,))]
    if bad:
        raise TopologyError(
            f"malformed machine description: {where} must contain only "
            f"integers, got {bad[0]!r}"
        )
    return tuple(values)


def components_from_dict(
    data: Mapping[str, Any],
) -> tuple[str, list[NumaNode], list[Package], list[DirectedLink], MachineParams]:
    """Validate a description dict into ``Machine`` constructor arguments.

    Shared by :func:`machine_from_dict` and machine *views* that subclass
    :class:`Machine` (e.g. :class:`repro.faults.plan.FaultedMachine`) and
    therefore cannot go through the plain factory.

    Every malformed input — wrong shape, missing field, wrong type,
    unknown link kind or host parameter — raises
    :class:`~repro.errors.TopologyError` whose message *names the
    offending field* (``nodes[2].core_ids``, ``links[3].kind``, ...);
    no bare ``KeyError``/``ValueError``/``TypeError`` escapes.
    """
    if not isinstance(data, Mapping):
        raise TopologyError(
            f"malformed machine description: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported machine format version {version!r} "
            f"(this library writes {_FORMAT_VERSION})"
        )
    name = _field(data, "name", (str,), "machine")

    raw_params = data.get("params")
    if not isinstance(raw_params, Mapping):
        raise TopologyError(
            "malformed machine description: params must be an object, "
            f"got {type(raw_params).__name__}"
        )
    unknown = sorted(k for k in raw_params if k not in _PARAM_FIELDS)
    if unknown:
        raise TopologyError(
            f"malformed machine description: params.{unknown[0]} is not a "
            f"machine parameter (accepts {sorted(_PARAM_FIELDS)})"
        )
    params_kwargs = {
        key: _field(raw_params, key, types, "params")
        for key, types in _PARAM_FIELDS.items()
    }

    nodes = []
    for i, entry in enumerate(_section(data, "nodes")):
        where = f"nodes[{i}]"
        fields = {
            key: _field(entry, key, types, where) for key, types in _NODE_FIELDS
        }
        fields["core_ids"] = _int_list(fields["core_ids"], f"{where}.core_ids")
        nodes.append(fields)

    packages = []
    for i, entry in enumerate(_section(data, "packages")):
        where = f"packages[{i}]"
        fields = {
            key: _field(entry, key, types, where)
            for key, types in _PACKAGE_FIELDS
        }
        fields["node_ids"] = _int_list(fields["node_ids"], f"{where}.node_ids")
        packages.append(fields)

    links = []
    for i, entry in enumerate(_section(data, "links")):
        where = f"links[{i}]"
        fields = {
            key: _field(entry, key, types, where) for key, types in _LINK_FIELDS
        }
        try:
            fields["kind"] = LinkKind(fields["kind"])
        except ValueError:
            raise TopologyError(
                f"malformed machine description: {where}.kind must be one of "
                f"{sorted(k.value for k in LinkKind)}, "
                f"got {fields['kind']!r}"
            ) from None
        links.append(fields)

    # Shapes and types are vetted; component constructors may still
    # reject *values* (negative bandwidth, duplicate core) — surface
    # those as named TopologyErrors too instead of letting them escape.
    try:
        built_params = MachineParams(**params_kwargs)
    except (TypeError, ValueError, TopologyError) as exc:
        raise TopologyError(
            f"malformed machine description: params rejected: {exc}"
        ) from exc
    built_nodes = []
    for i, fields in enumerate(nodes):
        try:
            built_nodes.append(
                NumaNode(
                    node_id=fields["node_id"],
                    package_id=fields["package_id"],
                    cores=tuple(
                        Core(core_id=cid, node_id=fields["node_id"])
                        for cid in fields["core_ids"]
                    ),
                    memory_bytes=fields["memory_bytes"],
                    dram_gbps=fields["dram_gbps"],
                    pio_ctrl_gbps=fields["pio_ctrl_gbps"],
                    os_resident_bytes=fields["os_resident_bytes"],
                )
            )
        except (TypeError, ValueError, TopologyError) as exc:
            raise TopologyError(
                f"malformed machine description: nodes[{i}] rejected: {exc}"
            ) from exc
    built_packages = []
    for i, fields in enumerate(packages):
        try:
            built_packages.append(
                Package(package_id=fields["package_id"],
                        node_ids=fields["node_ids"])
            )
        except (TypeError, ValueError, TopologyError) as exc:
            raise TopologyError(
                f"malformed machine description: packages[{i}] rejected: {exc}"
            ) from exc
    built_links = []
    for i, fields in enumerate(links):
        try:
            built_links.append(DirectedLink(**fields))
        except (TypeError, ValueError, TopologyError) as exc:
            raise TopologyError(
                f"malformed machine description: links[{i}] rejected: {exc}"
            ) from exc
    return name, built_nodes, built_packages, built_links, built_params


def machine_from_dict(data: Mapping[str, Any]) -> Machine:
    """Rebuild a :class:`Machine` from :func:`machine_to_dict` output."""
    name, nodes, packages, links, params = components_from_dict(data)
    return Machine(name, nodes, packages, links, params)


def machine_from_json_file(path: str) -> Machine:
    """Load a machine description from a JSON file.

    Unreadable files and invalid JSON raise
    :class:`~repro.errors.TopologyError` (naming the file), so CLI
    callers render one clean diagnostic instead of a traceback.
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise TopologyError(f"cannot read machine file {path!r}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TopologyError(
            f"machine file {path!r} is not valid JSON: {exc}"
        ) from exc
    return machine_from_dict(data)
