"""Machine arenas: publish/attach round trips, refcounts, and no leaks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric import arena as arena_mod
from repro.fabric.arena import attach, get_arena, live_segments, publish
from repro.solver.capacity import build_capacities, machine_fingerprint
from repro.topology.builders import scaled_host
from repro.topology.distance import hop_matrix

pytestmark = pytest.mark.fabric


@pytest.fixture()
def machine():
    return scaled_host(3, seed=11)


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test starts and ends with zero live arena segments."""
    arena_mod.release_all()
    assert live_segments() == []
    yield
    arena_mod.release_all()
    assert live_segments() == []


def test_publish_attach_round_trip(machine):
    fingerprint = machine_fingerprint(machine)
    owner = publish(machine)
    try:
        assert owner.owner and owner.fingerprint == fingerprint
        assert live_segments() == [owner.name]

        attached = attach(fingerprint)
        assert attached is not None and not attached.owner
        assert attached.capacities() == build_capacities(machine)
        assert np.array_equal(attached.hops, hop_matrix(machine))
        rebuilt = attached.machine()
        assert machine_fingerprint(rebuilt) == fingerprint
        assert rebuilt.node_ids == machine.node_ids
        attached._shm.close()
    finally:
        owner._close()


def test_adjacency_matches_links(machine):
    owner = publish(machine)
    try:
        ids = machine.node_ids
        index = {nid: i for i, nid in enumerate(ids)}
        for (src, dst), link in machine.links.items():
            assert owner.adjacency[index[src], index[dst]] == link.dma_gbps
    finally:
        owner._close()


def test_views_are_read_only(machine):
    owner = publish(machine)
    try:
        with pytest.raises(ValueError):
            owner.hops[0, 0] = 99
    finally:
        owner._close()


def test_refcounting_unlinks_on_last_release(machine):
    arena = get_arena(machine)
    assert arena.refs == 1 and arena.owner
    assert get_arena(machine) is arena and arena.refs == 2
    arena.release()
    assert not arena.closed and live_segments() == [arena.name]
    arena.release()
    assert arena.closed
    assert live_segments() == []


def test_attach_missing_returns_none():
    assert attach("no-such-fingerprint-0123456789abcdef") is None


def test_publish_twice_raises(machine):
    owner = publish(machine)
    try:
        with pytest.raises(FabricError):
            publish(machine)
    finally:
        owner._close()


def test_publish_rejects_routing_overrides(machine):
    from repro.topology.serialize import machine_from_dict, machine_to_dict

    # A private copy so the fixture machine stays pristine.
    copied = machine_from_dict(machine_to_dict(machine))
    nodes = copied.node_ids
    hops = copied.routing.route("dma", nodes[0], nodes[1])
    copied.routing.set_route("dma", hops)
    with pytest.raises(FabricError, match="overrides"):
        publish(copied)


def test_release_all_sweeps_everything(machine):
    get_arena(machine)
    get_arena(scaled_host(2, seed=3))
    assert len(live_segments()) == 2
    arena_mod.release_all()
    assert live_segments() == []


def test_session_eviction_releases_arena(machine):
    """Satellite (c): sessions evicted from the LRU release their arena."""
    from repro.solver import session as session_mod
    from repro.solver.session import get_session, reset_sessions

    reset_sessions()
    arena = get_arena(machine)
    session = get_session(machine)
    session.attach_arena(arena)
    arena.release()  # the session now holds the only reference
    assert not arena.closed
    # Arena-backed capacities come from the shared segment.
    assert session.capacities() == build_capacities(machine)

    # Flood the registry past its LRU bound; the arena-backed session is
    # evicted, closed, and the segment disappears with its last ref.
    for seed in range(session_mod._MAX_SESSIONS + 1):
        get_session(scaled_host(2, seed=seed))
    assert arena.closed
    assert live_segments() == []
    reset_sessions()


def test_reset_sessions_releases_arena(machine):
    from repro.solver.session import get_session, reset_sessions

    reset_sessions()
    arena = get_arena(machine)
    session = get_session(machine)
    session.attach_arena(arena)
    arena.release()
    reset_sessions()
    assert arena.closed
    assert live_segments() == []
