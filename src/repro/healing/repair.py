"""The supervised repair loop of the self-healing control plane.

The loop closes the gap PR 9 left open: the drift watch *detects* that
served answers departed from reality and the fault layer *changes* the
machine, but nothing re-characterized the stale classes.  The
:class:`RepairSupervisor` is that missing actor.  It reacts to exactly
two signals, both delivered through backend hooks:

* **machine swaps** (fault injection, fault clearance) — the blast
  radius comes from the incremental re-router: the
  :class:`~repro.routing.incremental.RerouteStats` on the new routing
  table name every node whose selected routes or link weights changed.
  Tier entries whose target sits inside that radius are quarantined
  (served degraded-and-labelled ``repairing: true``) and queued for
  re-characterization; entries already characterized under the new
  machine fingerprint are promoted on the spot.
* **drift events** — a landed solve that fired
  :class:`~repro.obs.live.DriftWatch` proves the machine moved under
  the fast tiers; every *sibling* entry characterized before that solve
  is equally suspect, so it is quarantined and queued too.

Repair jobs run through :meth:`RepairSupervisor.pump` — bounded
concurrency per pump, seeded :class:`~repro.retrying.RetryPolicy`
backoff between attempts, single-flight with in-flight request solves
(the backend's flight table coalesces them).  A landed solve refreshes
tiers 1–2 and lifts its own quarantine
(:meth:`~repro.service.backend.AdvisoryBackend._refresh_tiers`); the
supervisor then *verifies* the fresh fit — live fingerprint, honest
``eq1_rel_err_bound`` — before counting the key promoted.  A verify
failure re-quarantines and backs off like a solver failure.

Everything ticks on the service clock and draws backoff jitter from one
named registry stream, so same-seed soak twins repair byte-identically.
The whole loop is **opt-in**: a service without an attached supervisor
behaves exactly as before (fingerprint mismatches bypass the fast
tiers, the breaker serves degraded answers).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.retrying import RetryPolicy
from repro.service.backend import SOLVER_FAILURES, AdvisoryBackend
from repro.solver.capacity import machine_fingerprint

__all__ = ["RepairJob", "RepairSupervisor"]

#: Registry stream the backoff jitter draws from — one name, so a seed
#: pins the whole repair schedule bit-for-bit.
BACKOFF_STREAM = "service/repair/backoff"


@dataclass
class RepairJob:
    """One quarantined ``(target, mode)`` awaiting re-characterization."""

    target: int
    mode: str
    reason: str
    attempts: int = 0
    not_before: float = 0.0
    queued_at: float = 0.0

    @property
    def key(self) -> tuple[int, str]:
        return (self.target, self.mode)


@dataclass
class RepairSupervisor:
    """Quarantine, re-characterize, verify, promote — bounded and seeded.

    Parameters
    ----------
    backend:
        The advisory backend to repair through (its single-flight
        ``model()`` is the tier-3 path, so repair solves coalesce with
        request solves and run through the fabric pool when one is
        configured).
    retry:
        Backoff policy between failed repair attempts; ``max_retries``
        bounds the attempts per job (an exhausted job stays quarantined
        — honestly labelled — until a machine swap revalidates it).
    max_concurrency:
        Repair solves launched per :meth:`pump` call (and the semaphore
        width of the async :meth:`run` loop).
    verify_fit_rel_err:
        Promotion bar: the fresh :class:`~repro.service.tiers.AnalyticFit`
        must report ``eq1_rel_err_bound`` at or under this, else the
        key is re-quarantined and retried.
    """

    backend: AdvisoryBackend
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=3, base_delay_s=0.4, multiplier=2.0, jitter=0.25
        )
    )
    max_concurrency: int = 2
    verify_fit_rel_err: float = 0.25

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        self.jobs: dict[tuple[int, str], RepairJob] = {}
        self.started = 0
        self.promoted = 0
        self.failed = 0
        self.live = self.backend.live
        self.clock = self.backend.clock
        self._rng = self.backend.registry.stream(BACKOFF_STREAM)
        # Blast radius of the previous machine swap: a fault-clearing
        # swap produces an (empty or small) delta of its own, but the
        # entries characterized *during* the fault window still need
        # re-repair — the union with the previous radius covers them.
        self._last_touched: "set[int] | None" = None

    # --- wiring ------------------------------------------------------------
    def attach(self, service) -> "RepairSupervisor":
        """Adopt a :class:`~repro.service.server.PlacementService`.

        Shares the service's clock and live plane, hooks the backend's
        machine-swap and drift signals, and registers on
        ``service.repair`` so ``health`` exposes the loop's state.
        """
        self.live = service.live
        self.clock = service.clock
        self.backend.on_machine_change = self.machine_changed
        self.backend.on_repair_drift = self.on_drift
        service.repair = self
        return self

    # --- signal handlers ---------------------------------------------------
    def machine_changed(self, machine) -> None:
        """The live machine view swapped: quarantine the blast radius.

        Entries already characterized under the new fingerprint are
        promoted immediately (fault clearance revalidates everything
        the fault never touched); entries inside the re-route blast
        radius — or all mismatched entries, when the new view carries
        no :class:`~repro.routing.incremental.RerouteStats` to bound it
        — are quarantined and queued for repair.
        """
        fingerprint = machine_fingerprint(machine)
        stats = getattr(machine.routing, "last_reroute", None)
        if stats:
            touched: "set[int] | None" = set()
            for plane_stats in stats.values():
                touched.update(plane_stats.touched_nodes)
                # Mirror the re-router's accounting into the live plane
                # so `metrics`/`obs scrape` expose reroute activity.
                self.live.count(
                    "routing.rerouted_pairs", plane_stats.pairs_rerouted
                )
                self.live.count(
                    "routing.reroute_skipped_pairs", plane_stats.pairs_kept
                )
        else:
            touched = None
        prev = self._last_touched
        if touched is None or prev is None:
            affected = None  # unbounded: treat every mismatch as suspect
        else:
            affected = touched | prev
        now = self.clock()
        tiers = self.backend.tiers
        for (target, mode), entry in sorted(tiers.entries.items()):
            if entry.fingerprint == fingerprint:
                if tiers.promote(target, mode):
                    self.jobs.pop((target, mode), None)
                    self._note_promoted(target, mode, now, "revalidated")
            elif affected is None or target in affected:
                self._quarantine(target, mode, "fault-reroute", now)
        self._last_touched = touched

    def on_drift(self, event: dict) -> None:
        """A landed solve fired the drift watch: repair the siblings.

        The solve that fired the event already refreshed and promoted
        its own key — it *is* current truth.  Every other entry with
        nonzero staleness was characterized before the machine moved,
        so it is quarantined and queued.
        """
        fired = (event["target"], event["mode"])
        now = self.clock()
        for (target, mode), entry in sorted(self.backend.tiers.entries.items()):
            key = (target, mode)
            if key == fired or key in self.jobs:
                continue
            if entry.staleness(now) <= 0.0:
                continue  # refreshed this tick: already current
            self._quarantine(
                target, mode,
                f"drift:{event['target']}/{event['mode']}", now,
            )

    def _quarantine(self, target: int, mode: str, reason: str, now: float) -> None:
        self.backend.tiers.quarantine(target, mode, reason)
        key = (target, mode)
        if key not in self.jobs:
            self.jobs[key] = RepairJob(
                target=target, mode=mode, reason=reason,
                not_before=now, queued_at=now,
            )
            self.live.flight.note_event(now, "repair", {
                "phase": "quarantine", "target": target, "mode": mode,
                "reason": reason,
            })

    # --- the repair loop ---------------------------------------------------
    def pump(self, now: "float | None" = None) -> int:
        """Run up to ``max_concurrency`` due repair jobs; returns how many.

        Deterministic: due jobs run in sorted key order, each solve
        goes through the backend's single-flight tier-3 path, and the
        backoff after a failure draws from the seeded stream.  The
        soak calls this once per scripted line; the TCP transport's
        :meth:`run` task calls it on an interval.
        """
        if now is None:
            now = self.clock()
        launched = 0
        for key in sorted(self.jobs):
            if launched >= self.max_concurrency:
                break
            job = self.jobs.get(key)
            if job is None or job.not_before > now:
                continue
            launched += 1
            self._repair_one(job, now)
        return launched

    def _repair_one(self, job: RepairJob, now: float) -> None:
        self.started += 1
        self.live.count("service.repair.started")
        self.live.flight.note_event(now, "repair", {
            "phase": "start", "target": job.target, "mode": job.mode,
            "attempt": job.attempts, "reason": job.reason,
        })
        try:
            entry = self.backend.recharacterize(job.target, job.mode)
        except SOLVER_FAILURES as exc:
            self._backoff(job, now, f"{type(exc).__name__}: {exc}")
            return
        # The landed solve refreshed tiers 1-2 and lifted the quarantine
        # (single-flight with request solves).  Verify before declaring
        # the key repaired: the entry must be the live machine's and the
        # fit must be honest enough to serve tier 1 from.
        fingerprint = machine_fingerprint(self.backend.machine)
        if (
            entry is not None
            and entry.fingerprint == fingerprint
            and entry.fit.eq1_rel_err_bound <= self.verify_fit_rel_err
        ):
            # Explicit promote: a cache-hit recharacterization (the
            # entry was already current) never went through a tier
            # refresh, so the quarantine may still be standing.
            self.backend.tiers.promote(job.target, job.mode)
            self.jobs.pop(job.key, None)
            self._note_promoted(job.target, job.mode, now, job.reason)
            return
        self.backend.tiers.quarantine(job.target, job.mode, job.reason)
        self._backoff(job, now, "verify-failed")

    def _backoff(self, job: RepairJob, now: float, error: str) -> None:
        job.attempts += 1
        if job.attempts > self.retry.max_retries:
            self.jobs.pop(job.key, None)
            self.failed += 1
            self.live.count("service.repair.failed")
            self.live.flight.note_event(now, "repair", {
                "phase": "failed", "target": job.target, "mode": job.mode,
                "attempts": job.attempts, "error": error,
            })
            # The key stays quarantined: answers remain labelled
            # `repairing` until a machine swap revalidates the entry
            # or a request-path solve lands and promotes it.
            return
        job.not_before = now + self.retry.delay_s(job.attempts - 1, self._rng)

    def _note_promoted(
        self, target: int, mode: str, now: float, reason: str
    ) -> None:
        self.promoted += 1
        self.live.count("service.repair.promoted")
        self.live.flight.note_event(now, "repair", {
            "phase": "promote", "target": target, "mode": mode,
            "reason": reason,
        })

    async def run(self, interval_s: float = 0.25) -> None:
        """The asyncio background loop for the TCP transport.

        Pumps off-loop (solves block) every ``interval_s`` until
        cancelled.  The sync :meth:`pump` stays the only brain — the
        soak and the TCP server repair through identical code.
        """
        try:
            while True:
                await asyncio.to_thread(self.pump)
                await asyncio.sleep(interval_s)
        except asyncio.CancelledError:
            raise

    # --- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able loop state for ``health`` responses."""
        return {
            "jobs": len(self.jobs),
            "started": self.started,
            "promoted": self.promoted,
            "failed": self.failed,
            "quarantined": [
                f"{target}/{mode}"
                for target, mode in sorted(self.backend.tiers.quarantined)
            ],
        }
