"""Simulator clock and run loop."""

import pytest

from repro.errors import SimulationError
from repro.simtime.engine import Simulator


class TestScheduling:
    def test_events_run_in_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
        sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
        sim.run()
        assert seen == [("a", 1.0), ("b", 2.0)]

    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [2.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestRunControl:
    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_run_until_advances_idle_clock(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_steps_counted(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.steps == 3

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_is_exact(self):
        """Regression: the guard used to fire one event late — exactly
        ``max_events`` events may execute, never ``max_events + 1``."""
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)
        assert sim.steps == 5

    def test_max_events_not_raised_when_queue_drains(self):
        """A run that finishes at exactly the budget is not an error."""
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=5)
        assert sim.steps == 5

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(4.0, lambda: None)
        assert sim.peek() == 4.0


class TestWallClockWatchdog:
    def test_watchdog_fires_on_runaway_loop(self):
        import time

        sim = Simulator()

        def rearm():
            time.sleep(0.01)
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError) as excinfo:
            sim.run(max_wall_seconds=0.05)
        message = str(excinfo.value)
        assert "watchdog" in message
        assert "events still pending" in message
        assert f"t={sim.now:g}s" in message

    def test_watchdog_quiet_on_fast_runs(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_wall_seconds=30.0)
        assert sim.steps == 10

    def test_non_positive_budget_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().run(max_wall_seconds=0.0)
