"""repro.journal — crash-consistent run store and checkpoint/resume layer.

Three pieces, one contract:

* :mod:`repro.journal.atomic` — atomic artifact writes (temp file +
  fsync + rename): readers and resumed runs never see a torn manifest,
  trace, or experiment output.
* :mod:`repro.journal.store` — the append-only, per-record-CRC
  execution journal (:class:`RunJournal`): each completed unit of work
  is one fsynced record carrying its results, RNG draw ledger, and
  captured telemetry.  A ``kill -9`` at any byte leaves either a clean
  journal or a torn tail that resume truncates; real corruption raises
  :class:`~repro.errors.JournalError` naming the record.
* :mod:`repro.journal.checkpoint` — replay glue: capture/graft for
  in-process units and the journaled chaos runner.

The contract: ``<command> --resume RUN_DIR``, interrupted anywhere and
re-run, produces byte-identical stdout and a deterministic-twin
``--obs-dir`` manifest versus the same command never interrupted.
"""

from repro.journal.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.journal.checkpoint import graft_unit, journaled_chaos, unit_capture
from repro.journal.store import (
    CRASH_ENV,
    JOURNAL_FILENAME,
    JOURNAL_MAGIC,
    RunJournal,
    scan_journal,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "CRASH_ENV",
    "JOURNAL_FILENAME",
    "JOURNAL_MAGIC",
    "RunJournal",
    "scan_journal",
    "graft_unit",
    "journaled_chaos",
    "unit_capture",
]
