"""Command-line interface (``repro-numa``).

Subcommands mirror the tools the paper uses plus its own contribution:

* ``hardware`` — ``numactl --hardware``-style report + the link table;
* ``stream`` — STREAM runs (single pair or the full matrix);
* ``fio`` — run a single job or an ini job file;
* ``iomodel`` — Algorithm 1 (the paper's numademo extension);
* ``predict`` — Eq. 1 mixture prediction;
* ``advise`` — class-aware placement advice;
* ``experiment`` — regenerate any paper table/figure by id.
"""

from repro.cli.main import main

__all__ = ["main"]
