"""Shard planning and order-preserving merges for the worker fabric.

Pure functions, no processes: :func:`plan_shards` cuts a work list into
contiguous slices (one per worker task) and the merge helpers fold
per-shard results back together **in shard order**.  Contiguity plus
in-order folding is what makes sharded execution indistinguishable from
serial execution for every order-sensitive artifact we gate on:

* result dicts keep the serial insertion order (shard ``k`` holds a
  contiguous run of items, and shards are folded ``0, 1, 2, ...``);
* RNG draw ledgers merge by name-wise addition, which reproduces the
  serial ledger exactly because streams are name-keyed and every name
  is drawn the same number of times no matter which process drew it.

Shard *counts* are a throughput knob, never a semantics knob: any
``n_shards`` (including more shards than items) yields the same merged
answer.
"""

from __future__ import annotations

from repro.errors import FabricError

__all__ = ["plan_shards", "merge_in_order", "merge_draws"]


def plan_shards(n_items: int, n_shards: int) -> "list[tuple[int, int]]":
    """Contiguous ``[start, stop)`` slices covering ``range(n_items)``.

    At most ``n_shards`` non-empty slices, balanced to within one item,
    earlier shards taking the extra items.  More shards than items
    degrades gracefully to one slice per item; zero items yields an
    empty plan.
    """
    if n_items < 0:
        raise FabricError(f"cannot shard a negative item count ({n_items})")
    if n_shards < 1:
        raise FabricError(f"need >= 1 shard, got {n_shards}")
    shards = min(n_shards, n_items)
    plan: list[tuple[int, int]] = []
    start = 0
    for k in range(shards):
        size = n_items // shards + (1 if k < n_items % shards else 0)
        plan.append((start, start + size))
        start += size
    return plan


def merge_in_order(shard_results: "list[dict]") -> dict:
    """Fold per-shard result dicts in shard order into one dict.

    With contiguous shards this reproduces the serial insertion order,
    so iteration (and therefore rendering) of the merged dict is
    byte-identical to the unsharded run.  Key collisions across shards
    indicate a broken plan and raise.
    """
    merged: dict = {}
    for result in shard_results:
        for key, value in result.items():
            if key in merged:
                raise FabricError(f"shard results collide on key {key!r}")
            merged[key] = value
    return merged


def merge_draws(shard_draws: "list[dict[str, int]]") -> "dict[str, int]":
    """Sum per-shard RNG draw ledgers name-wise, in shard order."""
    merged: dict[str, int] = {}
    for draws in shard_draws:
        for name, n in draws.items():
            merged[name] = merged.get(name, 0) + int(n)
    return merged
