"""PCIe SSD array model (the paper's two LSI Nytro WarpDrive cards)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.dma import DmaEngine
from repro.devices.interrupts import IrqModel
from repro.devices.pcie import PcieLink
from repro.devices.response import EngineProfile
from repro.errors import DeviceError

__all__ = ["SsdArray"]


@dataclass(frozen=True)
class SsdArray:
    """One or more PCIe flash cards benchmarked as a unit.

    The paper drives both cards simultaneously with at least two
    processes, kernel-bypass libaio at iodepth 16, so the array's DMA
    engine exposes ``n_cards`` parallel contexts.

    Parameters
    ----------
    name:
        Array name.
    node_id:
        NUMA node whose I/O hub the cards hang off.
    pcie:
        Per-card PCIe attachment.
    n_cards:
        Cards in the array.
    engines:
        Profiles keyed by ``libaio_write`` / ``libaio_read``.
    min_iodepth:
        Queue depth below which a card cannot stay saturated; the
        benchmark layer validates jobs against it (the paper uses 16).
    """

    name: str
    node_id: int
    pcie: PcieLink
    engines: dict[str, EngineProfile]
    n_cards: int = 2
    min_iodepth: int = 4
    irq: IrqModel = field(default=None)  # type: ignore[assignment]
    dma: DmaEngine = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_cards < 1:
            raise DeviceError(f"SSD array {self.name!r} needs >= 1 card")
        if self.irq is None:
            object.__setattr__(self, "irq", IrqModel(irq_node=self.node_id))
        if self.dma is None:
            object.__setattr__(
                self,
                "dma",
                DmaEngine(max_gbps=self.n_cards * self.pcie.data_gbps, contexts=self.n_cards),
            )
        if not self.engines:
            raise DeviceError(f"SSD array {self.name!r} has no engine profiles")
        aggregate_limit = self.n_cards * self.pcie.data_gbps
        for engine_name, profile in self.engines.items():
            if profile.curve.cap_gbps > aggregate_limit + 1e-9:
                raise DeviceError(
                    f"SSD array {self.name!r} engine {engine_name!r} caps at "
                    f"{profile.curve.cap_gbps} Gbps, above the array PCIe limit "
                    f"{aggregate_limit} Gbps"
                )

    def engine(self, name: str) -> EngineProfile:
        """The profile for engine ``name``; raises on unknown engines."""
        try:
            return self.engines[name]
        except KeyError as exc:
            raise DeviceError(
                f"SSD array {self.name!r} has no engine {name!r}; "
                f"available: {sorted(self.engines)}"
            ) from exc

    ENGINE_DIRECTION = {
        "libaio_write": "write",
        "libaio_read": "read",
    }

    def __str__(self) -> str:
        return (
            f"SSD array {self.name}: {self.n_cards} x {self.pcie} on node {self.node_id}"
        )
