"""Whole-host characterization."""

import pytest

from repro.core.characterize import HostCharacterizer
from repro.errors import ModelError
from repro.topology.builders import reference_host


@pytest.fixture()
def characterizer(host, registry):
    return HostCharacterizer(host, registry=registry, runs=5)


class TestCharacterize:
    def test_device_nodes(self, characterizer):
        assert characterizer.device_nodes() == (7,)

    def test_characterize_builds_both_models(self, characterizer):
        result = characterizer.characterize(7)
        assert result.write_model.mode == "write"
        assert result.read_model.mode == "read"
        assert result.target_node == 7

    def test_characterize_many_matches_one_by_one(self, characterizer):
        swept = characterizer.characterize_many((0, 7))
        for node in (0, 7):
            single = characterizer.characterize(node)
            assert swept[node].write_model.values == single.write_model.values
            assert swept[node].read_model.values == single.read_model.values

    def test_cost_accounting(self, characterizer):
        result = characterizer.characterize(7)
        # 3 write classes + 4 read classes vs 16 exhaustive probes.
        assert result.exhaustive_probes == 16
        assert result.reduced_probes == 7
        assert result.cost_reduction == pytest.approx(1 - 7 / 16)

    def test_render(self, characterizer):
        text = characterizer.characterize(7).render()
        assert "device write" in text
        assert "device read" in text
        assert "Probe cost" in text

    def test_characterize_devices(self, characterizer):
        results = characterizer.characterize_devices()
        assert set(results) == {7}

    def test_no_devices_rejected(self, registry):
        bare = reference_host(with_devices=False)
        characterizer = HostCharacterizer(bare, registry=registry, runs=5)
        with pytest.raises(ModelError):
            characterizer.characterize_devices()
