#!/usr/bin/env python3
"""Cross-device contention: when two well-modelled jobs collide.

The paper models one device at a time.  Real data-intensive hosts run
the NIC and the SSDs together — a data-transfer node simultaneously
receives from the network and writes to flash.  This example shows the
fabric deciding the outcome:

* placed naively (both jobs' buffers on node 2), the NIC and SSD
  writes *share* the starved 2->7 request direction and collapse to its
  26.6 Gbps;
* placed with the class model (one job per healthy class-2 node), they
  run at full speed simultaneously;
* the traffic counters point at the guilty link either way.

Run:  python examples/device_contention.py
"""

from repro import reference_host
from repro.bench.concurrent import ConcurrentRunner
from repro.bench.jobfile import FioJob
from repro.core import IOModelBuilder

def jobs_from(nic_node: int, ssd_node: int):
    """A NIC bulk send and an SSD ingest, 4 streams each."""
    return [
        FioJob(name="nic-send", engine="rdma", rw="write", numjobs=4,
               cpunodebind=nic_node),
        FioJob(name="ssd-ingest", engine="libaio", rw="write", numjobs=4,
               cpunodebind=ssd_node),
    ]

def main() -> None:
    host = reference_host()
    runner = ConcurrentRunner(host)

    print("=" * 72)
    print("1. Naive placement: both jobs' buffers on node 2")
    print("=" * 72)
    naive = runner.run(jobs_from(2, 2))
    print(naive.render())
    print(f"  total: {naive.total_gbps:.1f} Gbps")

    print()
    print("=" * 72)
    print("2. Model-driven placement: one healthy class-2 node per job")
    print("=" * 72)
    model = IOModelBuilder(host).build(7, "write")
    class2 = model.class_by_rank(2).node_ids
    print(f"write class 2 nodes: {class2} — give the NIC {class2[0]} "
          f"and the SSD {class2[-1]}")
    placed = runner.run(jobs_from(class2[0], class2[-1]))
    print(placed.render())
    print(f"  total: {placed.total_gbps:.1f} Gbps")

    gain = placed.total_gbps / naive.total_gbps - 1
    print(f"\nmodel-driven placement moves {100 * gain:.0f} % more data "
          f"in the same wall-clock — and the counters show why: the "
          f"naive run pins link-dma:2>7 at 100 %.")


if __name__ == "__main__":
    main()
