"""Wire protocol: framing, schema validation, typed error taxonomy."""

import json

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    ERROR_CODES,
    METHODS,
    decode_request,
    encode_message,
    encode_result_line,
    error_response,
    result_response,
    validate_params,
    wire_fragments,
)


def req(method, params=None, req_id=1):
    msg = {"jsonrpc": "2.0", "id": req_id, "method": method}
    if params is not None:
        msg["params"] = params
    return json.dumps(msg)


class TestDecode:
    def test_well_formed(self):
        rid, method, params, deadline = decode_request(
            req("advise", {"target": 7, "tasks": 4, "deadline_ms": 250})
        )
        assert (rid, method) == (1, "advise")
        assert params["target"] == 7
        assert deadline == 250

    def test_no_deadline_is_none(self):
        *_, deadline = decode_request(req("health"))
        assert deadline is None

    @pytest.mark.parametrize("line,kind", [
        ("{not json", "parse_error"),
        ("[1,2,3]", "invalid_request"),
        (json.dumps({"jsonrpc": "1.0", "id": 1, "method": "health"}),
         "invalid_request"),
        (json.dumps({"jsonrpc": "2.0", "method": "health"}), "invalid_request"),
        (json.dumps({"jsonrpc": "2.0", "id": True, "method": "health"}),
         "invalid_request"),
        (json.dumps({"jsonrpc": "2.0", "id": 1, "method": 7}),
         "invalid_request"),
        (json.dumps({"jsonrpc": "2.0", "id": 1, "method": "health",
                     "params": [1]}), "invalid_request"),
        (req("classify", {"target": 7, "deadline_ms": -5}), "invalid_params"),
        (req("classify", {"target": 7, "deadline_ms": "soon"}),
         "invalid_params"),
    ])
    def test_malformed_lines_raise_typed(self, line, kind):
        with pytest.raises(ServiceError) as exc:
            decode_request(line)
        assert exc.value.kind == kind


class TestValidate:
    def test_defaults_applied(self):
        params = validate_params("advise", {"target": 7, "tasks": 2})
        assert params["mode"] == "write"
        assert params["tolerance"] == 0.05
        assert params["avoid_irq_node"] is False

    def test_unknown_method(self):
        with pytest.raises(ServiceError) as exc:
            validate_params("evacuate", {})
        assert exc.value.kind == "method_not_found"
        assert "evacuate" in str(exc.value)

    def test_unknown_param_named(self):
        with pytest.raises(ServiceError) as exc:
            validate_params("plan", {"wrote_weight": 0.5})
        assert exc.value.kind == "invalid_params"
        assert exc.value.data["param"] == "wrote_weight"

    def test_missing_required_named(self):
        with pytest.raises(ServiceError) as exc:
            validate_params("advise", {"target": 7})
        assert exc.value.data["param"] == "tasks"

    def test_deadline_param_is_stripped(self):
        params = validate_params("health", {"deadline_ms": 100})
        assert params == {}

    @pytest.mark.parametrize("params,param", [
        ({"target": True, "tasks": 1}, "target"),  # bool is not an int here
        ({"target": 7, "tasks": 0}, "tasks"),
        ({"target": 7, "tasks": 1, "mode": "sideways"}, "mode"),
        ({"target": 7, "tasks": 1, "tolerance": 1.0}, "tolerance"),
        ({"target": -1, "tasks": 1}, "target"),
        ({"target": 7, "tasks": 1, "avoid_irq_node": 1}, "avoid_irq_node"),
    ])
    def test_advise_violations_name_the_param(self, params, param):
        with pytest.raises(ServiceError) as exc:
            validate_params("advise", params)
        assert exc.value.kind == "invalid_params"
        assert exc.value.data["param"] == param

    def test_streams_must_be_nonempty_ints(self):
        with pytest.raises(ServiceError):
            validate_params("predict_eq1", {"target": 7, "streams": []})
        with pytest.raises(ServiceError):
            validate_params("predict_eq1", {"target": 7, "streams": [1, "x"]})


class TestEnvelopes:
    def test_every_kind_has_a_code(self):
        assert len(set(ERROR_CODES.values())) == len(ERROR_CODES)

    def test_result_roundtrip(self):
        line = encode_message(result_response(3, {"ok": True}))
        payload = json.loads(line)
        assert payload == {"jsonrpc": "2.0", "id": 3, "result": {"ok": True}}

    def test_error_envelope_carries_kind_code_data(self):
        exc = ServiceError("overloaded", "queue full", data={"limit": 4})
        payload = error_response(9, exc)
        assert payload["error"]["code"] == ERROR_CODES["overloaded"]
        assert payload["error"]["kind"] == "overloaded"
        assert payload["error"]["data"] == {"limit": 4}

    def test_encoding_is_byte_stable(self):
        msg = result_response(1, {"b": 2, "a": 1})
        assert encode_message(msg) == encode_message(json.loads(encode_message(msg)))

    def test_schema_covers_all_methods(self):
        assert set(METHODS) == {
            "advise", "plan", "predict_eq1", "classify", "health", "ready",
            "metrics",
        }


class TestWireFragments:
    """The spliced fast path must be byte-identical to full encoding."""

    PAYLOAD = {
        "machine": "ref-host",
        "predicted_gbps": 12.345678,
        "ranking": [{"node": 1, "combined_gbps": 0.1}],
        "degraded": False,
    }

    @pytest.mark.parametrize("staleness", [0.0, 0.125, 3.5, 1234.567891])
    @pytest.mark.parametrize("req_id", [1, 0, -7, "abc-123"])
    def test_spliced_line_matches_encode_message(self, staleness, req_id):
        pre, post = wire_fragments(self.PAYLOAD, tier=1)
        stamped = dict(self.PAYLOAD, tier=1, staleness_s=staleness)
        expected = encode_message(result_response(req_id, stamped))
        assert encode_result_line(req_id, pre, staleness, post) == expected

    def test_fragments_do_not_mutate_the_payload(self):
        payload = dict(self.PAYLOAD)
        wire_fragments(payload, tier=2)
        assert payload == self.PAYLOAD

    def test_fragments_split_around_the_staleness_digits(self):
        pre, post = wire_fragments(self.PAYLOAD, tier=3)
        assert pre.endswith('"staleness_s":')
        assert post[0] in ",}"
        assert '"tier":3' in pre + post
