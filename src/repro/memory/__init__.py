"""Memory system: allocation policies, page accounting, numastat.

Models the Linux NUMA memory behaviour the paper's experiments depend
on: the *local-preferred* default policy (§II-B), explicit binding and
interleaving (what ``numactl``/``libnuma`` configure), per-node free
memory (node 0's OS-resident anomaly), and the allocation counters
``numastat`` reports.
"""

from repro.memory.allocator import Allocation, PageAllocator
from repro.memory.controller import MemoryController
from repro.memory.numastat import NumaStat
from repro.memory.policy import AllocPolicy, MemBinding

__all__ = [
    "Allocation",
    "PageAllocator",
    "MemoryController",
    "NumaStat",
    "AllocPolicy",
    "MemBinding",
]
