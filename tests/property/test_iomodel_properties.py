"""Algorithm 1 consistency on machines the calibration never saw.

Invariant: the empirical model (noisy memcpy probes) must agree with
the machine's analytic DMA capacity model — same node ranking, classes
that partition the node set, local+neighbour always first.  Run over
seeded `scaled_host` instances with random credit asymmetries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iomodel import IOModelBuilder
from repro.rng import RngRegistry
from repro.topology.builders import scaled_host
from repro.topology.machine import Relation

hosts = st.builds(
    scaled_host,
    n_packages=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=40),
    asymmetry_fraction=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)

targets = st.integers(min_value=0, max_value=3)
modes = st.sampled_from(["write", "read"])


@given(hosts, targets, modes)
@settings(max_examples=30, deadline=None)
def test_empirical_model_tracks_analytic_capacity(machine, target_idx, mode):
    target = machine.node_ids[target_idx % machine.n_nodes]
    model = IOModelBuilder(machine, registry=RngRegistry(), runs=5).build(
        target, mode
    )
    if mode == "write":
        analytic = {i: machine.dma_path_gbps(i, target) for i in machine.node_ids}
    else:
        analytic = {i: machine.dma_path_gbps(target, i) for i in machine.node_ids}
    # Every analytically-separated pair (>5 %) must keep its order in the
    # measured model.  (A global rank correlation is NOT asserted: on a
    # symmetric machine most analytic values tie exactly, and Spearman
    # over noise-broken ties is meaningless.)
    for i in machine.node_ids:
        for j in machine.node_ids:
            if analytic[i] > analytic[j] * 1.05:
                assert model.values[i] > model.values[j], (i, j)


@given(hosts, targets, modes)
@settings(max_examples=30, deadline=None)
def test_model_structure_invariants(machine, target_idx, mode):
    target = machine.node_ids[target_idx % machine.n_nodes]
    model = IOModelBuilder(machine, registry=RngRegistry(), runs=5).build(
        target, mode
    )
    # Classes partition the nodes.
    classified = sorted(n for c in model.classes for n in c.node_ids)
    assert classified == list(machine.node_ids)
    # Class 1 is exactly the target's package.
    first = set(model.class_by_rank(1).node_ids)
    expected = {
        n for n in machine.node_ids
        if machine.relation(target, n) in (Relation.LOCAL, Relation.NEIGHBOR)
    }
    assert first == expected
    # Remote class averages strictly decrease with rank.
    averages = [c.avg for c in model.classes[1:]]
    assert averages == sorted(averages, reverse=True)


@given(hosts, targets)
@settings(max_examples=20, deadline=None)
def test_model_roundtrips_through_dict(machine, target_idx):
    import json

    target = machine.node_ids[target_idx % machine.n_nodes]
    model = IOModelBuilder(machine, registry=RngRegistry(), runs=5).build(
        target, "write"
    )
    from repro.core.model import IOPerformanceModel

    back = IOPerformanceModel.from_dict(json.loads(json.dumps(model.to_dict())))
    assert back.values == model.values
    assert [c.node_ids for c in back.classes] == [c.node_ids for c in model.classes]
    assert back.mode == model.mode and back.target_node == model.target_node
