"""Job-file round-trip properties."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.jobfile import (
    FioJob,
    format_size,
    parse_jobfile,
    parse_size,
    write_jobfile,
)
from repro.units import GB, KiB, MiB


@st.composite
def fio_jobs(draw):
    engine, rw = draw(
        st.sampled_from(
            [("tcp", "send"), ("tcp", "recv"), ("rdma", "write"),
             ("rdma", "read"), ("libaio", "write"), ("libaio", "read"),
             ("memcpy", "write"), ("memcpy", "read")]
        )
    )
    kwargs = dict(
        name=draw(st.from_regex(r"[a-z][a-z0-9\-]{0,15}", fullmatch=True)),
        engine=engine,
        rw=rw,
        numjobs=draw(st.integers(min_value=1, max_value=16)),
        blocksize=draw(st.sampled_from([4 * KiB, 128 * KiB, MiB])),
        iodepth=draw(st.integers(min_value=4, max_value=64)),
        size_bytes=draw(st.sampled_from([GB, 40 * GB, 400 * GB])),
        cpunodebind=draw(st.one_of(st.none(), st.integers(0, 7))),
    )
    if engine == "memcpy":
        kwargs["target_node"] = draw(st.integers(0, 7))
        kwargs["cpunodebind"] = draw(st.integers(0, 7))
    return FioJob(**kwargs)


@given(st.lists(fio_jobs(), min_size=1, max_size=5, unique_by=lambda j: j.name))
@settings(max_examples=100, deadline=None)
def test_write_parse_roundtrip(jobs):
    parsed = parse_jobfile(write_jobfile(jobs))
    assert len(parsed) == len(jobs)
    for original, back in zip(jobs, parsed):
        assert back.name == original.name
        assert back.engine == original.engine
        assert back.rw == original.rw
        assert back.numjobs == original.numjobs
        assert back.blocksize == original.blocksize
        assert back.iodepth == original.iodepth
        assert back.size_bytes == original.size_bytes
        assert back.cpunodebind == original.cpunodebind
        assert back.target_node == original.target_node


@given(st.sampled_from([1, 512, 4096, 128 * KiB, MiB, 40 * MiB, GB, 400 * GB]))
def test_size_format_roundtrip(n):
    assert parse_size(format_size(n)) == n
