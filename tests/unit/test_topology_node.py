"""Node/core/package records."""

import pytest

from repro.errors import TopologyError
from repro.topology.node import Core, NumaNode, Package
from repro.units import GiB


def _cores(node_id, n=4, base=0):
    return tuple(Core(core_id=base + i, node_id=node_id) for i in range(n))


class TestCore:
    def test_valid(self):
        core = Core(core_id=5, node_id=1)
        assert core.core_id == 5

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            Core(core_id=-1, node_id=0)


class TestNumaNode:
    def test_valid_node(self):
        node = NumaNode(node_id=0, package_id=0, cores=_cores(0))
        assert node.n_cores == 4
        assert node.free_bytes == node.memory_bytes

    def test_free_bytes_subtracts_os(self):
        node = NumaNode(
            node_id=0, package_id=0, cores=_cores(0),
            memory_bytes=4 * GiB, os_resident_bytes=int(2.5 * GiB),
        )
        assert node.free_bytes == 4 * GiB - int(2.5 * GiB)

    def test_core_home_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, package_id=0, cores=_cores(1))

    def test_empty_cores_rejected(self):
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, package_id=0, cores=())

    def test_os_resident_bounds(self):
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, package_id=0, cores=_cores(0),
                     memory_bytes=GiB, os_resident_bytes=2 * GiB)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, package_id=0, cores=_cores(0), dram_gbps=0)


class TestPackage:
    def test_valid(self):
        pkg = Package(package_id=0, node_ids=(0, 1))
        assert pkg.node_ids == (0, 1)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Package(package_id=0, node_ids=())

    def test_duplicate_rejected(self):
        with pytest.raises(TopologyError):
            Package(package_id=0, node_ids=(1, 1))
