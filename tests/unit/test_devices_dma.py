"""DMA engine round-robin service and mixture derating."""

import pytest

from repro.devices.dma import DmaEngine
from repro.errors import DeviceError


class TestPerStreamCaps:
    def test_single_stream_full_path(self):
        engine = DmaEngine(max_gbps=32.0)
        assert engine.per_stream_caps([22.0]) == [pytest.approx(22.0)]

    def test_n_streams_divide(self):
        engine = DmaEngine(max_gbps=32.0)
        caps = engine.per_stream_caps([20.0, 20.0, 10.0, 10.0])
        assert caps == [pytest.approx(5.0), pytest.approx(5.0),
                        pytest.approx(2.5), pytest.approx(2.5)]

    def test_contexts_delay_division(self):
        engine = DmaEngine(max_gbps=64.0, contexts=2)
        caps = engine.per_stream_caps([28.0, 28.0])
        assert caps == [pytest.approx(28.0)] * 2

    def test_single_class_aggregate_preserved(self):
        # n streams from one class still sum to the class level.
        engine = DmaEngine(max_gbps=32.0)
        for n in (1, 2, 4, 8):
            caps = engine.per_stream_caps([18.0] * n)
            assert sum(caps) == pytest.approx(18.0)

    def test_empty(self):
        assert DmaEngine(max_gbps=1.0).per_stream_caps([]) == []

    def test_rejects_bad_path(self):
        with pytest.raises(DeviceError):
            DmaEngine(max_gbps=1.0).per_stream_caps([0.0])


class TestMixtureFactor:
    def test_single_class_costs_nothing(self):
        engine = DmaEngine(max_gbps=32.0)
        assert engine.mixture_factor([4], mix_coef=0.06) == pytest.approx(1.0)

    def test_fifty_fifty_pays_half_coef(self):
        engine = DmaEngine(max_gbps=32.0)
        assert engine.mixture_factor([2, 2], mix_coef=0.06) == pytest.approx(0.97)

    def test_more_diversity_costs_more(self):
        engine = DmaEngine(max_gbps=32.0)
        two = engine.mixture_factor([2, 2], mix_coef=0.06)
        four = engine.mixture_factor([1, 1, 1, 1], mix_coef=0.06)
        assert four < two

    def test_empty_shares(self):
        assert DmaEngine(max_gbps=1.0).mixture_factor([], 0.06) == 1.0

    def test_invalid_shares_rejected(self):
        with pytest.raises(DeviceError):
            DmaEngine(max_gbps=1.0).mixture_factor([0, 0], 0.06)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(DeviceError):
            DmaEngine(max_gbps=0)

    def test_bad_contexts(self):
        with pytest.raises(DeviceError):
            DmaEngine(max_gbps=1.0, contexts=0)
