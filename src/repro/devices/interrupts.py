"""Interrupt routing model.

The paper pins every device interrupt to the device's local node
(§III-B2), then observes the consequence: benchmark processes on that
node contend with IRQ handling and often lose to the neighbouring node
(§IV-B1).  :class:`IrqModel` captures this as a per-engine throughput
factor applied to streams whose CPU node is the IRQ node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

__all__ = ["IrqModel"]


@dataclass(frozen=True)
class IrqModel:
    """Where a device's interrupts are handled.

    Parameters
    ----------
    irq_node:
        NUMA node whose cores service this device's interrupts (the
        device-local node under the paper's tuning).
    """

    irq_node: int

    def __post_init__(self) -> None:
        if self.irq_node < 0:
            raise DeviceError(f"invalid IRQ node {self.irq_node!r}")

    def factor(self, cpu_node: int, sensitivity: float) -> float:
        """Throughput factor for a stream running on ``cpu_node``.

        ``sensitivity`` is the engine's ``irq_sensitivity`` (1.0 for
        offloaded protocols, below 1.0 for CPU-heavy ones).
        """
        if not 0 < sensitivity <= 1:
            raise DeviceError(f"sensitivity must be in (0, 1], got {sensitivity!r}")
        return sensitivity if cpu_node == self.irq_node else 1.0
