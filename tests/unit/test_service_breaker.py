"""Circuit breaker state machine on an injectable logical clock."""

import pytest

from repro.retrying import RetryPolicy
from repro.rng import RngRegistry
from repro.service.breaker import CircuitBreaker


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make(threshold=3, base=1.0, jitter=0.0, rng=None):
    clock = Clock()
    breaker = CircuitBreaker(
        failure_threshold=threshold,
        backoff=RetryPolicy(max_retries=0, base_delay_s=base,
                            multiplier=2.0, jitter=jitter),
        rng=rng,
        clock=clock,
    )
    return breaker, clock


class TestTrip:
    def test_starts_closed_and_allows(self):
        breaker, _ = make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestRecovery:
    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = make(threshold=1, base=1.0)
        breaker.record_failure()
        clock.t = 1.5  # past the 1 s window
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # concurrent request: rejected

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1)
        breaker.record_failure()
        clock.t = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trip_count == 0

    def test_probe_failure_reopens_with_longer_window(self):
        breaker, clock = make(threshold=1, base=1.0)
        breaker.record_failure()  # trip 1: window 1 s
        clock.t = 1.5
        assert breaker.allow()
        breaker.record_failure()  # probe fails: trip 2, window 2 s
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 2
        clock.t = 3.0  # 1.5 s into a 2 s window: still open
        assert not breaker.allow()
        clock.t = 3.6
        assert breaker.allow()

    def test_transitions_are_logged_with_times(self):
        breaker, clock = make(threshold=1, base=1.0)
        breaker.record_failure()
        clock.t = 1.2
        breaker.allow()
        breaker.record_success()
        states = [s for _, s in breaker.transitions]
        assert states == [
            CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED,
        ]

    def test_jittered_windows_are_seed_deterministic(self):
        def run():
            rng = RngRegistry(7).stream("breaker")
            breaker, clock = make(threshold=1, base=1.0, jitter=0.25, rng=rng)
            opens = []
            for _ in range(4):
                breaker.record_failure()
                opens.append(breaker._open_until - clock.t)
                clock.t = breaker._open_until
                assert breaker.allow()
            return opens

        assert run() == run()
