"""Weighted max-min fair allocation by progressive filling.

The classic water-filling algorithm: raise every unfrozen flow's rate in
proportion to its weight until some resource saturates (or a flow hits
its demand ceiling); freeze the affected flows; repeat.  Runs in
O(F * R) per round and at most F rounds — trivial at this library's
problem sizes (tens of flows, dozens of resources).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.flows.flow import Flow

__all__ = ["maxmin_allocate"]

_EPS = 1e-12


def maxmin_allocate(
    flows: Iterable[Flow], capacities: Mapping[str, float]
) -> dict[str, float]:
    """Weighted max-min fair rates for ``flows`` over ``capacities``.

    Parameters
    ----------
    flows:
        The competing flows.  Every resource a flow names must appear in
        ``capacities``.
    capacities:
        Resource name -> capacity in Gbps.  Resources no flow uses are
        ignored.

    Returns
    -------
    dict
        Flow name -> allocated rate in Gbps.

    Raises
    ------
    SimulationError
        On duplicate flow names, unknown resources, or non-positive
        capacities.
    """
    flow_list = list(flows)
    names = [f.name for f in flow_list]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate flow names in allocation: {sorted(names)}")
    for f in flow_list:
        for r in f.resources:
            if r not in capacities:
                raise SimulationError(f"flow {f.name!r} uses unknown resource {r!r}")
    used = {r for f in flow_list for r in f.resources}
    for r in used:
        if capacities[r] <= 0:
            raise SimulationError(f"resource {r!r} has non-positive capacity")

    remaining = {r: float(capacities[r]) for r in used}
    rates = {f.name: 0.0 for f in flow_list}
    active = {f.name: f for f in flow_list}

    while active:
        # Weighted load on each resource from still-active flows.
        load: dict[str, float] = {}
        for f in active.values():
            for r in f.resources:
                load[r] = load.get(r, 0.0) + f.weight

        # Largest uniform per-weight increment every active flow can take.
        increment = math.inf
        for r, w in load.items():
            increment = min(increment, remaining[r] / w)
        for f in active.values():
            headroom = (f.demand_gbps - rates[f.name]) / f.weight
            increment = min(increment, headroom)

        if increment is math.inf:
            # All active flows are elastic and touch no resources: unbounded.
            raise SimulationError(
                "unbounded allocation: elastic flow(s) traverse no resources: "
                f"{sorted(active)}"
            )
        increment = max(increment, 0.0)

        for f in active.values():
            rates[f.name] += increment * f.weight
            for r in f.resources:
                remaining[r] -= increment * f.weight

        # Freeze flows that hit their demand or a saturated resource.
        saturated = {r for r, c in remaining.items() if c <= _EPS * capacities[r] + _EPS}
        frozen = [
            name
            for name, f in active.items()
            if rates[name] >= f.demand_gbps - _EPS
            or any(r in saturated for r in f.resources)
        ]
        if not frozen:  # pragma: no cover - numeric safety valve
            raise SimulationError("progressive filling made no progress")
        for name in frozen:
            del active[name]

    return rates
