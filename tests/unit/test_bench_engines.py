"""fio engines against the simulator."""

import pytest

from repro.bench.engines import (
    DeviceIOEngine,
    MemcpyEngine,
    bulk_copy_gbps,
    bulk_copy_gbps_many,
    link_capacities,
    link_resource,
    resolve_placements,
)
from repro.bench.jobfile import FioJob
from repro.errors import BenchmarkError
from repro.memory.allocator import PageAllocator
from repro.rng import RngRegistry


def _rng(name="engine-test"):
    return RngRegistry().stream(name)


class TestBulkCopy:
    def test_local_copy_bound_by_controller(self, host):
        assert bulk_copy_gbps(host, 7, 7, threads=4) == pytest.approx(56.0)

    def test_remote_copy_bound_by_link(self, host):
        assert bulk_copy_gbps(host, 0, 7, threads=4) == pytest.approx(44.5, abs=0.1)

    def test_single_thread_capped(self, host):
        assert bulk_copy_gbps(host, 0, 7, threads=1) == pytest.approx(
            host.params.dma_per_thread_gbps
        )

    def test_threads_must_be_positive(self, host):
        with pytest.raises(BenchmarkError):
            bulk_copy_gbps(host, 0, 7, threads=0)

    def test_batched_pairs_match_per_pair_calls(self, host):
        pairs = [(i, 7) for i in host.node_ids] + [(7, i) for i in host.node_ids]
        batched = bulk_copy_gbps_many(host, pairs, threads=4)
        assert batched == [bulk_copy_gbps(host, s, d, threads=4) for s, d in pairs]

    def test_batched_threads_must_be_positive(self, host):
        with pytest.raises(BenchmarkError):
            bulk_copy_gbps_many(host, [(0, 7)], threads=0)

    def test_link_capacities_cover_all_links(self, host):
        caps = link_capacities(host)
        assert len(caps) == len(host.links)
        assert caps[link_resource(0, 7)] == pytest.approx(0.87 * 51.2)


class TestResolvePlacements:
    def test_single_node_local_buffers(self, host):
        allocator = PageAllocator(host)
        job = FioJob(name="j", engine="rdma", rw="read", numjobs=4, cpunodebind=5)
        placements, allocations = resolve_placements(host, allocator, job)
        assert all(p.cpu_node == 5 for p in placements)
        assert all(p.mem_node == 5 for p in placements)
        assert len(allocations) == 4

    def test_membind_overrides(self, host):
        allocator = PageAllocator(host)
        job = FioJob(name="j", engine="rdma", rw="read", numjobs=2,
                     cpunodebind=5, membind=2)
        placements, _ = resolve_placements(host, allocator, job)
        assert all(p.mem_node == 2 for p in placements)
        assert all(p.cpu_node == 5 for p in placements)

    def test_mixed_stream_nodes(self, host):
        allocator = PageAllocator(host)
        job = FioJob(name="j", engine="rdma", rw="read", numjobs=4,
                     stream_nodes=(2, 2, 0, 0))
        placements, _ = resolve_placements(host, allocator, job)
        assert [p.cpu_node for p in placements] == [2, 2, 0, 0]


class TestDeviceIOEngine:
    def test_missing_device_rejected(self, bare_host):
        engine = DeviceIOEngine(bare_host)
        job = FioJob(name="j", engine="tcp", rw="send", cpunodebind=0)
        with pytest.raises(BenchmarkError):
            engine.run(job, _rng())

    def test_libaio_iodepth_validated(self, host):
        engine = DeviceIOEngine(host)
        job = FioJob(name="j", engine="libaio", rw="read", iodepth=1, cpunodebind=0)
        with pytest.raises(BenchmarkError):
            engine.run(job, _rng())

    def test_aggregate_is_sum_of_streams(self, host):
        engine = DeviceIOEngine(host)
        job = FioJob(name="j", engine="rdma", rw="write", numjobs=4, cpunodebind=5)
        result = engine.run(job, _rng())
        assert result.aggregate_gbps == pytest.approx(
            sum(result.per_stream_gbps.values())
        )

    def test_realistic_duration(self, host):
        # 4 streams x 400 GB at ~23 Gbps aggregate: several hundred seconds.
        engine = DeviceIOEngine(host)
        job = FioJob(name="j", engine="rdma", rw="write", numjobs=4, cpunodebind=5)
        result = engine.run(job, _rng())
        expected = 4 * 400e9 * 8 / (result.aggregate_gbps * 1e9)
        assert result.duration_s == pytest.approx(expected, rel=0.05)

    def test_irq_penalty_on_device_node(self, host):
        engine = DeviceIOEngine(host)
        results = {}
        for node in (6, 7):
            job = FioJob(name="irq", engine="tcp", rw="send", numjobs=4,
                         cpunodebind=node)
            results[node] = engine.run(job, _rng(f"irq{node}")).aggregate_gbps
        assert results[7] < results[6]

    def test_oversubscription_degrades(self, host):
        engine = DeviceIOEngine(host)
        four = engine.run(
            FioJob(name="o4", engine="rdma", rw="write", numjobs=4, cpunodebind=5),
            _rng("o"),
        )
        sixteen = engine.run(
            FioJob(name="o16", engine="rdma", rw="write", numjobs=16, cpunodebind=5),
            _rng("o"),
        )
        assert sixteen.aggregate_gbps < 0.95 * four.aggregate_gbps


class TestMemcpyEngine:
    def test_write_mode_direction(self, host):
        engine = MemcpyEngine(host)
        job = FioJob(name="m", engine="memcpy", rw="write", numjobs=4,
                     cpunodebind=0, target_node=7)
        result = engine.run(job, _rng("m"))
        assert result.tags["src"] == 0
        assert result.tags["dst"] == 7

    def test_read_mode_direction(self, host):
        engine = MemcpyEngine(host)
        job = FioJob(name="m", engine="memcpy", rw="read", numjobs=4,
                     cpunodebind=0, target_node=7)
        result = engine.run(job, _rng("m"))
        assert result.tags["src"] == 7
        assert result.tags["dst"] == 0

    def test_requires_cpunodebind(self, host):
        engine = MemcpyEngine(host)
        job = FioJob(name="m", engine="memcpy", rw="write", numjobs=4,
                     target_node=7)
        with pytest.raises(BenchmarkError):
            engine.run(job, _rng("m"))

    def test_matches_bulk_copy_model(self, host):
        engine = MemcpyEngine(host)
        job = FioJob(name="m", engine="memcpy", rw="write", numjobs=4,
                     cpunodebind=2, target_node=7)
        result = engine.run(job, _rng("m2"))
        assert result.aggregate_gbps == pytest.approx(
            bulk_copy_gbps(host, 2, 7, 4), rel=0.08
        )
