"""The calibrated reference devices."""

import pytest

from repro.devices.standard import (
    attach_device,
    attach_reference_devices,
    reference_nic,
    reference_ssd_array,
)
from repro.errors import DeviceError
from repro.topology.builders import reference_host


class TestReferenceNic:
    def test_engines_present(self):
        nic = reference_nic()
        for name in ("tcp_send", "tcp_recv", "rdma_write", "rdma_read", "rdma_send"):
            assert nic.engine(name).name == name

    def test_tcp_is_cpu_bound_rdma_is_not(self):
        nic = reference_nic()
        assert nic.engine("tcp_send").cpu_gbps_per_stream is not None
        assert nic.engine("rdma_write").cpu_gbps_per_stream is None

    def test_rdma_quieter_than_tcp(self):
        nic = reference_nic()
        assert nic.engine("rdma_write").sigma < nic.engine("tcp_send").sigma

    def test_tcp_irq_sensitive(self):
        nic = reference_nic()
        assert nic.engine("tcp_send").irq_sensitivity < 1.0
        assert nic.engine("rdma_write").irq_sensitivity == 1.0

    def test_calibrated_curve_values(self):
        # The Table IV/V fit targets.
        nic = reference_nic()
        assert nic.engine("rdma_write").curve.value(44.5) == pytest.approx(23.2, rel=0.01)
        assert nic.engine("rdma_write").curve.value(26.6) == pytest.approx(17.1, rel=0.01)
        assert nic.engine("rdma_read").curve.value(40.4) == pytest.approx(18.3, rel=0.01)
        assert nic.engine("rdma_read").curve.value(27.9) == pytest.approx(16.1, rel=0.01)


class TestReferenceSsd:
    def test_two_cards(self):
        assert reference_ssd_array().n_cards == 2

    def test_read_cap_above_write_cap(self):
        ssd = reference_ssd_array()
        assert (ssd.engine("libaio_read").curve.cap_gbps
                > ssd.engine("libaio_write").curve.cap_gbps)

    def test_calibrated_curve_values(self):
        ssd = reference_ssd_array()
        assert ssd.engine("libaio_write").curve.value(26.6) == pytest.approx(18.0, rel=0.02)
        assert ssd.engine("libaio_read").curve.value(27.9) == pytest.approx(18.5, rel=0.01)


class TestAttach:
    def test_attach_reference_devices(self):
        machine = reference_host(with_devices=False)
        attach_reference_devices(machine)
        assert set(machine.devices) == {"nic", "ssd"}

    def test_attach_duplicate_rejected(self, host):
        with pytest.raises(DeviceError):
            attach_device(host, "nic", reference_nic())

    def test_attach_unknown_node_rejected(self):
        machine = reference_host(with_devices=False)
        with pytest.raises(DeviceError):
            attach_device(machine, "weird", reference_nic(node_id=42))
