"""NUMA factor: remote versus local access latency (the paper's Table I)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.topology.machine import Machine

__all__ = ["numa_factor", "latency_matrix", "Table1Row", "table1"]


def latency_matrix(machine: Machine) -> np.ndarray:
    """Idle load-to-use latencies (seconds) for every (cpu, mem) pair."""
    ids = machine.node_ids
    out = np.zeros((len(ids), len(ids)))
    for i, a in enumerate(ids):
        for j, b in enumerate(ids):
            out[i, j] = machine.pio_round_trip_s(a, b)
    return out


def numa_factor(machine: Machine) -> float:
    """Mean remote latency over mean local latency.

    Table I's definition: "the ratio between remote access latency
    versus local one", averaged over every remote pair.
    """
    if machine.n_nodes < 2:
        raise TopologyError(
            f"NUMA factor needs >= 2 nodes; {machine.name!r} has {machine.n_nodes}"
        )
    lat = latency_matrix(machine)
    local = np.diag(lat).mean()
    n = lat.shape[0]
    off_diag = lat[~np.eye(n, dtype=bool)]
    return float(off_diag.mean() / local)


@dataclass(frozen=True)
class Table1Row:
    """One Table I row: a server type and its NUMA factors."""

    label: str
    measured: float
    paper: float

    @property
    def relative_error(self) -> float:
        """|measured - paper| / paper."""
        return abs(self.measured - self.paper) / self.paper


def table1() -> list[Table1Row]:
    """Reproduce Table I over the four builder machines."""
    from repro.topology.builders import TABLE1_BUILDERS

    rows = []
    for label, (builder, paper_value) in TABLE1_BUILDERS.items():
        machine = builder()
        rows.append(
            Table1Row(label=label, measured=numa_factor(machine), paper=paper_value)
        )
    return rows
