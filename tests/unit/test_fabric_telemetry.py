"""Worker telemetry capture and deterministic grafting."""

from __future__ import annotations

import pytest

from repro.fabric.telemetry import begin_capture, end_capture, graft
from repro.obs import recorder as _obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_recorder():
    _obs.uninstall()
    yield
    _obs.uninstall()


def _capture_task():
    """One simulated worker task: nested spans plus counters."""
    recorder = begin_capture(True)
    with _obs.span("task.outer", shard=0):
        _obs.count("task.items", 3)
        with _obs.span("task.inner"):
            _obs.count("task.items", 2)
    _obs.gauge("task.depth", 2.0)
    return end_capture(recorder)


def test_begin_capture_disabled_is_noop():
    assert begin_capture(False) is None
    assert not _obs.enabled()
    assert end_capture(None) is None


def test_begin_capture_discards_inherited_recorder():
    inherited = _obs.TraceRecorder(MetricsRegistry())
    _obs.install(inherited)
    recorder = begin_capture(True)
    assert recorder is not inherited
    assert _obs.get_recorder() is recorder
    end_capture(recorder)
    assert not _obs.enabled()


def test_capture_payload_is_plain_data():
    payload = _capture_task()
    assert set(payload) == {"events", "counters", "gauges"}
    assert payload["counters"]["task.items"] == 5
    assert payload["gauges"]["task.depth"] == 2.0
    names = [e["name"] for e in payload["events"]]
    assert names == ["task.outer", "task.inner"]


def test_end_capture_folds_solver_delta():
    recorder = begin_capture(True)
    baseline = {"solves": 2}
    recorder.metrics.count("x", 1)
    import repro.obs.stats as stats_mod

    totals = dict(baseline)
    totals["solves"] = 7

    original = stats_mod.solver_totals
    stats_mod.solver_totals = lambda: totals
    try:
        payload = end_capture(recorder, baseline)
    finally:
        stats_mod.solver_totals = original
    assert payload["counters"]["solver.solves"] == 5


def test_graft_rebases_spans_under_container():
    payload = _capture_task()
    parent = _obs.TraceRecorder(MetricsRegistry())
    _obs.install(parent)
    with _obs.span("parent.phase"):
        graft(parent, payload, label="fabric.worker", shard=1)
    _obs.uninstall()

    names = [e["name"] for e in parent.events]
    assert names == ["parent.phase", "fabric.worker", "task.outer", "task.inner"]
    container = parent.events[1]
    assert container["tags"] == {"shard": 1}
    assert container["parent"] == 0 and container["depth"] == 1
    outer, inner = parent.events[2], parent.events[3]
    assert outer["parent"] == container["seq"]
    assert inner["parent"] == outer["seq"]
    assert inner["depth"] == outer["depth"] + 1 == container["depth"] + 2
    seqs = [e["seq"] for e in parent.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert parent.metrics.counter("task.items") == 5


def test_graft_is_deterministic_across_orders():
    """Counter totals are order-insensitive; spans follow graft order."""
    payloads = [_capture_task(), _capture_task()]

    def merged(order):
        parent = _obs.TraceRecorder(MetricsRegistry())
        for idx in order:
            graft(parent, payloads[idx], shard=idx)
        return parent.metrics.snapshot()["counters"]

    assert merged([0, 1]) == merged([1, 0])


def test_graft_none_payload_is_noop():
    parent = _obs.TraceRecorder(MetricsRegistry())
    graft(parent, None)
    assert parent.events == []
