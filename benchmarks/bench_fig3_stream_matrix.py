"""F3 — Fig. 3: the 8x8 STREAM Copy bandwidth matrix."""


def test_fig3_stream_matrix(run_paper_experiment):
    result = run_paper_experiment("f3")
    assert result.data["asymmetry"] > 0.05
