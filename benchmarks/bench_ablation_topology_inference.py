"""A1 — ablation: hop-distance topology inference fails on the host."""


def test_ablation_topology_inference(run_paper_experiment):
    run_paper_experiment("a1")
