"""The ``numademo`` benchmark (§II-B), plus the paper's ``iomodel`` module.

Linux's ``numademo`` shows the effect of affinity policies (local,
remote, interleave) across seven test modules — ``memset``, ``memcpy``,
a pointer chase, and the four STREAM kernels.  The paper extends the
package with its ``iomodel`` module (§V-B); this class mirrors that
layout so the extension lands where the paper put it.

Module models (all on the PIO plane — numademo is CPU-driven):

* ``memset``   — write-only stream: no read traffic to fetch, so it runs
  ~25 % above STREAM Copy on the same binding;
* ``memcpy``   — glibc copy loop: STREAM-Copy-like;
* ``ptrchase`` — dependent loads: pure latency, one line per round trip
  per core;
* ``stream-*`` — the four STREAM kernels.
"""

from __future__ import annotations

from repro.bench.stream import STREAM_KERNELS
from repro.errors import BenchmarkError
from repro.memory.policy import AllocPolicy, MemBinding
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.topology.distance import hop_matrix
from repro.topology.machine import Machine
from repro.units import CACHE_LINE, bytes_per_s_to_gbps

__all__ = ["Numademo", "NUMADEMO_MODULES", "NUMADEMO_POLICIES"]

#: The seven numademo test modules.
NUMADEMO_MODULES = (
    "memset",
    "memcpy",
    "ptrchase",
    "stream-copy",
    "stream-scale",
    "stream-add",
    "stream-triad",
)

#: Affinity policies numademo sweeps.
NUMADEMO_POLICIES = ("local", "remote", "interleave")

#: memset writes without reading: throughput factor over STREAM Copy.
_MEMSET_FACTOR = 1.25
#: glibc memcpy tracks STREAM Copy closely.
_MEMCPY_FACTOR = 1.02


class Numademo:
    """Run the numademo module/policy grid against one machine."""

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        sigma: float = 0.01,
    ) -> None:
        self.machine = machine
        self.registry = registry or RngRegistry()
        self.sigma = sigma
        self._hops = hop_matrix(machine)
        self._index = {n: i for i, n in enumerate(machine.node_ids)}

    # --- policy -> memory placement ------------------------------------
    def _remote_node(self, cpu_node: int) -> int:
        """numademo's 'remote' case: the hop-farthest node (lowest id wins)."""
        i = self._index[cpu_node]
        return max(
            self.machine.node_ids,
            key=lambda n: (self._hops[i, self._index[n]], -n),
        )

    def binding_for(self, policy: str, cpu_node: int) -> MemBinding:
        """The memory binding a policy implies for a benchmark on ``cpu_node``."""
        if policy == "local":
            return MemBinding.bind(cpu_node)
        if policy == "remote":
            return MemBinding.bind(self._remote_node(cpu_node))
        if policy == "interleave":
            return MemBinding.interleave(*self.machine.node_ids)
        raise BenchmarkError(
            f"unknown numademo policy {policy!r}; choose from {NUMADEMO_POLICIES}"
        )

    # --- module throughput models ---------------------------------------
    def _stream_rate(self, cpu_node: int, mem_node: int, kernel: str) -> float:
        base = self.machine.pio_stream_gbps(cpu_node, mem_node)
        return base * STREAM_KERNELS[kernel]

    def _memset_rate(self, cpu_node: int, mem_node: int) -> float:
        return self._stream_rate(cpu_node, mem_node, "copy") * _MEMSET_FACTOR

    def _memcpy_rate(self, cpu_node: int, mem_node: int) -> float:
        return self._stream_rate(cpu_node, mem_node, "copy") * _MEMCPY_FACTOR

    def _ptrchase_rate(self, cpu_node: int, mem_node: int) -> float:
        """Dependent loads: one cache line per round trip per core."""
        latency = self.machine.pio_round_trip_s(cpu_node, mem_node)
        threads = self.machine.node(cpu_node).n_cores
        return bytes_per_s_to_gbps(threads * CACHE_LINE / latency)

    def _module_rate(self, module: str, cpu_node: int, mem_node: int) -> float:
        if module == "memset":
            return self._memset_rate(cpu_node, mem_node)
        if module == "memcpy":
            return self._memcpy_rate(cpu_node, mem_node)
        if module == "ptrchase":
            return self._ptrchase_rate(cpu_node, mem_node)
        if module.startswith("stream-"):
            kernel = module.split("-", 1)[1]
            if kernel in STREAM_KERNELS:
                return self._stream_rate(cpu_node, mem_node, kernel)
        raise BenchmarkError(
            f"unknown numademo module {module!r}; choose from {NUMADEMO_MODULES}"
        )

    # --- public API --------------------------------------------------------
    def run_module(self, module: str, policy: str, cpu_node: int) -> float:
        """One (module, policy) cell of the numademo table, in Gbps."""
        if cpu_node not in self.machine.node_ids:
            raise BenchmarkError(f"unknown node {cpu_node}")
        binding = self.binding_for(policy, cpu_node)
        if binding.policy is AllocPolicy.INTERLEAVE:
            # Round-robin pages: time per byte averages over the nodes,
            # i.e. the harmonic mean of per-node rates.
            rates = [
                self._module_rate(module, cpu_node, mem) for mem in binding.nodes
            ]
            value = len(rates) / sum(1.0 / r for r in rates)
        else:
            value = self._module_rate(module, cpu_node, binding.nodes[0])
        noise = NoiseModel(
            self.registry.stream(f"numademo/{module}/{policy}/n{cpu_node}")
        )
        return value * noise.factor(self.sigma)

    def run_all(self, cpu_node: int) -> dict[str, dict[str, float]]:
        """The full module x policy grid for one CPU node."""
        return {
            module: {
                policy: self.run_module(module, policy, cpu_node)
                for policy in NUMADEMO_POLICIES
            }
            for module in NUMADEMO_MODULES
        }

    def iomodel(self, target_node: int, mode: str):
        """The paper's added module: Algorithm 1 under the numademo roof."""
        # Imported here: repro.core builds on repro.bench, so a module-level
        # import would be circular.
        from repro.core.iomodel import IOModelBuilder

        builder = IOModelBuilder(self.machine, registry=self.registry.child("iomodel"))
        return builder.build(target_node, mode)

    def render(self, cpu_node: int) -> str:
        """numademo-style text table for one node."""
        grid = self.run_all(cpu_node)
        width = 12
        lines = [f"numademo on node {cpu_node} (Gbps)"]
        lines.append(
            "module".ljust(14)
            + "".join(p.rjust(width) for p in NUMADEMO_POLICIES)
        )
        for module in NUMADEMO_MODULES:
            cells = "".join(
                f"{grid[module][p]:.2f}".rjust(width) for p in NUMADEMO_POLICIES
            )
            lines.append(module.ljust(14) + cells)
        return "\n".join(lines)
