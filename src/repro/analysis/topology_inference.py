"""Topology inference from bandwidth matrices — the §IV-A negative result.

The paper tries to recover its host's interconnect topology from the
STREAM matrix under the hop-distance hypothesis (local best, one hop
second, two hops worst) and fails: the matrix is asymmetric and matches
none of the published Fig. 1 variants.  This module implements that
attempt so the failure is demonstrable:

* score every candidate topology by the (negative) correlation between
  its hop distances and the measured bandwidths;
* check whether the measurement could come from *any* symmetric
  distance metric at all (it cannot, beyond a noise threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy import stats

from repro.bench.results import BandwidthMatrix
from repro.errors import ModelError
from repro.topology.distance import hop_matrix
from repro.topology.machine import Machine

__all__ = ["CandidateScore", "InferenceReport", "infer_topology", "metric_consistency"]


@dataclass(frozen=True)
class CandidateScore:
    """How well one candidate topology explains a bandwidth matrix."""

    name: str
    spearman_rho: float  # between -hops and bandwidth; 1.0 = perfect
    violations: int  # ordered pairs where more hops gave MORE bandwidth


@dataclass(frozen=True)
class InferenceReport:
    """Outcome of the inference attempt."""

    scores: tuple[CandidateScore, ...]
    asymmetry: float
    metric_consistent: bool

    @property
    def best(self) -> CandidateScore:
        """The least-bad candidate."""
        return max(self.scores, key=lambda s: s.spearman_rho)

    def conclusive(self, rho_threshold: float = 0.95) -> bool:
        """True if some candidate explains the data well AND the data
        could come from a symmetric metric.  The paper's point is that
        this returns False on the real host."""
        return self.metric_consistent and self.best.spearman_rho >= rho_threshold

    def render(self) -> str:
        """Scores plus the verdict."""
        lines = ["Topology inference from bandwidth matrix:"]
        for s in sorted(self.scores, key=lambda s: -s.spearman_rho):
            lines.append(
                f"  {s.name:24s} rho={s.spearman_rho:+.3f}  "
                f"hop-order violations={s.violations}"
            )
        lines.append(f"  matrix asymmetry: {100 * self.asymmetry:.1f} %")
        verdict = (
            "CONCLUSIVE" if self.conclusive() else "INCONCLUSIVE (paper's finding)"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def metric_consistency(matrix: BandwidthMatrix, tolerance: float = 0.05) -> bool:
    """Could this matrix derive from a symmetric distance metric?

    Necessary condition: BW(i, j) ~= BW(j, i) within ``tolerance``.
    """
    return matrix.asymmetry() <= tolerance


def _score_candidate(
    name: str, hops: np.ndarray, matrix: BandwidthMatrix
) -> CandidateScore:
    n = len(matrix.node_ids)
    hop_list, bw_list = [], []
    for i in range(n):
        for j in range(n):
            hop_list.append(hops[i, j])
            bw_list.append(matrix.values[i, j])
    rho = float(stats.spearmanr(-np.array(hop_list), bw_list).statistic)

    violations = 0
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if hops[i, j] < hops[i, k] and matrix.values[i, j] < matrix.values[i, k]:
                    violations += 1
    return CandidateScore(name=name, spearman_rho=rho, violations=violations)


def infer_topology(
    matrix: BandwidthMatrix,
    candidates: Mapping[str, Machine] | None = None,
    candidate_builders: Mapping[str, Callable[[], Machine]] | None = None,
) -> InferenceReport:
    """Attempt to identify the topology behind ``matrix``.

    Defaults to the four published Fig. 1 Magny-Cours variants as
    candidates.
    """
    if candidates is None:
        from repro.topology.builders import magny_cours_4p

        builders = candidate_builders or {
            f"magny-cours-4p-{v}": (lambda v=v: magny_cours_4p(v))
            for v in ("a", "b", "c", "d")
        }
        candidates = {name: build() for name, build in builders.items()}
    if not candidates:
        raise ModelError("no candidate topologies supplied")

    scores = []
    for name, machine in candidates.items():
        if machine.n_nodes != len(matrix.node_ids):
            raise ModelError(
                f"candidate {name!r} has {machine.n_nodes} nodes; "
                f"matrix covers {len(matrix.node_ids)}"
            )
        scores.append(_score_candidate(name, hop_matrix(machine), matrix))
    return InferenceReport(
        scores=tuple(scores),
        asymmetry=matrix.asymmetry(),
        metric_consistent=metric_consistency(matrix),
    )
