"""The chaos harness: seeded fault scenarios and the resilience report.

Three scenarios run against the two workloads the paper's pipeline cares
about most:

* ``single-link-loss`` — the Fig. 10 DMA fan-in workload (bulk copies
  from every node into the device node) with one fabric cable failing
  mid-run.  Streams whose route dies re-route over the surviving fabric
  (status ``"rerouted"``);
* ``cascading-node-isolation`` — the same workload while a victim
  node's cables fail one after another until it is fully isolated; its
  streams exhaust their retry budget and complete as structured
  ``"failed"`` outcomes while the rest of the machine keeps going;
* ``flapping-uplink`` — a cluster shuffle over a switched fabric while
  one host's uplink flaps down and up; blocked transfers wait the flaps
  out with seeded exponential backoff (status ``"recovered"``).

Every random choice (victim link, victim node, victim host, backoff
jitter) comes from a named :class:`~repro.rng.RngRegistry` stream, so a
given seed yields a bit-identical report on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fabric import SwitchedCluster, Transfer
from repro.errors import FaultError, RoutingError, TopologyError
from repro.faults.degraded import (
    DegradedFlowRunner,
    RetryPolicy,
    machine_rerouter,
    reroute_resources,
)
from repro.faults.events import FaultEvent, LinkFail, NicPortFlap
from repro.faults.plan import FaultedMachine, FaultPlan
from repro.flows.flow import Flow
from repro.rng import RngRegistry
from repro.solver.capacity import build_capacities
from repro.topology.builders import reference_host
from repro.topology.machine import Machine, Relation
from repro.units import GB

__all__ = [
    "OutcomeRow",
    "ScenarioResult",
    "ChaosReport",
    "SCENARIOS",
    "run_scenario",
    "run_chaos",
]


# --- node reclassification under faults -----------------------------------

def _split_classes(
    machine: Machine, target: int, rel_gap: float = 0.08
) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...]]:
    """Equivalence classes of the analytic DMA path model, fault-tolerant.

    Mirrors :func:`repro.core.classify.classify_nodes` (local+neighbour
    first, remotes split at relative gaps) but over the noise-free
    :meth:`Machine.dma_path_gbps` values and tolerating unreachable
    nodes, which are returned separately as ``isolated``.
    """
    values: dict[int, float] = {}
    isolated: list[int] = []
    for n in machine.node_ids:
        try:
            values[n] = machine.dma_path_gbps(n, target)
        except RoutingError:
            isolated.append(n)
    first = [
        n
        for n in values
        if machine.relation(target, n) in (Relation.LOCAL, Relation.NEIGHBOR)
    ]
    remote = sorted((n for n in values if n not in first), key=lambda n: -values[n])
    classes: list[tuple[int, ...]] = [tuple(sorted(first))] if first else []
    group: list[int] = []
    for node in remote:
        if group and (values[group[-1]] - values[node]) / values[group[-1]] > rel_gap:
            classes.append(tuple(sorted(group)))
            group = []
        group.append(node)
    if group:
        classes.append(tuple(sorted(group)))
    return tuple(classes), tuple(isolated)


def _render_classes(classes: tuple[tuple[int, ...], ...]) -> str:
    if not classes:
        return "(none)"
    return " > ".join("{" + ",".join(str(n) for n in c) + "}" for c in classes)


# --- result records ---------------------------------------------------------

@dataclass(frozen=True)
class OutcomeRow:
    """One stream/transfer outcome, normalized across both workloads."""

    name: str
    status: str
    avg_gbps: float
    retries: int
    reroutes: int
    reason: str | None = None


@dataclass(frozen=True)
class ScenarioResult:
    """Everything the resilience report says about one scenario."""

    name: str
    title: str
    workload: str
    plan_text: str
    healthy_gbps: float
    degraded_gbps: float
    rows: tuple[OutcomeRow, ...]
    healthy_classes: tuple[tuple[int, ...], ...] | None = None
    faulted_classes: tuple[tuple[int, ...], ...] | None = None
    isolated_nodes: tuple[int, ...] = ()
    classes_note: str | None = None

    @property
    def retained(self) -> float:
        """Fraction of healthy aggregate bandwidth kept under faults."""
        if self.healthy_gbps <= 0:
            return 0.0
        return self.degraded_gbps / self.healthy_gbps

    def counts(self) -> dict[str, int]:
        """Outcome tally by status (all four statuses always present)."""
        tally = {"ok": 0, "rerouted": 0, "recovered": 0, "failed": 0}
        for row in self.rows:
            tally[row.status] = tally.get(row.status, 0) + 1
        return tally

    @property
    def retry_exhausted(self) -> tuple[OutcomeRow, ...]:
        """Streams that burned their whole retry budget and failed.

        These are the structured ``"failed"`` outcomes — the runner
        only fails a stream once its retries are spent — surfaced as
        their own report section so a tightened ``--retry-budget`` is
        immediately visible.
        """
        return tuple(r for r in self.rows if r.status == "failed")

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"## scenario: {self.name} — {self.title}",
            f"workload: {self.workload}",
            f"fault plan: {self.plan_text}",
            (
                f"aggregate: healthy {self.healthy_gbps:.2f} Gbps -> degraded "
                f"{self.degraded_gbps:.2f} Gbps (retained {100 * self.retained:.1f} %)"
            ),
            (
                "outcomes: "
                + ", ".join(f"{counts[s]} {s}" for s in
                            ("ok", "rerouted", "recovered", "failed"))
                + f"; retries {sum(r.retries for r in self.rows)}"
                + f", reroutes {sum(r.reroutes for r in self.rows)}"
            ),
        ]
        if self.healthy_classes is not None and self.faulted_classes is not None:
            lines.append(f"classes (healthy): {_render_classes(self.healthy_classes)}")
            iso = (
                ",".join(str(n) for n in self.isolated_nodes)
                if self.isolated_nodes
                else "none"
            )
            lines.append(
                f"classes (faulted): {_render_classes(self.faulted_classes)}"
                f"; isolated: {iso}"
            )
        elif self.classes_note:
            lines.append(f"classes: {self.classes_note}")
        for row in self.rows:
            suffix = f"  [{row.reason}]" if row.reason else ""
            lines.append(
                f"  {row.name:<16s} {row.status:<10s} {row.avg_gbps:7.2f} Gbps"
                f"  retries {row.retries}  reroutes {row.reroutes}{suffix}"
            )
        exhausted = self.retry_exhausted
        if exhausted:
            lines.append(
                f"retry-exhausted ({len(exhausted)} stream"
                f"{'s' if len(exhausted) != 1 else ''}):"
            )
            for row in exhausted:
                lines.append(
                    f"  {row.name:<16s} gave up after {row.retries} "
                    f"retries  [{row.reason or 'no reason recorded'}]"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible form of this result."""
        return {
            "name": self.name,
            "title": self.title,
            "workload": self.workload,
            "plan": self.plan_text,
            "healthy_gbps": self.healthy_gbps,
            "degraded_gbps": self.degraded_gbps,
            "retained": self.retained,
            "counts": self.counts(),
            "isolated_nodes": list(self.isolated_nodes),
            "healthy_classes": (
                [list(c) for c in self.healthy_classes]
                if self.healthy_classes is not None else None
            ),
            "faulted_classes": (
                [list(c) for c in self.faulted_classes]
                if self.faulted_classes is not None else None
            ),
            "outcomes": [
                {
                    "name": r.name,
                    "status": r.status,
                    "avg_gbps": r.avg_gbps,
                    "retries": r.retries,
                    "reroutes": r.reroutes,
                    "reason": r.reason,
                }
                for r in self.rows
            ],
            "retry_exhausted": [
                {"name": r.name, "retries": r.retries, "reason": r.reason}
                for r in self.retry_exhausted
            ],
        }


@dataclass(frozen=True)
class ChaosReport:
    """The full resilience report across scenarios."""

    machine_name: str
    seed: int
    results: tuple[ScenarioResult, ...]

    def render(self) -> str:
        lines = [
            f"CHAOS RESILIENCE REPORT — machine {self.machine_name!r}, "
            f"seed {self.seed}",
        ]
        for result in self.results:
            lines.append("")
            lines.append(result.render())
        total_failed = sum(r.counts()["failed"] for r in self.results)
        total_retries = sum(sum(row.retries for row in r.rows) for r in self.results)
        lines.append("")
        lines.append(
            f"totals: {len(self.results)} scenarios, "
            f"{total_failed} failed transfers, {total_retries} retries"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible form of the report."""
        return {
            "machine": self.machine_name,
            "seed": self.seed,
            "scenarios": [r.to_dict() for r in self.results],
        }


# --- the Fig. 10 DMA fan-in workload ---------------------------------------

def _dma_fanin_flows(
    machine: Machine, target: int, per_node: int, size_bytes: float
) -> tuple[list[Flow], dict[str, tuple[int, int]]]:
    flows: list[Flow] = []
    endpoints: dict[str, tuple[int, int]] = {}
    for src in machine.node_ids:
        if src == target:
            continue
        resources = reroute_resources(machine, src, target)
        for i in range(per_node):
            name = f"dma/{src}>{target}/{i}"
            flows.append(
                Flow(
                    name=name,
                    resources=resources,
                    demand_gbps=machine.params.dma_per_thread_gbps,
                    size_bytes=size_bytes,
                )
            )
            endpoints[name] = (src, target)
    return flows, endpoints


def _aggregate(outcomes) -> float:
    return sum(o.avg_gbps for o in outcomes.values())


def _run_dma_scenario(
    name: str,
    title: str,
    machine: Machine,
    registry: RngRegistry,
    plan_builder,
    quick: bool,
    retry: RetryPolicy | None = None,
) -> ScenarioResult:
    """Shared driver for the two machine-level scenarios.

    ``plan_builder(machine, rng, healthy_duration) -> FaultPlan``.
    """
    target = machine.node_ids[-1]
    per_node = 1 if quick else 2
    size = (1 if quick else 4) * GB
    flows, endpoints = _dma_fanin_flows(machine, target, per_node, size)
    capacities = build_capacities(machine)

    healthy = DegradedFlowRunner(capacities).simulate(flows)
    duration = max(o.finish_s for o in healthy.values())
    plan = plan_builder(machine, registry.stream(f"chaos/{name}/faults"), duration)

    runner = DegradedFlowRunner(
        capacities,
        plan=plan,
        rng=registry.stream(f"chaos/{name}/backoff"),
        retry=retry if retry is not None else RetryPolicy(),
        rerouter=machine_rerouter(machine, plan, endpoints),
    )
    degraded = runner.simulate(flows)

    # Reclassify the node equivalence classes on the end-state topology.
    t_eval = max(e.at_s for e in plan.events) if plan.events else 0.0
    faulted_view = plan.apply(machine, at_s=t_eval)
    healthy_classes, _ = _split_classes(machine, target)
    faulted_classes, isolated = _split_classes(faulted_view, target)

    rows = tuple(
        OutcomeRow(
            name=o.name,
            status=o.status,
            avg_gbps=o.avg_gbps,
            retries=o.retries,
            reroutes=o.reroutes,
            reason=o.reason,
        )
        for _, o in sorted(degraded.items())
    )
    return ScenarioResult(
        name=name,
        title=title,
        workload=(
            f"{len(flows)} DMA streams fan-in to node {target} "
            f"({per_node} per source node, {size / GB:g} GB each)"
        ),
        plan_text=plan.describe(),
        healthy_gbps=_aggregate(healthy),
        degraded_gbps=_aggregate(degraded),
        rows=rows,
        healthy_classes=healthy_classes,
        faulted_classes=faulted_classes,
        isolated_nodes=isolated,
    )


def _physical_cables(machine: Machine) -> list[tuple[int, int]]:
    """Deduplicated, sorted (a, b) cable list with a < b."""
    return sorted({tuple(sorted(ends)) for ends in machine.links})


def _survivable_cables(machine: Machine) -> list[tuple[int, int]]:
    """Cables whose loss keeps the fabric connected."""
    from repro.topology.distance import hop_matrix

    survivable = []
    for a, b in _physical_cables(machine):
        view = FaultedMachine(machine, (LinkFail(a, b),))
        try:
            hop_matrix(view)
        except TopologyError:
            continue
        survivable.append((a, b))
    return survivable


# --- scenarios --------------------------------------------------------------

def _scenario_single_link_loss(
    machine: Machine, registry: RngRegistry, quick: bool,
    retry: RetryPolicy | None = None,
) -> ScenarioResult:
    def build_plan(m, rng, duration):
        cables = _survivable_cables(m)
        if not cables:
            raise FaultError(f"{m.name!r} has no survivable cable to fail")
        a, b = cables[int(rng.integers(len(cables)))]
        return FaultPlan([
            FaultEvent(LinkFail(a, b), at_s=round(0.35 * duration, 3)),
        ])

    return _run_dma_scenario(
        "single-link-loss",
        "one fabric cable fails mid-run; streams re-route",
        machine,
        registry,
        build_plan,
        quick,
        retry,
    )


def _scenario_cascading_isolation(
    machine: Machine, registry: RngRegistry, quick: bool,
    retry: RetryPolicy | None = None,
) -> ScenarioResult:
    def build_plan(m, rng, duration):
        target = m.node_ids[-1]
        candidates = [n for n in m.node_ids if n != target]
        victim = candidates[int(rng.integers(len(candidates)))]
        cables = [c for c in _physical_cables(m) if victim in c]
        events = []
        for i, (a, b) in enumerate(cables):
            events.append(
                FaultEvent(LinkFail(a, b), at_s=round((0.2 + 0.15 * i) * duration, 3))
            )
        return FaultPlan(events)

    return _run_dma_scenario(
        "cascading-node-isolation",
        "a victim node's cables fail one by one until it is isolated",
        machine,
        registry,
        build_plan,
        quick,
        retry,
    )


def _scenario_flapping_uplink(
    machine: Machine, registry: RngRegistry, quick: bool,
    retry: RetryPolicy | None = None,
) -> ScenarioResult:
    n_hosts = 4
    hosts = {f"h{i}": reference_host() for i in range(n_hosts)}
    size = (2 if quick else 8) * GB
    transfers = [
        Transfer(
            name=f"shuffle{i}",
            src_host=f"h{i}",
            dst_host=f"h{(i + 1) % n_hosts}",
            numjobs=2,
            size_bytes=size,
        )
        for i in range(n_hosts)
    ]
    cluster = SwitchedCluster(hosts, registry=registry.child("chaos-cluster"))

    healthy = cluster.run(transfers)
    duration = max(o.duration_s for o in healthy.values())
    rng = registry.stream("chaos/flapping-uplink/faults")
    victim = sorted(hosts)[int(rng.integers(n_hosts))]
    flap = NicPortFlap(host=victim)
    plan = FaultPlan([
        FaultEvent(flap, at_s=round(f0 * duration, 3), until_s=round(f1 * duration, 3))
        for f0, f1 in ((0.15, 0.30), (0.45, 0.60), (0.75, 0.90))
    ])

    degraded = cluster.run(transfers, fault_plan=plan, retry=retry)
    rows = tuple(
        OutcomeRow(
            name=o.name,
            status=o.status,
            avg_gbps=o.aggregate_gbps,
            retries=o.retries,
            reroutes=o.reroutes,
            reason=o.reason,
        )
        for _, o in sorted(degraded.items())
    )
    return ScenarioResult(
        name="flapping-uplink",
        title=f"host {victim!r} uplink flaps three times; transfers back off",
        workload=(
            f"ring shuffle over {n_hosts} hosts behind one switch "
            f"(2 streams per transfer, {size / GB:g} GB each)"
        ),
        plan_text=plan.describe(),
        healthy_gbps=sum(o.aggregate_gbps for o in healthy.values()),
        degraded_gbps=sum(o.aggregate_gbps for o in degraded.values()),
        rows=rows,
        classes_note="host topologies unchanged (uplink fault only)",
    )


SCENARIOS = {
    "single-link-loss": _scenario_single_link_loss,
    "cascading-node-isolation": _scenario_cascading_isolation,
    "flapping-uplink": _scenario_flapping_uplink,
}


def run_scenario(
    name: str,
    machine: Machine | None = None,
    registry: RngRegistry | None = None,
    quick: bool = False,
    retry: RetryPolicy | None = None,
) -> ScenarioResult:
    """Run one named scenario (see :data:`SCENARIOS`).

    ``retry`` overrides the default backoff policy for blocked streams
    — the knob behind ``repro-numa chaos --retry-budget/--retry-base``;
    ``None`` keeps :class:`~repro.retrying.RetryPolicy` defaults.
    """
    try:
        runner = SCENARIOS[name]
    except KeyError as exc:
        raise FaultError(
            f"unknown chaos scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from exc
    machine = machine if machine is not None else reference_host()
    registry = registry if registry is not None else RngRegistry()
    return runner(machine, registry, quick, retry)


def run_chaos(
    machine: Machine | None = None,
    registry: RngRegistry | None = None,
    scenarios: tuple[str, ...] | None = None,
    quick: bool = False,
    retry: RetryPolicy | None = None,
) -> ChaosReport:
    """Run the requested scenarios and assemble the resilience report."""
    machine = machine if machine is not None else reference_host()
    registry = registry if registry is not None else RngRegistry()
    names = scenarios if scenarios is not None else tuple(SCENARIOS)
    results = tuple(
        run_scenario(
            name, machine=machine, registry=registry, quick=quick, retry=retry
        )
        for name in names
    )
    return ChaosReport(
        machine_name=machine.name, seed=registry.seed, results=results
    )
