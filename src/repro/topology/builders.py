"""Machine builders.

``reference_host()`` is the calibrated reproduction of the paper's
testbed (Table II).  Every non-obvious constant is annotated with the
paper observation it targets; the acceptance tests in
``tests/integration`` and the benchmark harness assert the resulting
emergent behaviour, not these constants.

The other builders construct the paper's Fig. 1 topology variants, the
four Table I server configurations, and parametric machines for tests.
"""

from __future__ import annotations

import itertools

from repro.errors import TopologyError
from repro.interconnect.link import DirectedLink, LinkKind, link_pair
from repro.topology.machine import Machine, MachineParams
from repro.topology.node import Core, NumaNode, Package
from repro.units import GiB, NS

__all__ = [
    "reference_host",
    "magny_cours_4p",
    "intel_4s4n",
    "amd_4s8n",
    "amd_8s8n",
    "hp_blade_32n",
    "parametric_machine",
    "scaled_host",
    "TABLE1_BUILDERS",
]


def _make_nodes(
    n_nodes: int,
    cores_per_node: int,
    nodes_per_package: int,
    *,
    memory_bytes: int = 4 * GiB,
    dram_gbps: float = 56.0,
    pio_ctrl_gbps: float = 31.0,
    os_node: int = 0,
    os_resident_bytes: int = int(2.5 * GiB),
    other_resident_bytes: int = int(0.25 * GiB),
) -> tuple[list[NumaNode], list[Package]]:
    """Regular node/package grid shared by all builders."""
    if n_nodes % nodes_per_package:
        raise TopologyError(
            f"{n_nodes} nodes do not divide into packages of {nodes_per_package}"
        )
    nodes = []
    for nid in range(n_nodes):
        cores = tuple(
            Core(core_id=nid * cores_per_node + c, node_id=nid)
            for c in range(cores_per_node)
        )
        nodes.append(
            NumaNode(
                node_id=nid,
                package_id=nid // nodes_per_package,
                cores=cores,
                memory_bytes=memory_bytes,
                dram_gbps=dram_gbps,
                pio_ctrl_gbps=pio_ctrl_gbps,
                os_resident_bytes=(
                    os_resident_bytes if nid == os_node else other_resident_bytes
                ),
            )
        )
    packages = [
        Package(
            package_id=p,
            node_ids=tuple(range(p * nodes_per_package, (p + 1) * nodes_per_package)),
        )
        for p in range(n_nodes // nodes_per_package)
    ]
    return nodes, packages


# ---------------------------------------------------------------------------
# The reference host (paper Table II): HP DL585 G7, 4 x Opteron 6136,
# 8 NUMA nodes / 32 cores, NIC + 2 SSDs behind node 7's I/O hub.
# ---------------------------------------------------------------------------

def reference_host(with_devices: bool = True) -> Machine:
    """The calibrated 8-node AMD 4P host the paper characterises.

    Calibration targets (all from the paper):

    * DMA/bulk plane, node-7 *write* model (Table IV / Fig. 10): classes
      {6,7} ~51, {0,1,4,5} ~44.5, {2,3} ~26.6 Gbps.
    * DMA/bulk plane, node-7 *read* model (Table V / Fig. 10): {6,7},
      {2,3} ~48, {0,1,5} ~40.4, {4} 27.9 Gbps.
    * STREAM facts (§IV-A / Fig. 3): node-0 local diagonal maximum
      (~31 Gbps), other locals ~28.5, neighbour second (~26);
      CPU7->MEM4 = 21.34 while CPU4->MEM7 = 18.45; CPU-centric model
      ranks MEM{0,1} 43-88 % above MEM{2,3}.
    * ``numactl --hardware`` free memory: ~1.5 GB on node 0, ~4 GB
      elsewhere.

    Notes on the asymmetric constants: HT 3.0 @ 3.2 GT/s gives 51.2 Gbps
    per x16 direction; the paper's class-3 write bandwidth (26.0-27.3
    Gbps) *exceeds* a x8 link's 25.6 Gbps, so the 2<->7 cable must be x16
    with starved request credits toward node 7 — exactly the
    "request/response buffer" asymmetry the paper hypothesises.  The same
    reasoning fixes 7->4 as credit-starved (the read-model outlier).
    """
    nodes, packages = _make_nodes(n_nodes=8, cores_per_node=4, nodes_per_package=2)
    links: list[DirectedLink] = []

    # On-package SRI links: fast, symmetric.  dma_credit 0.918 -> 47.0 Gbps,
    # matching the node-6 entries of both Fig. 10 models (46.5-47.1 Gbps).
    for a in (0, 2, 4, 6):
        links += link_pair(
            a, a + 1, 16, 3.2, LinkKind.SRI,
            dma_credit=0.918, pio_cap_gbps=30.0, pio_latency_s=5 * NS,
        )

    # P0 <-> P3 (0 <-> 7): healthy x16.  dma 0.87 -> 44.5 (write class 2),
    # reverse 0.79 -> 40.4 (read class 3).
    links += link_pair(
        0, 7, 16, 3.2,
        dma_credit=0.87, dma_credit_rev=0.79,
        pio_cap_gbps=25.0, pio_latency_s=12.5 * NS,
    )

    # P2 <-> P3 (4 <-> 7): the read-direction outlier.  7->4 dma credit
    # 0.545 -> 27.9 Gbps (Table V class 4).  PIO caps reproduce the
    # asymmetric STREAM pair: response cap 4->7 = 23.2 => CPU7->MEM4 =
    # 21.34 after the OS-library penalty; response cap 7->4 = 20.05 =>
    # CPU4->MEM7 = 18.45.
    links += link_pair(
        4, 7, 16, 3.2,
        dma_credit=0.87, dma_credit_rev=0.545,
        pio_cap_gbps=23.2, pio_cap_rev_gbps=20.05,
        pio_latency_s=12.5 * NS,
    )

    # Second P2 <-> P3 cable (5 <-> 6), mirroring 0<->7's provisioning;
    # gives node 5 its class-2-write / class-3-read behaviour without
    # crossing the starved 7->4 direction.
    links += link_pair(
        5, 6, 16, 3.2,
        dma_credit=0.87, dma_credit_rev=0.79,
        pio_cap_gbps=25.0, pio_latency_s=12.5 * NS,
    )

    # P1 <-> P3 (2 <-> 7): the paper's strangest cable.  Toward node 7 the
    # request channel is starved (dma 0.52 -> 26.6 Gbps: write class 3;
    # PIO cap 14.5 => STREAM CPU7->MEM{2,3} ~ 13.3).  Away from node 7 the
    # response channel is healthy (dma 0.95 -> 48.6 Gbps: read class 2!).
    # This single asymmetry produces the paper's flagship STREAM-vs-
    # RDMA_READ rank reversal for nodes {2,3}.
    links += link_pair(
        2, 7, 16, 3.2,
        dma_credit=0.52, dma_credit_rev=0.95,
        pio_cap_gbps=14.5, pio_cap_rev_gbps=21.5,
        pio_latency_s=20 * NS,
    )

    # Remaining fabric (does not sit on any node-7 path): P0<->P1, P0<->P2
    # healthy x16; P1<->P2 a narrow x8 (link-width diversity per Fig. 1).
    links += link_pair(1, 3, 16, 3.2, dma_credit=0.87, pio_cap_gbps=25.0,
                       pio_latency_s=12.5 * NS)
    links += link_pair(1, 4, 16, 3.2, dma_credit=0.87, pio_cap_gbps=25.0,
                       pio_latency_s=12.5 * NS)
    links += link_pair(3, 4, 8, 3.2, dma_credit=1.0, pio_cap_gbps=12.0,
                       pio_latency_s=50 * NS)

    params = MachineParams(
        local_latency_s=100 * NS,
        # 4 threads x 775 / 100 ns = 31 Gbps local; x0.92 off node 0 = 28.5.
        pio_core_gbps_ns=775.0,
        oslib_penalty=0.92,
        os_node=0,
        dma_per_thread_gbps=16.0,
        description="HP ProLiant DL585 G7, 4 x AMD Opteron 6136 (calibrated model)",
    )
    machine = Machine("hp-dl585-g7", nodes, packages, links, params)
    if with_devices:
        from repro.devices.standard import attach_reference_devices

        attach_reference_devices(machine)
    return machine


# ---------------------------------------------------------------------------
# Fig. 1: published topology guesses for the 4P Magny-Cours platform.
# ---------------------------------------------------------------------------

def magny_cours_4p(variant: str = "a") -> Machine:
    """One of the paper's Fig. 1 4P Opteron topology variants.

    These machines exist to demonstrate the §IV-A negative result: none
    of them explains the measured STREAM matrix.  Variant ``a`` satisfies
    the paper's worked example (node 7: neighbour 6; one hop to
    {0, 2, 4}; two hops to {1, 3, 5}).
    """
    nodes, packages = _make_nodes(n_nodes=8, cores_per_node=4, nodes_per_package=2)
    links: list[DirectedLink] = []
    for a in (0, 2, 4, 6):
        links += link_pair(a, a + 1, 16, 3.2, LinkKind.SRI, pio_latency_s=5 * NS)

    def ht(a: int, b: int, width: int = 16) -> None:
        links.extend(link_pair(a, b, width, 3.2, pio_latency_s=12.5 * NS))

    if variant == "a":
        # Even dies fully meshed; odd dies reach other packages in 2 hops.
        for a, b in itertools.combinations((0, 2, 4, 6), 2):
            ht(a, b, 16)
        ht(7, 0)
        ht(7, 2)
        ht(7, 4)
    elif variant == "b":
        # Ring of dies with two x8 chords.
        ring = [0, 2, 4, 6, 1, 3, 5, 7]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            ht(a, b, 16)
        ht(0, 4, 8)
        ht(2, 6, 8)
    elif variant == "c":
        # Package 0 as a hub: star at the even dies.
        for b in (2, 3, 4, 5, 6, 7):
            ht(0, b, 16 if b % 2 == 0 else 8)
    elif variant == "d":
        # Dumitru et al. variant: package line with x8 wrap links.
        ht(0, 2)
        ht(2, 4)
        ht(4, 6)
        ht(1, 3, 8)
        ht(3, 5, 8)
        ht(5, 7, 8)
        ht(0, 6, 8)
        ht(1, 7, 8)
    else:
        raise TopologyError(f"unknown Magny-Cours variant {variant!r}; use a/b/c/d")
    params = MachineParams(description=f"4P Magny-Cours published variant ({variant})")
    return Machine(f"magny-cours-4p-{variant}", nodes, packages, links, params)


# ---------------------------------------------------------------------------
# Table I: NUMA factor of four server configurations.
# ---------------------------------------------------------------------------

def intel_4s4n() -> Machine:
    """Intel 4-socket / 4-node QPI host: full mesh, NUMA factor ~1.5."""
    nodes, packages = _make_nodes(4, cores_per_node=8, nodes_per_package=1)
    links: list[DirectedLink] = []
    for a, b in itertools.combinations(range(4), 2):
        links += link_pair(a, b, 16, 3.2, pio_latency_s=25 * NS)
    params = MachineParams(description="Intel 4 sockets / 4 nodes (QPI full mesh)")
    return Machine("intel-4s4n", nodes, packages, links, params)


def amd_4s8n() -> Machine:
    """AMD 4-socket / 8-node host: package ring, NUMA factor ~2.7."""
    nodes, packages = _make_nodes(8, cores_per_node=4, nodes_per_package=2)
    links: list[DirectedLink] = []
    for a in (0, 2, 4, 6):
        links += link_pair(a, a + 1, 16, 3.2, LinkKind.SRI, pio_latency_s=15 * NS)
    for a, b in ((0, 2), (2, 4), (4, 6), (6, 0)):
        links += link_pair(a, b, 16, 3.2, pio_latency_s=65 * NS)
    params = MachineParams(description="AMD 4 sockets / 8 nodes (HT package ring)")
    return Machine("amd-4s8n", nodes, packages, links, params)


def amd_8s8n() -> Machine:
    """AMD 8-socket / 8-node host: socket ring, NUMA factor ~2.8."""
    nodes, packages = _make_nodes(8, cores_per_node=4, nodes_per_package=1)
    links: list[DirectedLink] = []
    for a in range(8):
        links += link_pair(a, (a + 1) % 8, 16, 3.2, pio_latency_s=40 * NS)
    params = MachineParams(description="AMD 8 sockets / 8 nodes (HT socket ring)")
    return Machine("amd-8s8n", nodes, packages, links, params)


def hp_blade_32n() -> Machine:
    """HP 32-node blade system: boards glued by node controllers, factor ~5.5."""
    nodes, packages = _make_nodes(32, cores_per_node=4, nodes_per_package=4)
    links: list[DirectedLink] = []
    # Full mesh within each 4-node board.
    for board in range(8):
        base = 4 * board
        for a, b in itertools.combinations(range(base, base + 4), 2):
            links += link_pair(a, b, 16, 3.2, pio_latency_s=40 * NS)
    # Boards fully connected through node-controller links at each board's
    # gateway node (first node of the board); the controller adds latency.
    for i, j in itertools.combinations(range(8), 2):
        links += link_pair(4 * i, 4 * j, 16, 3.2, pio_latency_s=130 * NS)
    params = MachineParams(
        router_latency_s=20 * NS,
        description="HP 32-node blade system (node-controller glued)",
    )
    return Machine("hp-blade-32n", nodes, packages, links, params)


#: Table I rows: label -> (builder, paper NUMA factor).
TABLE1_BUILDERS = {
    "Intel 4 sockets/4 nodes": (intel_4s4n, 1.5),
    "AMD 4 sockets/8 nodes": (amd_4s8n, 2.7),
    "AMD 8 sockets/8 nodes": (amd_8s8n, 2.8),
    "HP blade system 32 nodes": (hp_blade_32n, 5.5),
}


# ---------------------------------------------------------------------------
# Parametric machines for tests and property-based suites.
# ---------------------------------------------------------------------------

def scaled_host(
    n_packages: int = 8,
    cores_per_node: int = 4,
    seed: int = 7,
    asymmetry_fraction: float = 0.25,
) -> Machine:
    """A larger reference-style host with seeded credit asymmetries.

    Used by scale tests and library-performance benchmarks: a ring of
    two-die packages with chords, where a seeded ``asymmetry_fraction``
    of inter-package directions gets reference-host-style credit
    starvation (0.45-0.6) — so Algorithm 1 has non-trivial structure to
    find at any size, without hand calibration.
    """
    if n_packages < 2:
        raise TopologyError(f"scaled_host needs >= 2 packages, got {n_packages}")
    import numpy as np

    rng = np.random.Generator(np.random.PCG64(seed))
    n_nodes = 2 * n_packages
    nodes, packages = _make_nodes(n_nodes, cores_per_node, 2)
    links: list[DirectedLink] = []
    for p in range(n_packages):
        base = 2 * p
        links += link_pair(base, base + 1, 16, 3.2, LinkKind.SRI,
                           dma_credit=0.918, pio_cap_gbps=30.0,
                           pio_latency_s=5 * NS)

    wired: set[frozenset[int]] = set()

    def inter(a: int, b: int) -> None:
        if a == b or frozenset((a, b)) in wired:
            return
        wired.add(frozenset((a, b)))
        credits = []
        for _direction in range(2):
            if rng.random() < asymmetry_fraction:
                credits.append(float(rng.uniform(0.45, 0.6)))
            else:
                credits.append(float(rng.uniform(0.82, 0.92)))
        links.extend(
            link_pair(
                a, b, 16, 3.2,
                dma_credit=credits[0], dma_credit_rev=credits[1],
                pio_cap_gbps=25.0, pio_latency_s=12.5 * NS,
            )
        )

    # Ring over alternating dies, plus chords across the ring.
    for p in range(n_packages):
        a = 2 * p + (p % 2)
        b = (2 * ((p + 1) % n_packages)) + ((p + 1) % 2)
        inter(a, b)
    for c in range(n_packages // 2):
        inter(2 * c, 2 * ((c + n_packages // 2) % n_packages) + 1)
    params = MachineParams(
        description=f"scaled reference-style host ({n_packages} packages, seed {seed})"
    )
    return Machine(f"scaled-{n_packages}p-s{seed}", nodes, packages, links, params)


def parametric_machine(
    n_packages: int,
    nodes_per_package: int = 2,
    cores_per_node: int = 4,
    *,
    width_bits: int = 16,
    gts: float = 3.2,
    link_latency_s: float = 12.5 * NS,
    chords: int = 0,
    name: str | None = None,
) -> Machine:
    """A regular ring-of-packages machine of arbitrary size.

    Dies within a package are SRI-linked; the first die of each package
    joins an inter-package ring; ``chords`` adds that many evenly spaced
    cross-ring links.  Used by property-based tests to check invariants
    on machines the calibration never saw.
    """
    if n_packages < 1:
        raise TopologyError(f"need at least one package, got {n_packages}")
    n_nodes = n_packages * nodes_per_package
    nodes, packages = _make_nodes(n_nodes, cores_per_node, nodes_per_package)
    links: list[DirectedLink] = []
    for p in range(n_packages):
        base = p * nodes_per_package
        for k in range(nodes_per_package - 1):
            links += link_pair(
                base + k, base + k + 1, 16, gts, LinkKind.SRI, pio_latency_s=5 * NS
            )
    gateways = [p * nodes_per_package for p in range(n_packages)]
    if n_packages == 2:
        links += link_pair(gateways[0], gateways[1], width_bits, gts,
                           pio_latency_s=link_latency_s)
    elif n_packages > 2:
        for i in range(n_packages):
            links += link_pair(
                gateways[i], gateways[(i + 1) % n_packages], width_bits, gts,
                pio_latency_s=link_latency_s,
            )
    for c in range(chords):
        a = gateways[c % n_packages]
        b = gateways[(c + n_packages // 2) % n_packages]
        if a != b and (a, b) not in {l.ends for l in links}:
            links += link_pair(a, b, width_bits, gts, pio_latency_s=link_latency_s)
    params = MachineParams(description=f"parametric ring, {n_packages} packages")
    return Machine(name or f"ring-{n_packages}x{nodes_per_package}", nodes, packages, links, params)
