"""F7 — Fig. 7: PCIe SSD read/write bandwidth per NUMA binding.

Protocol per §IV-B3: kernel-bypass libaio, iodepth 16, 128 KiB blocks,
both cards driven together so at least two processes run.  Shape facts:
write follows the Table IV classes, read the Table V classes; read peaks
above write; node 4 is the read outlier.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_series
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.experiments.common import check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 7: SSD array bandwidth vs processes and NUMA binding"

PROCESS_COUNTS = (2, 4, 8, 16)


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """libaio write/read grids against the two-card array."""
    m = default_machine(machine)
    runner = FioRunner(m, registry=default_registry(registry))
    counts = (2, 8) if quick else PROCESS_COUNTS

    grids = {}
    for rw in ("write", "read"):
        base = FioJob(name=f"fig7-{rw}", engine="libaio", rw=rw, numjobs=2, iodepth=16)
        grid = runner.grid(base, counts=counts)
        grids[rw] = {
            node: {n: res.aggregate_gbps for n, res in per_count.items()}
            for node, per_count in grid.items()
        }
    write, read = grids["write"], grids["read"]
    at = counts[0]

    write_c2 = np.mean([write[n][at] for n in (0, 1, 4, 5)])
    write_c3 = np.mean([write[n][at] for n in (2, 3)])
    read_peak = max(v for curve in read.values() for v in curve.values())
    write_peak = max(v for curve in write.values() for v in curve.values())
    read_4 = read[4][at]
    read_c3 = np.mean([read[n][at] for n in (0, 1, 5)])

    checks = (
        check("read peak exceeds write peak",
              read_peak > write_peak,
              f"read {read_peak:.1f} vs write {write_peak:.1f} Gbps"),
        check("write: nodes {2,3} trail the other remotes by >25 %",
              write_c3 < 0.75 * write_c2,
              f"{write_c3:.1f} vs {write_c2:.1f} Gbps"),
        check("read: node 4 trails {0,1,5} by >25 %",
              read_4 < 0.75 * read_c3,
              f"{read_4:.1f} vs {read_c3:.1f} Gbps"),
        check("two processes already saturate the two cards "
              "(more processes never help beyond noise)",
              all(max(write[n].values()) <= 1.05 * write[n][counts[0]]
                  for n in m.node_ids)),
    )
    text = "\n\n".join(
        [
            render_series("(a) SSD write", write, x_label="procs"),
            render_series("(b) SSD read", read, x_label="procs"),
        ]
    )
    return ExperimentResult(
        exp_id="f7", title=TITLE, text=text,
        data={"write": write, "read": read}, checks=checks,
    )
