"""Shared solver layer: cached capacities, memoized max-min, stats.

Every bandwidth figure the library produces bottoms out in the same hot
path — build a capacity map, route flows, solve a max-min allocation,
integrate.  :class:`~repro.solver.session.SolverSession` owns that path
once for everyone:

* a **capacity cache** keyed by a machine-topology fingerprint (a new
  machine from :mod:`repro.topology.modify` gets a new fingerprint, so
  what-if copies never see stale capacities);
* an **incremental max-min solver**
  (:class:`~repro.solver.incremental.AllocationCache`) that memoizes
  allocations by the active-flow *multiset* and solves cold cases with a
  vectorized numpy water-filling loop over signature groups;
* a **stats surface** (:class:`~repro.solver.stats.SolverStats`)
  counting solves, cache hits/misses, simulation events and per-phase
  wall time, exposed on engine results and via ``repro-numa stats``.

Attribute access is lazy (PEP 562) so low-level modules — notably
:mod:`repro.flows.network` — can import :mod:`repro.solver.incremental`
without dragging in the session layer (which itself builds on the flow
network).
"""

from __future__ import annotations

__all__ = [
    "SolverSession",
    "SolverStats",
    "AllocationCache",
    "get_session",
    "reset_sessions",
    "build_capacities",
    "machine_fingerprint",
    "link_resource",
    "link_capacities",
]

_LAZY = {
    "SolverSession": ("repro.solver.session", "SolverSession"),
    "get_session": ("repro.solver.session", "get_session"),
    "reset_sessions": ("repro.solver.session", "reset_sessions"),
    "SolverStats": ("repro.solver.stats", "SolverStats"),
    "AllocationCache": ("repro.solver.incremental", "AllocationCache"),
    "build_capacities": ("repro.solver.capacity", "build_capacities"),
    "machine_fingerprint": ("repro.solver.capacity", "machine_fingerprint"),
    "link_resource": ("repro.solver.capacity", "link_resource"),
    "link_capacities": ("repro.solver.capacity", "link_capacities"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.solver' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(__all__)
