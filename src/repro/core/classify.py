"""Grouping node bandwidths into performance classes.

§V-A: "The local and neighboring nodes are always assigned to the first
class, and the main task of our methodology is to classify the remote
nodes."  Remote nodes are clustered on their measured bandwidth with a
relative-gap rule (values within ``rel_gap`` of each other share a
class); a k-means cross-check is provided for validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ModelError
from repro.topology.machine import Machine, Relation

__all__ = ["PerfClass", "classify_nodes", "classify_kmeans"]


@dataclass(frozen=True)
class PerfClass:
    """One performance class: a rank, its nodes, and their values."""

    rank: int  # 1-based; class 1 is the fastest (local + neighbours)
    node_ids: tuple[int, ...]
    values: dict[int, float]

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ModelError(f"class rank must be >= 1, got {self.rank}")
        if not self.node_ids:
            raise ModelError(f"class {self.rank} has no nodes")
        missing = [n for n in self.node_ids if n not in self.values]
        if missing:
            raise ModelError(f"class {self.rank}: nodes {missing} lack values")

    @property
    def avg(self) -> float:
        """Mean bandwidth across the class's nodes."""
        return float(np.mean([self.values[n] for n in self.node_ids]))

    @property
    def lo(self) -> float:
        """Lowest bandwidth in the class (Table IV/V 'Range' floor)."""
        return min(self.values[n] for n in self.node_ids)

    @property
    def hi(self) -> float:
        """Highest bandwidth in the class (Table IV/V 'Range' ceiling)."""
        return max(self.values[n] for n in self.node_ids)

    def __contains__(self, node: int) -> bool:
        return node in self.node_ids


def classify_nodes(
    values: Mapping[int, float],
    machine: Machine,
    target_node: int,
    rel_gap: float = 0.08,
) -> tuple[PerfClass, ...]:
    """Split per-node bandwidths into ordered performance classes.

    Parameters
    ----------
    values:
        node id -> measured bandwidth (all of the machine's nodes).
    machine, target_node:
        Used for the local/neighbour rule.
    rel_gap:
        Adjacent (sorted) remote values whose relative gap exceeds this
        start a new class.

    Returns
    -------
    Classes in decreasing performance order, ranks 1..k.
    """
    if target_node not in machine.node_ids:
        raise ModelError(f"unknown target node {target_node}")
    missing = [n for n in machine.node_ids if n not in values]
    if missing:
        raise ModelError(f"values missing for nodes {missing}")
    if any(v <= 0 for v in values.values()):
        raise ModelError("bandwidth values must be positive")

    first = [
        n
        for n in machine.node_ids
        if machine.relation(target_node, n) in (Relation.LOCAL, Relation.NEIGHBOR)
    ]
    remote = sorted(
        (n for n in machine.node_ids if n not in first),
        key=lambda n: -values[n],
    )

    classes: list[PerfClass] = [
        PerfClass(rank=1, node_ids=tuple(sorted(first)),
                  values={n: float(values[n]) for n in first})
    ]
    group: list[int] = []
    for node in remote:
        if group and (values[group[-1]] - values[node]) / values[group[-1]] > rel_gap:
            classes.append(
                PerfClass(
                    rank=len(classes) + 1,
                    node_ids=tuple(sorted(group)),
                    values={n: float(values[n]) for n in group},
                )
            )
            group = []
        group.append(node)
    if group:
        classes.append(
            PerfClass(
                rank=len(classes) + 1,
                node_ids=tuple(sorted(group)),
                values={n: float(values[n]) for n in group},
            )
        )
    return tuple(classes)


def classify_kmeans(
    values: Mapping[int, float],
    machine: Machine,
    target_node: int,
    k: int,
    seed: int = 0,
) -> tuple[PerfClass, ...]:
    """k-means cross-check on the remote nodes (validation aid).

    Keeps the local/neighbour rule, clusters the remaining nodes into
    ``k - 1`` groups with 1-D k-means, and orders classes by mean.
    """
    from scipy.cluster.vq import kmeans2

    if k < 1:
        raise ModelError(f"k must be >= 1, got {k}")
    first = [
        n
        for n in machine.node_ids
        if machine.relation(target_node, n) in (Relation.LOCAL, Relation.NEIGHBOR)
    ]
    remote = [n for n in machine.node_ids if n not in first]
    classes = [
        PerfClass(rank=1, node_ids=tuple(sorted(first)),
                  values={n: float(values[n]) for n in first})
    ]
    if not remote:
        return tuple(classes)
    k_remote = min(k - 1 if k > 1 else 1, len(remote))
    data = np.array([[values[n]] for n in remote])
    _centroids, labels = kmeans2(data, k_remote, seed=seed, minit="++")
    groups: dict[int, list[int]] = {}
    for node, label in zip(remote, labels):
        groups.setdefault(int(label), []).append(node)
    ordered = sorted(
        groups.values(), key=lambda g: -float(np.mean([values[n] for n in g]))
    )
    for group in ordered:
        classes.append(
            PerfClass(
                rank=len(classes) + 1,
                node_ids=tuple(sorted(group)),
                values={n: float(values[n]) for n in group},
            )
        )
    return tuple(classes)
