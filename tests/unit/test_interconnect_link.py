"""Directed HT link model."""

import pytest

from repro.errors import TopologyError
from repro.interconnect.link import DirectedLink, LinkKind, link_pair
from repro.units import NS


class TestCapacities:
    def test_raw_capacity_x16(self):
        link = DirectedLink(src=0, dst=1, width_bits=16, gts=3.2)
        assert link.raw_gbps == pytest.approx(51.2)

    def test_raw_capacity_x8(self):
        link = DirectedLink(src=0, dst=1, width_bits=8, gts=3.2)
        assert link.raw_gbps == pytest.approx(25.6)

    def test_dma_credit_derates(self):
        link = DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, dma_credit=0.5)
        assert link.dma_gbps == pytest.approx(25.6)

    def test_pio_default_is_60_percent(self):
        link = DirectedLink(src=0, dst=1, width_bits=16, gts=3.2)
        assert link.pio_gbps == pytest.approx(0.6 * 51.2)

    def test_pio_explicit_cap(self):
        link = DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, pio_cap_gbps=14.5)
        assert link.pio_gbps == 14.5

    def test_ends(self):
        assert DirectedLink(src=3, dst=7, width_bits=8, gts=3.2).ends == (3, 7)


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=1, dst=1, width_bits=16, gts=3.2)

    def test_bad_width_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=13, gts=3.2)

    def test_credit_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, dma_credit=0.0)
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, dma_credit=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, pio_latency_s=-1e-9)

    def test_zero_gts_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=16, gts=0)

    def test_non_positive_pio_cap_rejected(self):
        with pytest.raises(TopologyError):
            DirectedLink(src=0, dst=1, width_bits=16, gts=3.2, pio_cap_gbps=0)


class TestLinkPair:
    def test_symmetric_by_default(self):
        fwd, rev = link_pair(0, 7, 16, 3.2, dma_credit=0.87)
        assert fwd.ends == (0, 7)
        assert rev.ends == (7, 0)
        assert fwd.dma_credit == rev.dma_credit == 0.87

    def test_reverse_overrides(self):
        fwd, rev = link_pair(
            2, 7, 16, 3.2,
            dma_credit=0.52, dma_credit_rev=0.95,
            pio_cap_gbps=14.5, pio_cap_rev_gbps=21.5,
        )
        assert fwd.dma_credit == 0.52
        assert rev.dma_credit == 0.95
        assert fwd.pio_gbps == 14.5
        assert rev.pio_gbps == 21.5

    def test_kind_and_latency_shared(self):
        fwd, rev = link_pair(0, 1, 16, 3.2, LinkKind.SRI, pio_latency_s=5 * NS)
        assert fwd.kind is LinkKind.SRI
        assert rev.kind is LinkKind.SRI
        assert fwd.pio_latency_s == rev.pio_latency_s == 5 * NS
