"""Spans, counters, and the off-by-default no-op fast path."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    NullRecorder,
    TraceRecorder,
    metrics,
)
from repro.obs import recorder as obs


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with telemetry off and metrics empty."""
    obs.uninstall()
    metrics.reset()
    yield
    obs.uninstall()
    metrics.reset()


# --- disabled fast path ---------------------------------------------------


def test_disabled_span_is_the_shared_null_singleton():
    assert not obs.enabled()
    first = obs.span("anything", tag=1)
    second = obs.span("other")
    assert first is second  # no allocation per call
    with first as sp:
        sp.tag(extra="ignored")  # accepted and discarded


def test_disabled_count_and_gauge_touch_nothing():
    obs.count("some.counter", 5)
    obs.gauge("some.gauge", 1.5)
    assert len(metrics) == 0


def test_disabled_get_recorder_is_null_recorder():
    recorder = obs.get_recorder()
    assert isinstance(recorder, NullRecorder)
    assert recorder.events == ()
    with recorder.span("x"):
        pass


# --- live recording -------------------------------------------------------


def test_live_spans_record_nesting_and_tags():
    recorder = TraceRecorder(MetricsRegistry())
    obs.install(recorder)
    with obs.span("outer", plane="dma"):
        with obs.span("inner"):
            obs.count("work.items", 3)
    outer, inner = recorder.events
    assert outer["name"] == "outer" and outer["tags"] == {"plane": "dma"}
    assert outer["parent"] is None and outer["depth"] == 0
    assert inner["parent"] == outer["seq"] and inner["depth"] == 1
    assert inner["wall_s"] >= 0.0 and outer["wall_s"] >= inner["wall_s"]
    assert recorder.max_depth == 2
    assert recorder.metrics.counter("work.items") == 3


def test_span_records_error_class_on_exception():
    recorder = TraceRecorder(MetricsRegistry())
    obs.install(recorder)
    with pytest.raises(ValueError):
        with obs.span("doomed"):
            raise ValueError("boom")
    (event,) = recorder.events
    assert event["tags"]["error"] == "ValueError"


def test_phase_totals_aggregate_by_name():
    recorder = TraceRecorder(MetricsRegistry())
    obs.install(recorder)
    for _ in range(3):
        with obs.span("repeat"):
            pass
    totals = recorder.phase_totals()
    assert totals["repeat"]["count"] == 3
    assert totals["repeat"]["wall_s"] >= 0.0


def test_install_twice_raises():
    obs.install(TraceRecorder(MetricsRegistry()))
    with pytest.raises(ObsError):
        obs.install(TraceRecorder(MetricsRegistry()))


def test_uninstall_returns_recorder_and_disables():
    recorder = TraceRecorder(MetricsRegistry())
    obs.install(recorder)
    assert obs.enabled()
    assert obs.uninstall() is recorder
    assert not obs.enabled()
    assert obs.uninstall() is None


# --- metrics registry -----------------------------------------------------


def test_metrics_registry_counters_and_gauges():
    reg = MetricsRegistry()
    reg.count("a", 2)
    reg.count("a")
    reg.gauge("g", 0.5)
    assert reg.counter("a") == 3
    assert reg.counter("missing") == 0
    snap = reg.snapshot()
    assert snap == {"counters": {"a": 3}, "gauges": {"g": 0.5}}
    reg.reset()
    assert len(reg) == 0


def test_metrics_counters_prefix_filter():
    reg = MetricsRegistry()
    reg.count("rng.draws/a", 1)
    reg.count("rng.draws/b", 2)
    reg.count("solver.solves", 4)
    assert reg.counters("rng.draws/") == {"rng.draws/a": 1, "rng.draws/b": 2}


# --- the recording context manager ----------------------------------------


def test_recording_writes_trace_and_manifest(tmp_path):
    from repro.obs import load_manifest, load_trace, recording

    with recording(tmp_path, command="test", argv=["x"], seed=7):
        with obs.span("work"):
            obs.count("events", 2)
    manifest = load_manifest(tmp_path / "manifest.json")
    assert manifest["command"] == "test"
    assert manifest["seed"]["root_seed"] == 7
    assert manifest["metrics"]["counters"]["events"] == 2
    assert manifest["error"] is None
    events = load_trace(tmp_path)
    assert [e["name"] for e in events] == ["work"]


def test_recording_captures_error_and_still_writes(tmp_path):
    from repro.obs import load_manifest, recording

    with pytest.raises(RuntimeError):
        with recording(tmp_path, command="test"):
            raise RuntimeError("boom")
    manifest = load_manifest(tmp_path / "manifest.json")
    assert manifest["error"] == "RuntimeError"
    assert not obs.enabled()  # recorder uninstalled despite the error
