"""The circuit breaker guarding the solver-backed request path.

Classic three-state machine, tuned for the advisory service:

* **closed** — requests hit the solver; ``failure_threshold``
  *consecutive* solver failures trip the breaker;
* **open** — the solver is not consulted at all; the service answers
  from the last-good characterization (degraded class-level answers)
  for a backoff window whose length grows with each consecutive trip
  (the shared :class:`~repro.retrying.RetryPolicy`, seeded jitter and
  all);
* **half-open** — once the window elapses, exactly **one** probe
  request is admitted to the solver.  Success closes the breaker;
  failure re-opens it with the next (longer) window.

Time comes from an injectable ``clock`` so the chaos soak can drive the
breaker on a logical clock and stay bit-deterministic under a fixed
seed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import recorder as _obs
from repro.retrying import RetryPolicy

__all__ = ["CircuitBreaker"]

#: Cap on the backoff exponent so repeated trips cannot overflow.
_MAX_TRIP_ATTEMPT = 16


class CircuitBreaker:
    """Trip on consecutive failures, recover through half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    backoff:
        Open-window policy; window ``k`` (0-based consecutive trip)
        lasts ``backoff.delay_s(k, rng)`` seconds.  ``max_retries`` is
        ignored — a breaker never gives up.
    rng:
        Seeded generator for window jitter (``None`` disables jitter).
    clock:
        Monotonic time source; injectable for deterministic tests/soaks.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        backoff: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.backoff = backoff if backoff is not None else RetryPolicy(
            max_retries=0, base_delay_s=0.5, multiplier=2.0, jitter=0.0
        )
        self._rng = rng
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._trips = 0  # consecutive trips without a success in between
        self._open_until = 0.0
        self._probe_in_flight = False
        #: ``(time, state)`` transition log, for reports and tests.
        self.transitions: list[tuple[float, str]] = []
        #: Optional zero-arg callback fired after every trip, once the
        #: breaker is already ``open`` — the service hooks its flight
        #: recorder here.  Must not raise and must not call back into
        #: the breaker.
        self.on_trip = None

    @property
    def state(self) -> str:
        """Current state string (``closed`` / ``open`` / ``half-open``)."""
        return self._state

    @property
    def trip_count(self) -> int:
        """Trips since the last success (how deep into backoff we are)."""
        return self._trips

    def _transition(self, state: str) -> None:
        self._state = state
        self.transitions.append((self._clock(), state))

    # --- the three verbs ---------------------------------------------------
    def allow(self) -> bool:
        """May this request consult the solver right now?

        Returns ``True`` while closed, and for exactly one in-flight
        probe once an open window has elapsed (the half-open state).
        ``False`` means: answer degraded (or refuse), do not touch the
        solver.
        """
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN and self._clock() >= self._open_until:
            self._transition(self.HALF_OPEN)
            self._probe_in_flight = True
            _obs.count("service.breaker_probes")
            return True
        if self._state == self.HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            _obs.count("service.breaker_probes")
            return True
        return False

    def record_success(self) -> None:
        """A solver call succeeded: close and reset all backoff state."""
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self._trips = 0
        if self._state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A solver call failed: count it, tripping when the budget is gone.

        A half-open probe failure re-opens immediately (no fresh budget
        for a solver that is still down).
        """
        was_probe = self._probe_in_flight
        self._probe_in_flight = False
        self._consecutive_failures += 1
        if was_probe or self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        attempt = min(self._trips, _MAX_TRIP_ATTEMPT)
        window = self.backoff.delay_s(attempt, self._rng)
        self._trips += 1
        self._consecutive_failures = 0
        self._open_until = self._clock() + window
        self._transition(self.OPEN)
        _obs.count("service.breaker_trips")
        if self.on_trip is not None:
            self.on_trip()
