"""A1 — §IV-A negative result: topology is not inferable from STREAM.

The paper tries to derive its host's topology from the STREAM matrix
under the hop-distance hypothesis and fails: the matrix is asymmetric
and matches none of the published Fig. 1 variants.  We run the same
inference and require it to come out inconclusive — while confirming
that on a *clean* machine (one of the variants itself, no credit
asymmetries) the method does work, so the failure is informative.
"""

from __future__ import annotations

from repro.analysis.topology_inference import infer_topology
from repro.bench.stream import StreamBenchmark
from repro.experiments.common import check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult
from repro.topology.builders import magny_cours_4p

TITLE = "Ablation: hop-distance topology inference fails on the real host"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Inference on the reference host (fails) and on a clean variant (works)."""
    m = default_machine(machine)
    registry = default_registry(registry)
    runs = 10 if quick else 100

    host_matrix = StreamBenchmark(m, registry=registry, runs=runs).matrix()
    host_report = infer_topology(host_matrix)

    clean = magny_cours_4p("a")
    clean_matrix = StreamBenchmark(clean, registry=registry.child("clean"),
                                   runs=runs).matrix()
    clean_report = infer_topology(clean_matrix)

    checks = (
        check(
            "reference host: inference is INCONCLUSIVE (paper's finding)",
            not host_report.conclusive(),
            f"best candidate {host_report.best.name} "
            f"rho={host_report.best.spearman_rho:.3f}, "
            f"asymmetry {100 * host_report.asymmetry:.1f} %",
        ),
        check(
            "reference host matrix violates symmetric-metric assumption",
            not host_report.metric_consistent,
        ),
        check(
            "control: on a clean variant-a machine the right topology "
            "scores best",
            clean_report.best.name == "magny-cours-4p-a",
            f"best {clean_report.best.name} rho={clean_report.best.spearman_rho:.3f}",
        ),
    )
    text = "\n\n".join(
        [
            "Reference host:\n" + host_report.render(),
            "Control (clean variant-a machine):\n" + clean_report.render(),
        ]
    )
    return ExperimentResult(
        exp_id="a1", title=TITLE, text=text,
        data={
            "host_best_rho": host_report.best.spearman_rho,
            "host_asymmetry": host_report.asymmetry,
            "clean_best": clean_report.best.name,
        },
        checks=checks,
    )
