"""The process-pool solver tier behind the advisory service."""

from __future__ import annotations

import json

import pytest

from repro.fabric import FabricPool, live_segments
from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, CircuitBreaker, PlacementService

pytestmark = pytest.mark.fabric


def line(method, params=None, req_id=1):
    msg = {"jsonrpc": "2.0", "id": req_id, "method": method}
    if params is not None:
        msg["params"] = params
    return json.dumps(msg)


@pytest.fixture()
def pool():
    with FabricPool(jobs=2) as shared:
        yield shared
    assert live_segments() == []


def test_pooled_answers_match_inline(host, pool):
    from repro.service.soak import LogicalClock

    # Logical clocks pin the staleness tags so the dicts compare equal.
    inline = AdvisoryBackend(
        host, registry=RngRegistry(7), runs=5, clock=LogicalClock()
    )
    pooled = AdvisoryBackend(
        host, registry=RngRegistry(7), runs=5, solver_pool=pool,
        clock=LogicalClock(),
    )
    target = host.node_ids[-1]
    for mode in ("write", "read"):
        assert pooled.model(target, mode).values == inline.model(
            target, mode
        ).values
    assert pooled.classify(target, "write") == inline.classify(target, "write")
    assert pooled.advise(target, "write", tasks=4) == inline.advise(
        target, "write", tasks=4
    )
    stats = pool.stats()
    assert stats["completed"] == 2  # one build per mode; rest were cache hits


def test_pooled_model_cache_draws_once(host, pool):
    registry = RngRegistry(3)
    backend = AdvisoryBackend(host, registry=registry, runs=5, solver_pool=pool)
    target = host.node_ids[-1]
    backend.model(target, "write")
    first = dict(registry.draw_counts)
    assert first, "a cold build must draw"
    backend.model(target, "write")  # parent-side cache hit
    assert registry.draw_counts == first


def test_health_reports_solver_pool(host, pool):
    backend = AdvisoryBackend(host, registry=RngRegistry(1), runs=5,
                              solver_pool=pool)
    service = PlacementService(backend, breaker=CircuitBreaker())
    payload = service.health_payload()
    assert payload["solver_pool"] == pool.stats()
    assert set(payload["solver_pool"]) == {
        "jobs", "dispatched", "completed", "retried", "abandoned", "arenas",
    }

    inline = PlacementService(
        AdvisoryBackend(host, registry=RngRegistry(1), runs=5),
        breaker=CircuitBreaker(),
    )
    assert "solver_pool" not in inline.health_payload()


def test_note_abandoned_is_counted(host, pool):
    pool.note_abandoned()
    assert pool.stats()["abandoned"] == 1


def test_worker_solver_failure_trips_breaker(host, pool):
    """A failure inside a worker keeps its class; the breaker counts it."""
    from repro.service.soak import build_soak_plan

    backend = AdvisoryBackend(host, registry=RngRegistry(5), runs=5,
                              solver_pool=pool)
    service = PlacementService(
        backend, breaker=CircuitBreaker(failure_threshold=1)
    )
    victim = 7
    plan = build_soak_plan(host, victim, 0.0, 100.0)
    backend.set_machine(plan.apply(host, at_s=1.0))

    response = json.loads(
        service.handle_line(line("classify", {"target": victim}))
    )
    assert response["error"]["kind"] == "solver_error"
    assert service.breaker.state != CircuitBreaker.CLOSED
