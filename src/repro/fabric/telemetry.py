"""Worker-process telemetry: capture in the worker, graft in the parent.

Telemetry recorders are process-global, so a worker's spans and counters
would silently vanish at the process boundary.  This module closes that
gap deterministically:

* **Worker side** — :func:`begin_capture` / :func:`end_capture` bracket
  one task with a fresh :class:`~repro.obs.recorder.TraceRecorder` over
  a private metrics registry (a forked worker may have inherited the
  parent's installed recorder; it is uninstalled first so worker spans
  never write into a copied parent trace).  The captured payload is
  plain data: the event list plus counter/gauge snapshots.
* **Parent side** — :func:`graft` splices a captured payload into the
  live parent recorder: a synthetic container span is appended, every
  worker span is re-based under it (sequence numbers renumbered, depths
  shifted, ``start_s`` offset to the container's start), and counters
  are folded into the parent metrics registry.  Grafting payloads in
  task order makes the merged trace — span names, counts, nesting, and
  counter totals — deterministic and equal to a serial run's, leaving
  only wall times to differ (manifests never gate on wall time).
"""

from __future__ import annotations

import time

from repro.obs import recorder as _obs
from repro.obs.metrics import MetricsRegistry

__all__ = ["begin_capture", "end_capture", "graft"]


def begin_capture(enabled: bool) -> "_obs.TraceRecorder | None":
    """Start a worker-local recording for one task.

    Any inherited recorder (fork copies the parent's module global) is
    discarded first.  Returns the live recorder, or ``None`` when the
    parent was not recording — the no-op fast path stays no-op.
    """
    _obs.uninstall()
    if not enabled:
        return None
    recorder = _obs.TraceRecorder(MetricsRegistry())
    _obs.install(recorder)
    return recorder


def end_capture(recorder: "_obs.TraceRecorder | None",
                solver_baseline: "dict[str, int] | None" = None) -> "dict | None":
    """Finish a worker capture and return its plain-data payload.

    ``solver_baseline`` is the worker's pre-task
    :func:`~repro.obs.stats.solver_totals` snapshot; the delta is folded
    in as ``solver.*`` counters, mirroring what
    :class:`~repro.obs.recorder.recording` does at process scope, so a
    parent manifest still accounts solver work that ran in workers.
    """
    if recorder is None:
        return None
    _obs.uninstall()
    if solver_baseline is not None:
        from repro.obs.stats import solver_totals

        for name, total in solver_totals().items():
            delta = total - solver_baseline.get(name, 0)
            if delta:
                recorder.metrics.count(f"solver.{name}", delta)
    snapshot = recorder.metrics.snapshot()
    return {
        "events": recorder.events,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
    }


def graft(parent: "_obs.TraceRecorder", captured: "dict | None",
          label: str = "fabric.worker", **tags) -> None:
    """Splice one captured worker payload into the parent recorder.

    Counters add into the parent metrics registry (name order, so
    repeated grafts are deterministic); gauges last-write-win in graft
    order.  Worker spans land under a synthetic ``label`` container
    span at the parent's current nesting depth.
    """
    if parent is None or captured is None:
        return
    for name in sorted(captured["counters"]):
        parent.metrics.count(name, captured["counters"][name])
    for name in sorted(captured["gauges"]):
        parent.metrics.gauge(name, captured["gauges"][name])
    events = captured["events"]
    if not events:
        return
    base = len(parent.events)
    depth = len(parent._stack)
    container = {
        "name": label,
        "tags": dict(tags),
        "seq": base,
        "parent": parent._stack[-1] if parent._stack else None,
        "depth": depth,
        "start_s": time.perf_counter() - parent._t0,
        "wall_s": max(
            e["start_s"] + e.get("wall_s", 0.0) for e in events
        ),
    }
    parent.events.append(container)
    for event in events:
        grafted = dict(event)
        grafted["seq"] = event["seq"] + base + 1
        grafted["parent"] = (
            base if event["parent"] is None else event["parent"] + base + 1
        )
        grafted["depth"] = event["depth"] + depth + 1
        grafted["start_s"] = container["start_s"] + event["start_s"]
        parent.events.append(grafted)
