#!/usr/bin/env sh
# The one-command CI gate: run every smoke suite and print a pass/fail
# summary table.  Each smoke runs to completion even if an earlier one
# failed, so one run reports the full picture; the script exits nonzero
# if any suite failed.
#
# Usage:
#   scripts/ci_smoke.sh          # everything (bench included)
#   scripts/ci_smoke.sh --fast   # skip the slow suites (bench,
#                                # recovery) and trim recovery trials
#
# Per-suite logs land in $TMPDIR/ci_smoke.<pid>/<name>.log and the
# failing logs' tails are echoed after the table.
set -u

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *)
            echo "usage: scripts/ci_smoke.sh [--fast]" >&2
            exit 2
            ;;
    esac
done

TMPDIR="${TMPDIR:-/tmp}"
WORK="$TMPDIR/ci_smoke.$$"
mkdir -p "$WORK"
trap 'rm -rf "$WORK"' EXIT

SUITES="chaos obs fabric service recovery bench"
if [ "$FAST" = "1" ]; then
    SUITES="chaos obs fabric service"
    # Keep any suite that honours trial knobs cheap if re-enabled.
    RECOVERY_TRIALS=1
    export RECOVERY_TRIALS
fi

RESULTS="$WORK/results.txt"
: > "$RESULTS"
FAILED=0

for name in $SUITES; do
    script="scripts/${name}_smoke.sh"
    log="$WORK/$name.log"
    echo "== running $script"
    start=$(date +%s)
    if sh "$script" > "$log" 2>&1; then
        status=PASS
    else
        status=FAIL
        FAILED=1
    fi
    end=$(date +%s)
    printf '%s %s %s\n' "$name" "$status" "$((end - start))" >> "$RESULTS"
    echo "   $status (${name}, $((end - start)) s)"
done

echo
echo "== ci smoke summary"
printf '%-10s %-6s %8s\n' "suite" "status" "seconds"
printf '%-10s %-6s %8s\n' "-----" "------" "-------"
while read -r name status seconds; do
    printf '%-10s %-6s %8s\n' "$name" "$status" "$seconds"
done < "$RESULTS"
if [ "$FAST" = "1" ]; then
    echo "(--fast: bench and recovery suites skipped)"
fi

if [ "$FAILED" = "1" ]; then
    echo
    while read -r name status seconds; do
        if [ "$status" = "FAIL" ]; then
            echo "== tail of failing suite: $name"
            tail -30 "$WORK/$name.log"
        fi
    done < "$RESULTS"
    echo
    echo "ci smoke FAILED"
    exit 1
fi

echo
echo "ci smoke passed"
