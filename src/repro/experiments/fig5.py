"""F5 — Fig. 5: TCP send/receive bandwidth vs concurrent streams.

Shape facts (§IV-B1): aggregate grows with streams until four parallel
streams, then plateaus with contention jitter; peak stays within the
PCIe-derated protocol budget; nodes {2,3} underperform on send; node 4
is the clear loser on receive; and binding to the device-local node 7 is
often *not* the best choice — node 6 wins in many configurations
(interrupt handling lives on node 7).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_series
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.experiments.common import check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 5: TCP bandwidth vs streams and NUMA binding"

STREAM_COUNTS = (1, 2, 4, 8, 16)


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """TCP send/recv (node x streams) grids with shape checks."""
    m = default_machine(machine)
    runner = FioRunner(m, registry=default_registry(registry))
    counts = (1, 4, 16) if quick else STREAM_COUNTS

    grids = {}
    for rw in ("send", "recv"):
        base = FioJob(name=f"fig5-{rw}", engine="tcp", rw=rw, numjobs=1)
        grid = runner.grid(base, counts=counts)
        grids[rw] = {
            node: {n: res.aggregate_gbps for n, res in per_count.items()}
            for node, per_count in grid.items()
        }

    send, recv = grids["send"], grids["recv"]
    grows = all(
        send[node][1] < send[node][2] < send[node][4]
        for node in m.node_ids
        if {1, 2, 4} <= set(counts)
    ) if not quick else all(send[node][1] < send[node][4] for node in m.node_ids)
    peak = max(v for curve in send.values() for v in curve.values())
    node6_wins = sum(
        1 for n_streams in counts if send[6][n_streams] >= send[7][n_streams]
    )
    send_23 = np.mean([send[n][4] for n in (2, 3)]) if 4 in counts else np.mean(
        [send[n][counts[-1]] for n in (2, 3)]
    )
    send_others = np.mean([send[n][4 if 4 in counts else counts[-1]]
                           for n in (0, 1, 4, 5)])
    recv_4 = min(recv[4][c] for c in counts if c >= 4)
    recv_rest_min = min(
        recv[n][c] for n in m.node_ids if n != 4 for c in counts if c >= 4
    )

    checks = (
        check("bandwidth grows until 4 parallel streams", grows),
        check("peak within the 32 Gbps PCIe budget and above 19 Gbps",
              19.0 <= peak <= 26.0, f"peak {peak:.1f} Gbps"),
        check("node 6 matches or beats local node 7 in most stream counts",
              node6_wins >= len(counts) - 1,
              f"node 6 wins {node6_wins}/{len(counts)}"),
        check("send: nodes {2,3} trail the other remotes by >10 %",
              send_23 < 0.9 * send_others,
              f"{send_23:.1f} vs {send_others:.1f} Gbps"),
        check("receive: node 4 is the worst binding",
              recv_4 < recv_rest_min,
              f"node4 {recv_4:.1f} vs others' min {recv_rest_min:.1f} Gbps"),
    )
    text = "\n\n".join(
        [
            render_series("(a) TCP send (data to the NIC)", send),
            render_series("(b) TCP receive (data from the NIC)", recv),
        ]
    )
    return ExperimentResult(
        exp_id="f5", title=TITLE, text=text,
        data={"send": send, "recv": recv}, checks=checks,
    )
