"""Response-curve fitting (the inverse calibration)."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.devices.fit import fit_engine_profile, fit_response_curve
from repro.errors import DeviceError
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def rdma_read_sweep(host):
    runner = FioRunner(host, RngRegistry())
    return {
        n: runner.run(
            FioJob(name=f"fit-{n}", engine="rdma", rw="read", numjobs=4,
                   cpunodebind=n)
        ).aggregate_gbps
        for n in host.node_ids
    }


class TestFitResponseCurve:
    def test_recovers_shipped_curve(self, host, rdma_read_sweep):
        """Fitting the simulator's own measurements must recover a curve
        close to the shipped rdma_read calibration."""
        paths = {n: host.dma_path_gbps(7, n) for n in host.node_ids}
        fit = fit_response_curve(paths, rdma_read_sweep, path_ref_gbps=47.0)
        shipped = host.devices["nic"].engine("rdma_read").curve
        for probe in (27.9, 40.4, 47.0):
            assert fit.curve.value(probe) == pytest.approx(
                shipped.value(probe), rel=0.05
            )
        assert fit.residual_rms_gbps < 0.6

    def test_exact_synthetic_roundtrip(self):
        from repro.devices.response import ResponseCurve

        truth = ResponseCurve(cap_gbps=25.0, path_ref_gbps=50.0, beta=0.02,
                              gamma=2.0)
        paths = {i: p for i, p in enumerate((20.0, 30.0, 40.0, 45.0, 50.0, 55.0))}
        measured = {i: truth.value(p) for i, p in paths.items()}
        fit = fit_response_curve(paths, measured, path_ref_gbps=50.0)
        assert fit.max_abs_error_gbps < 0.01
        for p in (22.0, 35.0, 48.0):
            assert fit.curve.value(p) == pytest.approx(truth.value(p), rel=0.01)

    def test_needs_three_distinct_levels(self):
        with pytest.raises(DeviceError):
            fit_response_curve({0: 40.0, 1: 40.0, 2: 40.0},
                               {0: 20.0, 1: 20.0, 2: 20.0})

    def test_needs_three_nodes(self):
        with pytest.raises(DeviceError):
            fit_response_curve({0: 40.0, 1: 30.0}, {0: 20.0, 1: 18.0})

    def test_rejects_non_positive(self):
        with pytest.raises(DeviceError):
            fit_response_curve({0: 40.0, 1: 30.0, 2: 0.0},
                               {0: 20.0, 1: 18.0, 2: 15.0})

    def test_render(self, host, rdma_read_sweep):
        paths = {n: host.dma_path_gbps(7, n) for n in host.node_ids}
        fit = fit_response_curve(paths, rdma_read_sweep)
        assert "cap=" in fit.render()


class TestFitEngineProfile:
    def test_profile_usable_on_new_device(self, host, rdma_read_sweep):
        profile = fit_engine_profile(
            host, 7, "read", rdma_read_sweep, name="custom_read",
            per_stream_cap_gbps=21.5, sigma=0.002,
        )
        assert profile.name == "custom_read"
        # The fitted profile reproduces the class-3 measurement.
        assert profile.curve.value(40.4) == pytest.approx(
            rdma_read_sweep[0], rel=0.05
        )

    def test_bad_direction_rejected(self, host, rdma_read_sweep):
        with pytest.raises(DeviceError):
            fit_engine_profile(host, 7, "sideways", rdma_read_sweep, name="x")
