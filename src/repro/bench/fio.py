"""The fio-like benchmark runner."""

from __future__ import annotations

from repro.bench.engines import DeviceIOEngine, MemcpyEngine
from repro.bench.jobfile import FioJob
from repro.bench.results import JobResult
from repro.rng import RngRegistry
from repro.topology.machine import Machine

__all__ = ["FioRunner"]


class FioRunner:
    """Execute fio jobs against a machine.

    Parameters
    ----------
    machine:
        The host (with devices attached for tcp/rdma/libaio jobs).
    registry:
        Seeded RNG registry; each (job, run index) gets its own stream,
        so results are reproducible and independent of execution order.
    """

    def __init__(self, machine: Machine, registry: RngRegistry | None = None) -> None:
        self.machine = machine
        self.registry = registry or RngRegistry()
        self._device_engine = DeviceIOEngine(machine)
        self._memcpy_engine = MemcpyEngine(machine)

    def run(self, job: FioJob, run_idx: int = 0) -> JobResult:
        """Run one job once."""
        rng = self.registry.stream(f"fio/{job.engine}/{job.name}/run{run_idx}")
        if job.engine == "memcpy":
            return self._memcpy_engine.run(job, rng)
        return self._device_engine.run(job, rng)

    def run_jobs(self, jobs, run_idx: int = 0) -> list[JobResult]:
        """Run a list of jobs (a parsed job file) sequentially."""
        return [self.run(job, run_idx) for job in jobs]

    # --- sweep helpers (the paper's experimental grids) -------------------
    def sweep_nodes(self, job: FioJob, nodes=None, run_idx: int = 0) -> dict[int, JobResult]:
        """Run ``job`` once per CPU-node binding (Figs. 5-7 x-axis)."""
        nodes = tuple(nodes) if nodes is not None else self.machine.node_ids
        return {node: self.run(job.with_node(node), run_idx) for node in nodes}

    def sweep_numjobs(self, job: FioJob, counts, run_idx: int = 0) -> dict[int, JobResult]:
        """Run ``job`` once per concurrency level (Figs. 5-7 series)."""
        return {int(n): self.run(job.with_numjobs(int(n)), run_idx) for n in counts}

    def grid(self, job: FioJob, nodes=None, counts=(1, 2, 4, 8, 16), run_idx: int = 0):
        """Full (node x streams) grid: node -> streams -> JobResult."""
        nodes = tuple(nodes) if nodes is not None else self.machine.node_ids
        return {
            node: self.sweep_numjobs(job.with_node(node), counts, run_idx)
            for node in nodes
        }
