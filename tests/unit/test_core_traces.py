"""Workload trace save/replay."""

import pytest

from repro.core.migration import OnlineSimulator, OnlineWorkload
from repro.core.traces import load_trace, save_trace
from repro.errors import ModelError
from repro.rng import RngRegistry


@pytest.fixture()
def jobs(registry):
    return OnlineWorkload(registry, rate_per_s=0.2).generate(12, label="trace")


class TestRoundTrip:
    def test_save_and_load(self, jobs, tmp_path):
        path = tmp_path / "workload.trace"
        assert save_trace(jobs, path) == 12
        back = load_trace(path)
        assert [(j.name, j.arrival_s, j.size_bytes, j.direction) for j in back] \
            == [(j.name, j.arrival_s, j.size_bytes, j.direction) for j in jobs]

    def test_replay_gives_identical_results(self, jobs, tmp_path, host, registry):
        from repro.core.iomodel import IOModelBuilder

        path = tmp_path / "workload.trace"
        save_trace(jobs, path)
        model = IOModelBuilder(host, registry=registry, runs=5).build(7, "write")
        a = OnlineSimulator(host, model, registry=RngRegistry(1)).run(
            jobs, "class-spread"
        )
        b = OnlineSimulator(host, model, registry=RngRegistry(1)).run(
            load_trace(path), "class-spread"
        )
        assert a.mean_completion_s == b.mean_completion_s


class TestValidation:
    def test_empty_refused(self, tmp_path):
        with pytest.raises(ModelError):
            save_trace([], tmp_path / "x.trace")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_trace(tmp_path / "ghost.trace")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ModelError):
            load_trace(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format_version": 99}\n{"name": "x"}\n',
                        encoding="utf-8")
        with pytest.raises(ModelError):
            load_trace(path)

    def test_malformed_line_reports_position(self, jobs, tmp_path):
        path = tmp_path / "bad.trace"
        save_trace(jobs[:2], path)
        path.write_text(
            path.read_text(encoding="utf-8") + '{"name": "incomplete"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ModelError, match="line 4"):
            load_trace(path)

    def test_duplicate_names_rejected(self, jobs, tmp_path):
        path = tmp_path / "dup.trace"
        save_trace([jobs[0], jobs[0]], path)
        with pytest.raises(ModelError):
            load_trace(path)
