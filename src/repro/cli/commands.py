"""Subcommand implementations for ``repro-numa``."""

from __future__ import annotations

import argparse

from repro.analysis.report import render_node_sweep
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob, parse_jobfile
from repro.bench.stream import StreamBenchmark
from repro.core.characterize import HostCharacterizer
from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.errors import ReproError
from repro.experiments import list_experiments, run_experiment
from repro.experiments.sweeps import operation_sweep
from repro.memory.allocator import PageAllocator
from repro.memory.policy import MemBinding
from repro.osmodel.numactl import Numactl
from repro.rng import RngRegistry
from repro.topology import builders
from repro.topology.hwloc import render_links, render_machine
from repro.units import MiB

__all__ = [
    "cmd_hardware",
    "cmd_stream",
    "cmd_fio",
    "cmd_iomodel",
    "cmd_predict",
    "cmd_advise",
    "cmd_experiment",
    "cmd_stats",
    "cmd_numastat",
    "cmd_chaos",
    "cmd_serve",
    "cmd_obs_report",
    "cmd_recover",
]

_MACHINES = {
    "reference": builders.reference_host,
    "magny-cours-a": lambda: builders.magny_cours_4p("a"),
    "magny-cours-b": lambda: builders.magny_cours_4p("b"),
    "magny-cours-c": lambda: builders.magny_cours_4p("c"),
    "magny-cours-d": lambda: builders.magny_cours_4p("d"),
    "intel-4s4n": builders.intel_4s4n,
    "amd-4s8n": builders.amd_4s8n,
    "amd-8s8n": builders.amd_8s8n,
    "hp-blade-32n": builders.hp_blade_32n,
}


def _machine(args: argparse.Namespace):
    return _MACHINES[args.machine]()


def _registry(args: argparse.Namespace) -> RngRegistry:
    return RngRegistry(args.seed) if args.seed is not None else RngRegistry()


def _open_journal(run_dir, meta: dict, total_units: int):
    """Create-or-resume the run journal, with resume notes on stderr.

    Notes go to stderr on purpose: a resumed run's *stdout* must stay
    byte-identical to an uninterrupted run's.
    """
    import sys

    from repro.journal import RunJournal

    journal = RunJournal(run_dir, meta)
    if journal.truncated_tail:
        print(
            f"journal: truncated a torn tail record in {journal.path}",
            file=sys.stderr,
        )
    if journal.resumed_units:
        print(
            f"journal: {journal.resumed_units}/{total_units} unit(s) already "
            f"completed, re-running the rest",
            file=sys.stderr,
        )
    return journal


def cmd_hardware(args: argparse.Namespace) -> int:
    """``repro-numa hardware``."""
    machine = _machine(args)
    print(render_machine(machine))
    print()
    print(Numactl(machine).hardware())
    if args.links:
        print()
        print(render_links(machine))
    if getattr(args, "audit", False):
        from repro.topology.audit import render_port_budget

        print()
        print(render_port_budget(machine))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """``repro-numa stream``."""
    machine = _machine(args)
    bench = StreamBenchmark(
        machine, registry=_registry(args), runs=args.runs, kernel=args.kernel
    )
    if args.cpu is None:
        print(bench.matrix().render())
        return 0
    if args.mem is None:
        raise ReproError("--mem is required with --cpu")
    measurement = bench.measure(args.cpu, args.mem)
    print(
        f"STREAM {args.kernel} CPU{args.cpu}->MEM{args.mem}: "
        f"{measurement.gbps:.2f} Gbps (max of {measurement.runs} runs, "
        f"spread {measurement.spread:.2f})"
    )
    return 0


def cmd_fio(args: argparse.Namespace) -> int:
    """``repro-numa fio``."""
    machine = _machine(args)
    runner = FioRunner(machine, registry=_registry(args))
    if args.jobfile:
        with open(args.jobfile, "r", encoding="utf-8") as handle:
            jobs = parse_jobfile(handle.read())
    else:
        if not args.engine or not args.rw:
            raise ReproError("either --jobfile or both --engine and --rw are required")
        jobs = [
            FioJob(
                name=f"cli-{args.engine}-{args.rw}",
                engine=args.engine,
                rw=args.rw,
                numjobs=args.numjobs,
                cpunodebind=args.node,
                target_node=args.target,
            )
        ]
    for result in runner.run_jobs(jobs):
        print(result.render())
    return 0


def _iomodel_targets(args: argparse.Namespace, machine) -> list[int]:
    """The target list for ``iomodel``: ``--targets`` wins, ``all`` sweeps
    every node, otherwise the single ``--target``."""
    spec = getattr(args, "targets", None)
    if not spec:
        return [args.target]
    if spec.strip().lower() == "all":
        return list(machine.node_ids)
    try:
        return [int(tok) for tok in spec.split(",") if tok.strip()]
    except ValueError as exc:
        raise ReproError(f"cannot parse --targets {spec!r}") from exc


def cmd_iomodel(args: argparse.Namespace) -> int:
    """``repro-numa iomodel`` (the paper's numademo extension).

    ``--targets a,b,c`` (or ``all``) sweeps several targets in one
    batched run; ``--jobs N`` shards that sweep over the shared-memory
    worker fabric.  Output is byte-identical for any jobs value — the
    fabric's determinism contract — so the sharded path needs no
    separate golden files.

    ``--resume RUN_DIR`` journals the sweep (one record per target):
    interrupted anywhere and re-run, stdout is byte-identical to an
    uninterrupted run and completed targets are never recomputed.
    """
    machine = _machine(args)
    registry = _registry(args)
    targets = _iomodel_targets(args, machine)
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {jobs}")
    resume = getattr(args, "resume", None)
    journal = None
    pool = None
    try:
        if resume:
            # Journaled runs always dispatch through the fabric with
            # per-target units, so resume granularity (and the journal's
            # identity) is independent of the jobs count.
            from repro.fabric import FabricPool

            journal = _open_journal(resume, {
                "command": "iomodel",
                "machine": args.machine,
                "seed": registry.seed,
                "targets": [int(t) for t in targets],
                "mode": args.mode,
                "runs": args.runs,
            }, len(targets))
            pool = FabricPool(jobs=min(jobs or 1, max(len(targets), 1)))
        elif jobs is not None and jobs > 1:
            from repro.fabric import FabricPool

            pool = FabricPool(jobs=min(jobs, max(len(targets), 1)))
        if args.mode == "both":
            if pool is not None:
                results = pool.characterize_many(
                    machine, targets, registry=registry, journal=journal,
                    runs=args.runs
                )
            else:
                characterizer = HostCharacterizer(
                    machine, registry=registry, runs=args.runs
                )
                results = characterizer.characterize_many(tuple(targets))
            for index, target in enumerate(targets):
                if index:
                    print()
                print(results[target].render())
        else:
            if pool is not None:
                models = pool.build_many(
                    machine, targets, args.mode, registry=registry,
                    journal=journal, runs=args.runs
                )
            else:
                builder = IOModelBuilder(machine, registry=registry, runs=args.runs)
                models = builder.build_many(tuple(targets), args.mode)
            for index, target in enumerate(targets):
                if index:
                    print()
                model = models[target]
                print(model.render())
                print()
                print(
                    render_node_sweep(
                        f"per-node memcpy {args.mode} bandwidth", model.values
                    )
                )
    finally:
        if pool is not None:
            pool.close()
        if journal is not None:
            journal.close()
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``repro-numa predict``."""
    machine = _machine(args)
    registry = _registry(args)
    try:
        stream_nodes = tuple(int(tok) for tok in args.streams.split(",") if tok.strip())
    except ValueError as exc:
        raise ReproError(f"cannot parse --streams {args.streams!r}") from exc
    direction = "read" if args.rw in ("read", "recv") else "write"
    model = IOModelBuilder(machine, registry=registry).build(args.target, direction)
    runner = FioRunner(machine, registry=registry)
    sweep = operation_sweep(runner, args.engine, args.rw, numjobs=4)
    predictor = MixturePredictor(model, sweep)
    predicted = predictor.predict_streams(stream_nodes)
    print(f"Eq. 1 prediction for streams {stream_nodes}: {predicted:.3f} Gbps")
    if args.measure:
        job = FioJob(
            name="cli-mixture",
            engine=args.engine,
            rw=args.rw,
            numjobs=len(stream_nodes),
            stream_nodes=stream_nodes,
        )
        measured = runner.run(job).aggregate_gbps
        print(predictor.validate(measured, stream_nodes).render())
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """``repro-numa advise``."""
    machine = _machine(args)
    registry = _registry(args)
    direction = "read" if args.rw in ("read", "recv") else "write"
    model = IOModelBuilder(machine, registry=registry).build(args.target, direction)
    runner = FioRunner(machine, registry=registry)
    sweep = operation_sweep(runner, args.engine, args.rw, numjobs=4)
    advisor = PlacementAdvisor(machine, model, sweep)
    plan = advisor.advise(args.tasks)
    print(plan.render())
    if args.compare:
        naive = advisor.naive_plan(args.tasks)
        for tag, p in (("spread", plan), ("all-local", naive)):
            job = FioJob(
                name=f"cli-advise-{tag}",
                engine=args.engine,
                rw=args.rw,
                numjobs=p.n_tasks,
                stream_nodes=tuple(p.stream_nodes()),
            )
            print(f"{tag}: {runner.run(job).aggregate_gbps:.2f} Gbps")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro-numa experiment``."""
    if not args.id:
        for exp_id, title in list_experiments().items():
            print(f"{exp_id:5s} {title}")
        return 0
    if args.id == "all":
        return _run_all_experiments(args)
    result = run_experiment(args.id, quick=args.quick)
    print(result.render())
    if getattr(args, "json_path", None):
        from repro.journal import atomic_write_json

        atomic_write_json(
            args.json_path,
            {
                "exp_id": result.exp_id,
                "title": result.title,
                "passed": result.passed,
                "data": result.data,
                "checks": [
                    {"name": c.name, "ok": c.ok, "detail": c.detail}
                    for c in result.checks
                ],
            },
            indent=2,
            sort_keys=False,
            default=str,
        )
    return 0 if result.passed else 1


def _experiment_worker(task: tuple[str, bool]) -> tuple[str, bool, str, str, list[str], float]:
    """Run one experiment in a worker process; returns primitives only.

    ``ExperimentResult.data`` can hold arbitrary objects, so workers
    pre-render everything the parent prints or writes and ship strings
    back across the process boundary.
    """
    import os
    import time

    exp_id, quick = task
    if os.environ.get("REPRO_CHAOS_KILL_EXPERIMENT") == exp_id:
        # Test hook: die exactly like a worker hit by the OOM killer,
        # so the merge path's crash handling can be exercised for real.
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    start = time.perf_counter()
    result = run_experiment(exp_id, quick=quick)
    wall_s = time.perf_counter() - start
    failed_lines = [c.render() for c in result.failed_checks()]
    return (exp_id, result.passed, result.title, result.render(), failed_lines, wall_s)


def _run_all_experiments(args: argparse.Namespace) -> int:
    """``repro-numa experiment all [--outdir DIR] [--jobs N]``.

    Without ``--jobs`` the experiments run sequentially with the
    historical output format.  With ``--jobs N`` they fan out over a
    multiprocessing pool; results are merged back in registry order
    (deterministic regardless of completion order) and the report gains
    a per-experiment wall-time column.

    With ``--resume RUN_DIR`` every experiment is one journal unit and
    the report uses the wall-time-free serial format, so an interrupted
    and resumed run prints byte-identical output to an uninterrupted
    one (and to the serial path) while re-running only the experiments
    the crash lost.
    """
    import pathlib

    from repro.experiments import EXPERIMENTS

    outdir = pathlib.Path(args.outdir) if args.outdir else None
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {jobs}")
    resume = getattr(args, "resume", None)
    failed = []
    if resume:
        from repro.fabric import FabricPool
        from repro.journal import atomic_write_text

        journal = _open_journal(resume, {
            "command": "experiment",
            "id": "all",
            "quick": bool(args.quick),
        }, len(EXPERIMENTS))
        try:
            with FabricPool(jobs=min(jobs or 1, len(EXPERIMENTS))) as pool:
                outcomes = pool.run_experiments(
                    list(EXPERIMENTS), quick=args.quick, journal=journal
                )
        finally:
            journal.close()
        for exp_id, passed, title, rendered, failed_lines, _wall_s in outcomes:
            status = "CRASH" if passed is None else "PASS" if passed else "FAIL"
            print(f"{exp_id:5s} {status}  {title}")
            if not passed:
                failed.append(exp_id)
                for line in failed_lines:
                    print(f"      {line}")
            if outdir is not None:
                atomic_write_text(outdir / f"{exp_id}.txt", rendered + "\n")
    elif jobs is None:
        for exp_id in EXPERIMENTS:
            result = run_experiment(exp_id, quick=args.quick)
            status = "PASS" if result.passed else "FAIL"
            print(f"{exp_id:5s} {status}  {result.title}")
            if not result.passed:
                failed.append(exp_id)
                for check in result.failed_checks():
                    print(f"      {check.render()}")
            if outdir is not None:
                from repro.journal import atomic_write_text

                atomic_write_text(outdir / f"{exp_id}.txt", result.render() + "\n")
    else:
        import time

        tasks = [(exp_id, args.quick) for exp_id in EXPERIMENTS]
        start = time.perf_counter()
        if jobs == 1:
            outcomes = [_experiment_worker(t) for t in tasks]
        else:
            # The shared-memory worker fabric: a persistent pool whose
            # workers die loudly (a SIGKILLed worker degrades to a
            # structured "crashed" row and a nonzero exit — never a
            # stuck merge) and whose telemetry grafts back into the
            # parent recorder, so --obs-dir keeps worker spans.
            from repro.fabric import FabricPool

            with FabricPool(jobs=min(jobs, len(tasks))) as pool:
                outcomes = pool.run_experiments(
                    [t[0] for t in tasks], quick=args.quick
                )
        total_s = time.perf_counter() - start
        for exp_id, passed, title, rendered, failed_lines, wall_s in outcomes:
            status = "CRASH" if passed is None else "PASS" if passed else "FAIL"
            print(f"{exp_id:5s} {status}  {wall_s:6.2f} s  {title}")
            if not passed:
                failed.append(exp_id)
                for line in failed_lines:
                    print(f"      {line}")
            if outdir is not None:
                from repro.journal import atomic_write_text

                atomic_write_text(outdir / f"{exp_id}.txt", rendered + "\n")
        busy_s = sum(o[5] for o in outcomes)
        print(
            f"{len(outcomes)} experiments in {total_s:.2f} s wall "
            f"({busy_s:.2f} s of experiment time, {jobs} jobs)"
        )
    if outdir is not None:
        print(f"artifacts written to {outdir}/")
    if failed:
        print(f"failed: {', '.join(failed)}")
        return 1
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """``repro-numa plan``: rank device attachment points."""
    from repro.analysis.planner import DeviceAttachmentPlanner

    planner = DeviceAttachmentPlanner(_machine(args), write_weight=args.write_weight)
    print(planner.render())
    best = planner.best()
    print(f"recommendation: attach at node {best.node}")
    return 0


def _serve_machine(args: argparse.Namespace):
    """The machine ``serve`` operates on: ``--machine-file`` wins."""
    if getattr(args, "machine_file", None):
        from repro.topology.serialize import machine_from_json_file

        return machine_from_json_file(args.machine_file)
    return _machine(args)


def _warm_targets(machine, spec: "str | None") -> "tuple[int, ...] | None":
    """Parse ``--warm``: ``None`` (device nodes), ``'all'``, or id list."""
    if spec is None:
        return None
    text = spec.strip().lower()
    if text == "all":
        return tuple(machine.node_ids)
    try:
        targets = tuple(
            int(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        raise ReproError(
            f"--warm must be 'all' or comma-separated node ids, got {spec!r}"
        ) from None
    if not targets:
        raise ReproError(
            f"--warm must name at least one node, got {spec!r}"
        )
    unknown = [t for t in targets if t not in machine.node_ids]
    if unknown:
        raise ReproError(
            f"--warm names nodes {unknown} not on {machine.name!r} "
            f"(nodes {list(machine.node_ids)})"
        )
    return targets


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro-numa serve``: the placement-advisory JSON-RPC service.

    Three modes: ``--soak`` runs the deterministic chaos soak and exits
    nonzero unless every request was answered exactly once (and, with
    the fault window on, the breaker recovered); ``--stdio`` answers
    line requests serially on stdin/stdout (on a logical clock, so the
    response stream — tier and staleness tags included — is a pure
    function of the request stream); the default binds the asyncio TCP
    transport, warms tiers 1–2 in the background (``ready`` stays false
    until warmup completes), and serves until interrupted.
    """
    import asyncio
    import sys

    from repro.rng import DEFAULT_SEED
    from repro.service import (
        AdvisoryBackend,
        AsyncPlacementServer,
        CircuitBreaker,
        PlacementService,
        ServiceConfig,
        run_soak,
        serve_stdio,
    )
    from repro.service.soak import LogicalClock

    if args.soak and getattr(args, "converge", False):
        import json

        from repro.service.soak import run_convergence_soak

        report = run_convergence_soak(
            machine=_serve_machine(args),
            requests=args.requests,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
            runs=min(args.runs, 10),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        total = report.answered == report.requests
        return 0 if total and report.converged else 1

    if args.soak:
        import json

        report = run_soak(
            machine=_serve_machine(args),
            requests=args.requests,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
            runs=min(args.runs, 10),  # soak favours wall-time over noise
            fault=args.fault,
            failure_threshold=min(args.failure_threshold, 2),
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        total = report.answered == report.requests
        healthy_end = report.recovered if args.fault else not report.tripped
        return 0 if total and healthy_end else 1

    machine = _serve_machine(args)
    solver_pool = None
    if getattr(args, "solver_pool", None):
        if args.solver_pool < 1:
            raise ReproError(
                f"--solver-pool must be >= 1, got {args.solver_pool}"
            )
        from repro.fabric import FabricPool

        solver_pool = FabricPool(jobs=args.solver_pool)
    try:
        warm = _warm_targets(machine, getattr(args, "warm", None))
        backend = AdvisoryBackend(
            machine,
            registry=_registry(args),
            runs=args.runs,
            solver_pool=solver_pool,
            tier_max_staleness_s=getattr(args, "tier_max_staleness", None),
        )

        if args.stdio:
            # A logical clock ticking once per answered line keeps the
            # response stream (staleness tags included) byte-stable.
            service = PlacementService(
                backend,
                breaker=CircuitBreaker(
                    failure_threshold=args.failure_threshold
                ),
                clock=LogicalClock(),
            )
            backend.warm(warm)
            serve_stdio(service)
            return 0

        service = PlacementService(
            backend,
            breaker=CircuitBreaker(failure_threshold=args.failure_threshold),
        )
        # Black-box evidence on the two paths that need it most: a
        # breaker trip streams the flight recorder to stderr, and an
        # unexpected transport crash dumps it on the way down.
        service.flight_dump_sink = _print_flight_dump
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            workers=args.workers,
            failure_threshold=args.failure_threshold,
        )

        async def _run() -> None:
            server = AsyncPlacementServer(service, config)
            # Warm off-loop so the listener binds immediately; 'ready'
            # answers false until the warmup thread completes.
            warm_task = asyncio.create_task(
                asyncio.to_thread(backend.warm, warm)
            )

            def _warm_done(task: "asyncio.Task") -> None:
                if task.cancelled():
                    return
                exc = task.exception()
                if exc is not None:
                    print(
                        f"warmup failed: {type(exc).__name__}: {exc}",
                        file=sys.stderr, flush=True,
                    )

            warm_task.add_done_callback(_warm_done)
            await server.start()
            print(
                f"serving {machine.name} on {config.host}:{server.port} "
                f"(queue {config.queue_limit}, workers {config.workers})",
                flush=True,
            )
            try:
                await server.serve_forever()
            finally:
                if not warm_task.done():
                    warm_task.cancel()
                await server.drain()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        except Exception:
            service._drain_obs()  # the dump must show the final lines
            _print_flight_dump(service.live.flight.dump())
            raise
        return 0
    finally:
        if solver_pool is not None:
            solver_pool.close()


def _print_flight_dump(dump: dict) -> None:
    """Stream a flight-recorder dump to stderr as one JSON document."""
    import json
    import sys

    print("--- flight recorder dump ---", file=sys.stderr, flush=True)
    print(json.dumps(dump, sort_keys=True), file=sys.stderr, flush=True)


def cmd_numademo(args: argparse.Namespace) -> int:
    """``repro-numa numademo``: seven modules x three policies."""
    from repro.bench.numademo import Numademo

    machine = _machine(args)
    demo = Numademo(machine, registry=_registry(args))
    print(demo.render(args.node))
    return 0


def cmd_online(args: argparse.Namespace) -> int:
    """``repro-numa online``: compare online placement policies."""
    from repro.core.iomodel import IOModelBuilder
    from repro.core.migration import OnlineSimulator, OnlineWorkload
    from repro.core.traces import load_trace, save_trace

    machine = _machine(args)
    registry = _registry(args)
    model = IOModelBuilder(machine, registry=registry).build(args.target, "write")
    if getattr(args, "trace", None):
        jobs = load_trace(args.trace)
        print(f"replaying {len(jobs)} streams from {args.trace}")
    else:
        workload = OnlineWorkload(registry.child("cli"), rate_per_s=args.rate)
        jobs = workload.generate(args.streams, label="cli")
    if getattr(args, "save_trace", None):
        save_trace(jobs, args.save_trace)
        print(f"workload saved to {args.save_trace}")
    simulator = OnlineSimulator(machine, model, registry=registry.child("sim"))
    for outcome in simulator.compare(jobs).values():
        print(outcome.render())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """``repro-numa export``: machine description as JSON on stdout."""
    import json

    from repro.topology.serialize import machine_to_dict

    print(json.dumps(machine_to_dict(_machine(args)), indent=2))
    return 0


def cmd_concurrent(args: argparse.Namespace) -> int:
    """``repro-numa concurrent``: a job file's jobs, all at once."""
    from repro.bench.concurrent import ConcurrentRunner

    machine = _machine(args)
    with open(args.jobfile, "r", encoding="utf-8") as handle:
        jobs = parse_jobfile(handle.read())
    result = ConcurrentRunner(machine, _registry(args)).run(jobs)
    print(result.render())
    print(f"total: {result.total_gbps:.2f} Gbps")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro-numa stats``: solver-session instrumentation for a workload.

    Runs one representative workload through a fresh solver session and
    prints what the session actually did — max-min solves, allocation
    cache hit rate, simulation events, capacity builds, per-phase wall
    time.  The numbers a contributor watches when touching the solver.
    """
    from repro.solver import get_session, reset_sessions

    reset_sessions()
    machine = _machine(args)
    registry = _registry(args)
    if args.workload == "iomodel":
        builder = IOModelBuilder(machine, registry=registry, runs=args.runs)
        builder.build_both(args.target)
    elif args.workload == "stream":
        StreamBenchmark(machine, registry=registry, runs=args.runs).matrix()
    else:  # fio
        runner = FioRunner(machine, registry=registry)
        runner.run(
            FioJob(
                name="stats-memcpy",
                engine="memcpy",
                rw="write",
                numjobs=4,
                cpunodebind=machine.node_ids[0],
                target_node=args.target,
            )
        )
    session = get_session(machine)
    print(f"workload: {args.workload} on {machine.name}")
    print(session.stats.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro-numa chaos``: seeded fault scenarios + resilience report.

    The machine-level scenarios run on ``--machine``; the
    ``flapping-uplink`` scenario always builds its own small cluster of
    reference hosts.  Same seed, same report — bit for bit.  With
    ``--resume RUN_DIR`` each scenario is one journal unit: a run
    interrupted mid-soak resumes with completed scenarios replayed from
    the journal and the same bit-for-bit report.
    """
    from repro.faults.chaos import SCENARIOS, run_chaos
    from repro.retrying import RetryPolicy

    machine = _machine(args)
    registry = _registry(args)
    names = tuple(SCENARIOS) if args.scenario == "all" else (args.scenario,)
    budget = getattr(args, "retry_budget", 4)
    base = getattr(args, "retry_base", 0.25)
    if budget < 0:
        raise ReproError(f"--retry-budget must be >= 0, got {budget}")
    if base <= 0:
        raise ReproError(f"--retry-base must be > 0, got {base}")
    retry = RetryPolicy(max_retries=budget, base_delay_s=base)
    resume = getattr(args, "resume", None)
    if resume:
        from repro.journal import journaled_chaos

        journal = _open_journal(resume, {
            "command": "chaos",
            "machine": args.machine,
            "seed": registry.seed,
            "scenarios": list(names),
            "quick": bool(args.quick),
            "retry_budget": budget,
            "retry_base": base,
        }, len(names))
        try:
            report = journaled_chaos(
                machine, registry, names, args.quick, journal, retry=retry
            )
        finally:
            journal.close()
    else:
        report = run_chaos(
            machine=machine, registry=registry, scenarios=names,
            quick=args.quick, retry=retry,
        )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """``repro-numa recover``: the seeded crash-recovery soak.

    For each selected workload the soak runs a golden journaled run,
    then ``--trials`` crash trials: SIGKILL the run at a seeded journal
    record (half of them mid-write, leaving a torn tail), resume it,
    and gate three invariants —

    * resumed stdout is byte-identical to the golden run's,
    * the ``--obs-dir`` manifests are deterministic twins,
    * zero ``repro_fab_*`` segments are left in ``/dev/shm``,

    all without any manual journal cleanup.  Exit 0 only when every
    trial holds every invariant.
    """
    import os
    import pathlib
    import shutil
    import subprocess
    import sys
    import tempfile

    from repro.experiments import EXPERIMENTS
    from repro.fabric.arena import live_segments
    from repro.journal import CRASH_ENV, JOURNAL_FILENAME, scan_journal
    from repro.obs import diff_manifests, load_manifest

    if args.trials < 1:
        raise ReproError(f"--trials must be >= 1, got {args.trials}")
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    machine = _machine(args)
    registry = _registry(args)
    points = registry.stream("recover/points")
    base = [sys.executable, "-m", "repro.cli.main", "--machine", args.machine]
    if args.seed is not None:
        base += ["--seed", str(args.seed)]
    workloads = []
    if args.workload in ("iomodel", "both"):
        workloads.append((
            "iomodel",
            ["iomodel", "--targets", "all", "--mode", "both",
             "--runs", str(args.runs), "--jobs", str(args.jobs)],
            len(machine.node_ids),
        ))
    if args.workload in ("experiment", "both"):
        workloads.append((
            "experiment",
            ["experiment", "all", "--quick", "--jobs", str(args.jobs)],
            len(EXPERIMENTS),
        ))
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro_recover_"))
    failures: list[str] = []
    trials = 0
    # Never let an ambient crash point leak into the golden/resume runs.
    clean_env = {k: v for k, v in os.environ.items() if k != CRASH_ENV}
    try:
        for name, argv, units in workloads:
            golden_dir = root / f"{name}_golden"
            golden_obs = root / f"{name}_golden_obs"
            golden = subprocess.run(
                base + argv + ["--resume", str(golden_dir),
                               "--obs-dir", str(golden_obs)],
                capture_output=True, env=clean_env,
            )
            if golden.returncode != 0:
                failures.append(
                    f"{name}: golden journaled run exited {golden.returncode}"
                )
                continue
            print(f"{name}: golden journaled run ok ({units} units)")
            for trial in range(args.trials):
                trials += 1
                # Seeded kill point: any data record but the last, so
                # the resume always has work left to prove itself on.
                point = int(points.integers(1, max(units, 2)))
                torn = bool(points.integers(0, 2))
                run_dir = root / f"{name}_trial{trial}"
                obs_dir = root / f"{name}_trial{trial}_obs"
                trial_argv = base + argv + ["--resume", str(run_dir),
                                            "--obs-dir", str(obs_dir)]
                env = dict(clean_env)
                env[CRASH_ENV] = f"{point}:torn" if torn else str(point)
                # The SIGKILLed parent's pool workers inherit our pipes;
                # use DEVNULL so their lingering exits can't stall us.
                crash = subprocess.run(
                    trial_argv, env=env,
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                )
                tag = (
                    f"{name} trial {trial} (crash after record {point}"
                    f"{', torn' if torn else ''})"
                )
                if crash.returncode == 0:
                    failures.append(
                        f"{tag}: crash run exited 0 — injection never fired"
                    )
                    continue
                _, _, tail_torn = scan_journal(run_dir / JOURNAL_FILENAME)
                if torn and not tail_torn:
                    failures.append(
                        f"{tag}: expected a torn journal tail, found none"
                    )
                resumed = subprocess.run(
                    trial_argv, capture_output=True, env=clean_env
                )
                if resumed.returncode != 0:
                    failures.append(f"{tag}: resume exited {resumed.returncode}")
                    continue
                if resumed.stdout != golden.stdout:
                    failures.append(
                        f"{tag}: resumed stdout differs from the golden run"
                    )
                    continue
                manifest_a = load_manifest(golden_obs / "manifest.json")
                manifest_b = load_manifest(obs_dir / "manifest.json")
                diff = diff_manifests(manifest_a, manifest_b)
                # Cache-effect counters (solver hit/miss splits) follow
                # the task -> worker-process assignment, which a resume
                # legitimately changes; the determinism evidence is the
                # identity, the config, and the RNG draw ledger.
                ledger_a = manifest_a["seed"]["streams"]
                ledger_b = manifest_b["seed"]["streams"]
                if diff["identity"] or diff["config"] or ledger_a != ledger_b:
                    failures.append(
                        f"{tag}: resumed manifest is not a deterministic twin "
                        f"(identity {diff['identity']}, "
                        f"config {diff['config']}, "
                        f"ledger match {ledger_a == ledger_b})"
                    )
                    continue
                leaked = live_segments()
                if leaked:
                    failures.append(
                        f"{tag}: leaked /dev/shm segments: {', '.join(leaked)}"
                    )
                    continue
                print(
                    f"{tag}: resumed byte-identical, manifests are "
                    f"deterministic twins, no leaked segments"
                )
    finally:
        if args.keep:
            print(f"soak artifacts kept in {root}")
        else:
            shutil.rmtree(root, ignore_errors=True)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print(
        f"recovery soak passed: {len(workloads)} workload(s), "
        f"{trials} crash trial(s)"
    )
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """``repro-numa obs report DIR [DIR2]``: render or diff recordings."""
    from repro.obs import render_diff, render_report, report_json

    if len(args.dirs) > 2:
        raise ReproError(
            f"obs report takes one dir to summarize or two to diff, "
            f"got {len(args.dirs)}"
        )
    if args.json:
        import json

        other = args.dirs[1] if len(args.dirs) > 1 else None
        print(json.dumps(report_json(args.dirs[0], other), indent=2, sort_keys=True))
        return 0
    if len(args.dirs) > 1:
        print(render_diff(args.dirs[0], args.dirs[1]))
        tolerance = getattr(args, "phase_tolerance", None)
        if tolerance is not None:
            import pathlib

            from repro.obs import load_manifest, phase_regressions
            from repro.obs.report import render_phase_triage

            print()
            print(render_phase_triage(
                args.dirs[0], args.dirs[1], tolerance=tolerance
            ))
            if getattr(args, "gate_phases", False):
                shifts = phase_regressions(
                    load_manifest(pathlib.Path(args.dirs[0]) / "manifest.json"),
                    load_manifest(pathlib.Path(args.dirs[1]) / "manifest.json"),
                    tolerance=tolerance,
                )
                if shifts:
                    return 4
    else:
        print(render_report(args.dirs[0], top=args.top))
    return 0


def _metrics_call(host: str, port: int, flight: bool = False) -> dict:
    """Fetch one ``metrics`` result from a live server over TCP."""
    import json
    import socket

    from repro.service.protocol import encode_message

    request = encode_message({
        "jsonrpc": "2.0",
        "id": 1,
        "method": "metrics",
        "params": {"flight": flight} if flight else {},
    })
    try:
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(request.encode("utf-8"))
            with sock.makefile("r", encoding="utf-8") as stream:
                line = stream.readline()
    except OSError as exc:
        raise ReproError(
            f"cannot reach a server on {host}:{port}: {exc}"
        ) from exc
    if not line:
        raise ReproError(f"server on {host}:{port} closed without answering")
    response = json.loads(line)
    if "error" in response:
        err = response["error"]
        raise ReproError(
            f"metrics call failed: {err.get('kind')}: {err.get('message')}"
        )
    return response["result"]


def cmd_obs_scrape(args: argparse.Namespace) -> int:
    """``repro-numa obs scrape``: Prometheus-style text exposition."""
    import json
    import sys

    from repro.obs.live import render_scrape

    if getattr(args, "from_json", None):
        if args.from_json == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.from_json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    else:
        payload = _metrics_call(args.host, args.port)
    sys.stdout.write(render_scrape(payload))
    return 0


def _render_top(payload: dict) -> str:
    """One ``obs top`` frame: tier mix, percentiles, breaker, pool."""
    lines = [
        f"{payload['machine']}  up {payload['uptime_s']:.1f}s  "
        f"requests {payload['requests']}  "
        f"degraded {payload['degraded_served']}",
        f"  breaker : {payload['breaker']['state']} "
        f"(trips {payload['breaker']['trips']})",
    ]
    tiers = payload.get("tiers", {})
    total = sum(tiers.values()) or 1
    mix = ", ".join(
        f"tier {t} {tiers[t]} ({100.0 * tiers[t] / total:.0f}%)"
        for t in sorted(tiers)
    )
    lines.append(f"  tiers   : {mix or '(none answered yet)'}")
    hists = payload.get("histograms", {})
    shown = [
        name for name in sorted(hists)
        if name.startswith("service.latency.") or "/" not in name
    ]
    for name in shown:
        h = hists[name]
        lines.append(
            f"  {name:34s} n={h['count']:<7d} "
            f"p50={h['p50']:.6f}s p90={h['p90']:.6f}s p99={h['p99']:.6f}s"
        )
    drift = payload.get("drift")
    if drift is not None:
        lines.append(
            f"  drift   : {drift['events']} event(s), "
            f"{drift['watched']} watched, threshold {drift['threshold']}"
        )
    pool = payload.get("gauges", {}).get("fabric_pool")
    if pool:
        busy = pool["dispatched"] - pool["completed"]
        lines.append(
            f"  pool    : {pool['jobs']} worker(s), {busy} in flight, "
            f"{pool['completed']} completed, {pool['retried']} retried, "
            f"{pool['abandoned']} abandoned"
        )
    occ = payload.get("flight_recorder", {})
    if occ:
        lines.append(
            f"  flight  : {occ['spans']}/{occ['span_capacity']} spans, "
            f"{occ['events']}/{occ['event_capacity']} events"
        )
    return "\n".join(lines)


def cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro-numa obs top``: poll a live server and render tier mix,
    latency percentiles, breaker and pool state."""
    import time as _time

    polls = 0
    while True:
        print(_render_top(_metrics_call(args.host, args.port)), flush=True)
        polls += 1
        if args.count and polls >= args.count:
            return 0
        print(flush=True)
        try:
            _time.sleep(max(args.interval, 0.0))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def cmd_obs_tail(args: argparse.Namespace) -> int:
    """``repro-numa obs tail``: dump a live server's flight recorder."""
    import json

    payload = _metrics_call(args.host, args.port, flight=True)
    dump = payload["flight"]
    if args.json:
        print(json.dumps(dump, indent=2, sort_keys=True))
        return 0
    occ = dump["occupancy"]
    print(
        f"flight recorder: {occ['spans']}/{occ['span_capacity']} spans "
        f"({occ['span_total']} total), "
        f"{occ['events']}/{occ['event_capacity']} events "
        f"({occ['event_total']} total)"
    )
    spans = dump["spans"][-max(args.spans, 0):]
    if spans:
        print("spans (oldest first):")
        for s in spans:
            print(
                f"  #{s['seq']:<6d} t={s['t']:<12.6f} {s['name']:12s} "
                f"tier={s['tag']}  wall={s['wall_s']:.6f}s"
            )
    events = dump["events"][-max(args.events, 0):]
    if events:
        print("events (oldest first):")
        for e in events:
            tags = json.dumps(e.get("tags"), sort_keys=True)
            print(f"  #{e['seq']:<6d} t={e['t']:<12.6f} {e['kind']:12s} {tags}")
    return 0


def cmd_numastat(args: argparse.Namespace) -> int:
    """``repro-numa numastat``: counters after a small demo workload."""
    machine = _machine(args)
    allocator = PageAllocator(machine)
    # A little demo traffic: one local-preferred, one bound, one interleave.
    first = machine.node_ids[0]
    last = machine.node_ids[-1]
    allocator.allocate(64 * MiB, cpu_node=first)
    allocator.allocate(64 * MiB, cpu_node=first, binding=MemBinding.bind(last))
    allocator.allocate(
        64 * MiB, cpu_node=first, binding=MemBinding.interleave(*machine.node_ids)
    )
    print(allocator.stats.render())
    return 0
