"""Zero-copy shared-memory worker fabric.

The fabric is how the reproduction spreads CPU-bound solver work across
processes without giving up its two core guarantees: **bit-identical
results** regardless of worker count, and **no per-task machine
serialization** on the hot path.

Layers (bottom up):

* :mod:`repro.fabric.shard` — pure shard planning and order-preserving
  merges; contiguous slices folded in shard order reproduce serial
  insertion order.
* :mod:`repro.fabric.arena` — machine arenas: a machine's capacity
  vector, hop matrix, and DMA adjacency packed once into a POSIX
  shared-memory segment keyed by its solver fingerprint; workers attach
  and map instead of unpickling.  Refcounted, crash-proof cleanup.
* :mod:`repro.fabric.telemetry` — per-worker span/counter capture and
  deterministic grafting back into the parent's trace recorder.
* :mod:`repro.fabric.pool` — :class:`FabricPool`, the persistent worker
  pool that shards sweeps, runs experiment batches, and serves as the
  placement service's process-pool solver tier.
"""

from repro.fabric.arena import (
    MachineArena,
    attach,
    get_arena,
    live_segments,
    publish,
    release_all,
    segment_name,
)
from repro.fabric.pool import FabricPool
from repro.fabric.shard import merge_draws, merge_in_order, plan_shards
from repro.fabric.telemetry import begin_capture, end_capture, graft

__all__ = [
    "FabricPool",
    "MachineArena",
    "attach",
    "begin_capture",
    "end_capture",
    "get_arena",
    "graft",
    "live_segments",
    "merge_draws",
    "merge_in_order",
    "plan_shards",
    "publish",
    "release_all",
    "segment_name",
]
