"""NUMA memory allocation policies (the Linux policy set)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AllocationError

__all__ = ["AllocPolicy", "MemBinding"]


class AllocPolicy(enum.Enum):
    """Where new pages land, mirroring Linux mempolicy modes."""

    #: Default since kernel 2.6: allocate on the faulting CPU's node if it
    #: has free memory, else fall back to the nearest node with space.
    LOCAL_PREFERRED = "local-preferred"
    #: Hard binding to a node set (``numactl --membind``); allocation
    #: fails when the set is exhausted.
    BIND = "bind"
    #: Round-robin across a node set (``numactl --interleave``).
    INTERLEAVE = "interleave"
    #: Prefer one node, silently fall back anywhere (``--preferred``).
    PREFERRED = "preferred"


@dataclass(frozen=True)
class MemBinding:
    """A policy plus its node set.

    ``nodes`` is required for BIND/INTERLEAVE/PREFERRED and must be empty
    for LOCAL_PREFERRED (the faulting node decides).
    """

    policy: AllocPolicy = AllocPolicy.LOCAL_PREFERRED
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.policy is AllocPolicy.LOCAL_PREFERRED:
            if self.nodes:
                raise AllocationError("LOCAL_PREFERRED takes no node set")
        else:
            if not self.nodes:
                raise AllocationError(f"{self.policy.value} requires a node set")
            if self.policy is AllocPolicy.PREFERRED and len(self.nodes) != 1:
                raise AllocationError("PREFERRED takes exactly one node")
            if len(set(self.nodes)) != len(self.nodes):
                raise AllocationError("binding lists a node twice")

    @classmethod
    def local(cls) -> "MemBinding":
        """The kernel default."""
        return cls()

    @classmethod
    def bind(cls, *nodes: int) -> "MemBinding":
        """``numactl --membind=<nodes>``."""
        return cls(policy=AllocPolicy.BIND, nodes=tuple(nodes))

    @classmethod
    def interleave(cls, *nodes: int) -> "MemBinding":
        """``numactl --interleave=<nodes>``."""
        return cls(policy=AllocPolicy.INTERLEAVE, nodes=tuple(nodes))

    @classmethod
    def preferred(cls, node: int) -> "MemBinding":
        """``numactl --preferred=<node>``."""
        return cls(policy=AllocPolicy.PREFERRED, nodes=(node,))
