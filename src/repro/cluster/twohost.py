"""End-to-end transfers across two hosts.

Each stream's service is the minimum of three stages, each computed by
the machinery already validated on one host:

* the **sender-side** level — the write-direction engine profile against
  the sender host's NUMA placement (what Table IV models);
* the **receiver-side** level — the read-direction profile against the
  receiver host's placement (Table V);
* the **wire** — the Ethernet payload rate shared max-min by all
  streams.

With the far end optimally placed, the min() reduces to the one-sided
values the single-host engines were calibrated on, so the Figs. 5/6
sweeps are unchanged; with *both* ends mis-placed the composition shows
what the paper's one-sided sweeps cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.engines import StreamPlacement, device_service_levels
from repro.bench.results import JobResult
from repro.cluster.link import EthernetLink
from repro.errors import BenchmarkError
from repro.flows.flow import Flow
from repro.flows.network import FlowNetwork
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.topology.machine import Machine
from repro.units import GB

__all__ = ["NetJob", "TwoHostSystem"]

#: Engine name -> (sender-side profile, receiver-side profile).
_ENGINE_PROFILES = {
    "tcp": ("tcp_send", "tcp_recv"),
    "rdma": ("rdma_write", "rdma_read"),
}


@dataclass(frozen=True)
class NetJob:
    """A cross-host transfer job.

    ``sender_node`` / ``receiver_node`` of ``None`` mean "well tuned":
    the system picks the best placement on that side, reproducing the
    paper's protocol of varying one side at a time.
    """

    name: str
    engine: str = "tcp"
    numjobs: int = 4
    sender_node: int | None = None
    receiver_node: int | None = None
    size_bytes: float = 400 * GB

    def __post_init__(self) -> None:
        if self.engine not in _ENGINE_PROFILES:
            raise BenchmarkError(
                f"job {self.name!r}: unknown network engine {self.engine!r}; "
                f"choose from {sorted(_ENGINE_PROFILES)}"
            )
        if self.numjobs < 1:
            raise BenchmarkError(f"job {self.name!r}: numjobs must be >= 1")
        if self.size_bytes <= 0:
            raise BenchmarkError(f"job {self.name!r}: size must be positive")


class TwoHostSystem:
    """Two NIC-equipped hosts joined by one cable."""

    def __init__(
        self,
        sender: Machine,
        receiver: Machine,
        link: EthernetLink | None = None,
        registry: RngRegistry | None = None,
        nic_name: str = "nic",
    ) -> None:
        for role, machine in (("sender", sender), ("receiver", receiver)):
            if nic_name not in machine.devices:
                raise BenchmarkError(
                    f"{role} machine {machine.name!r} has no device {nic_name!r}"
                )
        self.sender = sender
        self.receiver = receiver
        self.link = link or EthernetLink()
        self.registry = registry or RngRegistry()
        self.nic_name = nic_name

    # --- placement helpers ----------------------------------------------
    def _levels(self, machine: Machine, profile_name: str, node: int,
                numjobs: int, direction: str) -> list[float]:
        nic = machine.devices[self.nic_name]
        profile = nic.engine(profile_name)
        placements = [
            StreamPlacement(cpu_node=node, mem_node=node) for _ in range(numjobs)
        ]
        return device_service_levels(machine, nic, profile, placements, direction)

    def best_node(self, machine: Machine, profile_name: str, direction: str) -> int:
        """The well-tuned placement on one side (single-stream level)."""
        def level(node: int) -> float:
            return self._levels(machine, profile_name, node, 1, direction)[0]

        return max(machine.node_ids, key=lambda n: (level(n), -n))

    # --- execution -----------------------------------------------------------
    def run(self, job: NetJob, run_idx: int = 0) -> JobResult:
        """Transfer ``job`` sender -> receiver and report fio-style results."""
        send_profile, recv_profile = _ENGINE_PROFILES[job.engine]
        sender_node = (
            job.sender_node
            if job.sender_node is not None
            else self.best_node(self.sender, send_profile, "write")
        )
        receiver_node = (
            job.receiver_node
            if job.receiver_node is not None
            else self.best_node(self.receiver, recv_profile, "read")
        )
        for machine, node, role in (
            (self.sender, sender_node, "sender"),
            (self.receiver, receiver_node, "receiver"),
        ):
            if node not in machine.node_ids:
                raise BenchmarkError(
                    f"job {job.name!r}: unknown {role} node {node}"
                )

        n = job.numjobs
        send_levels = self._levels(self.sender, send_profile, sender_node, n, "write")
        recv_levels = self._levels(self.receiver, recv_profile, receiver_node, n, "read")
        levels = [min(s, r) for s, r in zip(send_levels, recv_levels)]

        sender_nic = self.sender.devices[self.nic_name]
        profile = sender_nic.engine(send_profile)
        service = sender_nic.dma.per_stream_caps(levels)
        cpu_cap = float("inf")
        if profile.cpu_gbps_per_stream is not None:
            cores = self.sender.node(sender_node).n_cores
            cpu_cap = profile.cpu_gbps_per_stream * min(1.0, cores / n)
        per_cap = [
            min(s,
                profile.per_stream_cap_gbps or float("inf"),
                cpu_cap)
            for s in service
        ]

        noise = NoiseModel(
            self.registry.stream(f"twohost/{job.engine}/{job.name}/run{run_idx}")
        )
        sigma = profile.sigma if n < profile.crowd_threshold else profile.crowd_sigma
        stream_noise = noise.factors(sigma, n)

        wire = "wire"
        device = f"pipeline:{job.engine}"
        agg_cap = sum(levels) / len(levels)
        flows = [
            Flow(
                name=f"{job.name}/{i}",
                resources=(device, wire),
                demand_gbps=per_cap[i] * float(stream_noise[i]),
                size_bytes=float(job.size_bytes),
            )
            for i in range(n)
        ]
        network = FlowNetwork(
            {device: agg_cap * noise.factor(sigma), wire: self.link.payload_gbps}
        )
        outcomes = network.simulate(flows)
        aggregate = sum(o.avg_gbps for o in outcomes.values())
        return JobResult(
            job_name=job.name,
            engine=f"{job.engine}:twohost",
            streams=tuple((sender_node, receiver_node) for _ in range(n)),
            per_stream_gbps={name: o.avg_gbps for name, o in outcomes.items()},
            aggregate_gbps=aggregate,
            duration_s=max(o.finish_s for o in outcomes.values()),
            tags={
                "sender_node": sender_node,
                "receiver_node": receiver_node,
                "link": str(self.link),
            },
        )

    def sweep_sender(self, job: NetJob, nodes=None, run_idx: int = 0):
        """Fig. 5(a)/6(a) protocol: vary the sender, receiver well tuned."""
        nodes = tuple(nodes) if nodes is not None else self.sender.node_ids
        return {
            node: self.run(
                NetJob(name=f"{job.name}@s{node}", engine=job.engine,
                       numjobs=job.numjobs, sender_node=node,
                       receiver_node=job.receiver_node,
                       size_bytes=job.size_bytes),
                run_idx,
            )
            for node in nodes
        }

    def sweep_receiver(self, job: NetJob, nodes=None, run_idx: int = 0):
        """Fig. 5(b)/6(b) protocol: vary the receiver, sender well tuned."""
        nodes = tuple(nodes) if nodes is not None else self.receiver.node_ids
        return {
            node: self.run(
                NetJob(name=f"{job.name}@r{node}", engine=job.engine,
                       numjobs=job.numjobs, sender_node=job.sender_node,
                       receiver_node=node, size_bytes=job.size_bytes),
                run_idx,
            )
            for node in nodes
        }
