"""F6 — Fig. 6: RDMA_WRITE / RDMA_READ vs streams and NUMA binding."""


def test_fig6_rdma(run_paper_experiment):
    result = run_paper_experiment("f6")
    assert set(result.data) == {"write", "read"}
