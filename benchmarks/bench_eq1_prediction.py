"""EQ1 — the Eq. 1 worked example (predicted vs measured mixture)."""


def test_eq1_prediction(run_paper_experiment):
    result = run_paper_experiment("eq1")
    assert result.data["relative_error"] <= 0.06
