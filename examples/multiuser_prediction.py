#!/usr/bin/env python3
"""Multi-user aggregate prediction (Eq. 1) across many mixtures.

The paper validates Eq. 1 on one 50/50 RDMA_READ mixture.  A downstream
user wants to know how far the model can be pushed, so this example
sweeps:

* every 4-stream class mixture of RDMA_READ (the paper's case),
* TCP receive and SSD read mixtures (different protocols),
* 8-stream mixtures (more concurrency),

and prints a predicted-vs-measured table with relative errors.

Run:  python examples/multiuser_prediction.py
"""

import itertools

from repro import reference_host
from repro.bench import FioJob, FioRunner
from repro.core import IOModelBuilder, MixturePredictor

def sweep(runner, host, engine: str, rw: str) -> dict[int, float]:
    """Per-node single-class baselines for one operation."""
    job = FioJob(name=f"mu-{engine}-{rw}", engine=engine, rw=rw, numjobs=4)
    return {
        node: runner.run(job.with_node(node)).aggregate_gbps
        for node in host.node_ids
    }

def main() -> None:
    host = reference_host()
    runner = FioRunner(host)
    read_model = IOModelBuilder(host).build(7, "read")

    operations = {
        "rdma:read": sweep(runner, host, "rdma", "read"),
        "tcp:recv": sweep(runner, host, "tcp", "recv"),
        "libaio:read": sweep(runner, host, "libaio", "read"),
    }

    # One representative node per class, so mixtures span classes.
    reps = read_model.representative_nodes()
    print(f"class representatives: {reps}\n")

    header = f"{'operation':14s}{'streams':>22s}{'predicted':>11s}{'measured':>10s}{'error':>8s}"
    print(header)
    print("-" * len(header))

    worst = 0.0
    for op_name, values in operations.items():
        engine, rw = op_name.split(":")
        predictor = MixturePredictor(read_model, values)
        mixtures = [
            tuple(sorted(combo))
            for combo in itertools.combinations_with_replacement(reps, 4)
            if len(set(combo)) > 1  # true mixtures only
        ]
        # Add one 8-stream mixture for concurrency stress.
        mixtures.append(tuple(sorted(reps * 2)))
        for streams in mixtures:
            predicted = predictor.predict_streams(streams)
            measured = runner.run(
                FioJob(
                    name=f"mu-{op_name}-{'-'.join(map(str, streams))}",
                    engine=engine,
                    rw=rw,
                    numjobs=len(streams),
                    stream_nodes=streams,
                )
            ).aggregate_gbps
            error = abs(predicted - measured) / measured
            worst = max(worst, error)
            print(
                f"{op_name:14s}{str(streams):>22s}{predicted:>10.2f} "
                f"{measured:>9.2f} {100 * error:>6.1f}%"
            )
    print(f"\nworst relative error: {100 * worst:.1f} % "
          f"(paper's single data point: 3.1 %)")


if __name__ == "__main__":
    main()
