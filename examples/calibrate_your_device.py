#!/usr/bin/env python3
"""Calibrate your own device model from your own measurements.

The shipped profiles reproduce the paper's hardware.  A downstream user
with a different adapter closes the loop like this:

1. measure a per-node fio sweep against the real device (here: a
   simulated 'foreign' adapter the shipped calibration never saw);
2. fit a deficit response curve to (DMA path, measured bandwidth)
   pairs (`repro.devices.fit`);
3. wrap the fit in an `EngineProfile`, attach it to the machine model,
   and check that the *model's* predictions now match the device;
4. pin the numbers in a `RunLog` so any future drift — firmware,
   kernel, cables — shows up as a regression.

Run:  python examples/calibrate_your_device.py
"""

from repro.bench import FioJob, FioRunner
from repro.bench.runlog import RunLog
from repro.devices import EngineProfile, IrqModel, Nic, PcieLink, ResponseCurve
from repro.devices.fit import fit_engine_profile, fit_response_curve
from repro.devices.standard import attach_device
from repro.rng import DEFAULT_SEED, RngRegistry
from repro.topology.builders import reference_host

def foreign_adapter(node: int = 7) -> Nic:
    """The 'real hardware': a 56 Gbit adapter with an unknown curve."""
    return Nic(
        name="unknown-56g",
        node_id=node,
        pcie=PcieLink(gen=3, lanes=8),
        engines={
            "rdma_write": EngineProfile(
                name="rdma_write",
                curve=ResponseCurve(cap_gbps=50.0, path_ref_gbps=51.2,
                                    beta=0.05, gamma=1.8),
                per_stream_cap_gbps=48.0,
                sigma=0.004,
            ),
        },
        irq=IrqModel(irq_node=node),
    )

def main() -> None:
    # --- 1. measure the foreign device ------------------------------------
    machine = reference_host(with_devices=False)
    attach_device(machine, "nic", foreign_adapter())
    runner = FioRunner(machine, RngRegistry())
    sweep = {
        n: runner.run(
            FioJob(name=f"cal-{n}", engine="rdma", rw="write",
                   numjobs=4, cpunodebind=n)
        ).aggregate_gbps
        for n in machine.node_ids
    }
    print("measured RDMA_WRITE sweep:",
          {n: round(v, 1) for n, v in sweep.items()})

    # --- 2. fit the curve --------------------------------------------------
    paths = {n: machine.dma_path_gbps(n, 7) for n in machine.node_ids}
    fit = fit_response_curve(paths, sweep, path_ref_gbps=51.2)
    print(f"\nfitted curve: {fit.render()}")
    print("(ground truth: cap=50.00 beta=0.05 gamma=1.800)")

    # --- 3. a ready-to-attach profile & prediction check -------------------
    profile = fit_engine_profile(
        machine, 7, "write", sweep, name="rdma_write",
        path_ref_gbps=51.2, per_stream_cap_gbps=48.0, sigma=0.004,
    )
    print("\nprediction check (fitted model vs fresh measurements):")
    for node in (6, 0, 2):
        predicted = profile.curve.value(paths[node])
        measured = runner.run(
            FioJob(name=f"cal2-{node}", engine="rdma", rw="write",
                   numjobs=4, cpunodebind=node),
            run_idx=1,
        ).aggregate_gbps
        err = abs(predicted - measured) / measured
        print(f"  node {node}: predicted {predicted:5.1f}, fresh measurement "
              f"{measured:5.1f} ({100 * err:.1f} % off)")

    # --- 4. pin the numbers ------------------------------------------------
    log = RunLog("/tmp/repro-calibration.jsonl")
    for node, gbps in sweep.items():
        log.record(f"rdma:write/node{node}", gbps,
                   machine=machine.name, seed=DEFAULT_SEED)
    print(f"\n{len(sweep)} baseline records pinned in {log.path}; re-run the "
          f"sweep after any change and `RunLog.compare` flags drifts.")


if __name__ == "__main__":
    main()
