"""Measurement and OS noise.

Real benchmark numbers jitter run to run (scheduler noise, refresh
collisions, cache state); the paper handles it by reporting the max of
100 STREAM runs and averaging fio over 400-GB transfers.  We reproduce
the *protocol*, so the noise source must exist: a seeded multiplicative
lognormal model, with higher dispersion once a device is oversubscribed
(the paper's "unexpected behaviour" beyond 4 TCP streams).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.simtime import SimProcess, Simulator, Timeout

__all__ = ["NoiseModel", "OsNoiseDaemons"]


class NoiseModel:
    """Multiplicative lognormal measurement noise.

    Parameters
    ----------
    rng:
        A generator from :class:`repro.rng.RngRegistry` — callers hand in
        a named stream so every experiment is independently reproducible.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def factor(self, sigma: float) -> float:
        """One multiplicative noise draw, mean ~1."""
        if sigma < 0:
            raise SimulationError(f"noise sigma must be >= 0, got {sigma!r}")
        if sigma == 0:
            return 1.0
        # Mean-one lognormal: exp(N(-sigma^2/2, sigma)).
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    def factors(self, sigma: float, n: int) -> np.ndarray:
        """``n`` independent draws (vectorised for repeated-run protocols)."""
        if n <= 0:
            raise SimulationError(f"need a positive draw count, got {n!r}")
        if sigma < 0:
            raise SimulationError(f"noise sigma must be >= 0, got {sigma!r}")
        if sigma == 0:
            return np.ones(n)
        return np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma, size=n))


class OsNoiseDaemons:
    """Per-node periodic OS daemons, simulated on the event engine.

    The paper cites Akram et al. [14] on OS noise affecting NUMA
    application performance.  This model runs one daemon per node
    (kswapd / irqbalance-style): every ``period_s`` (jittered) it steals
    one core for ``busy_s`` (jittered).  Simulating the window with
    :class:`~repro.simtime.Simulator` yields per-node busy traces and an
    availability figure a benchmark layer can fold into its results.

    Parameters
    ----------
    machine:
        Host whose nodes get daemons.
    rng:
        Seeded generator (phases, period and burst jitter).
    period_s / busy_s:
        Mean daemon period and burst length.
    """

    def __init__(
        self,
        machine,
        rng: np.random.Generator,
        period_s: float = 1.0,
        busy_s: float = 0.02,
    ) -> None:
        if period_s <= 0 or busy_s <= 0:
            raise SimulationError("daemon period and burst must be positive")
        if busy_s >= period_s:
            raise SimulationError("daemon burst must be shorter than its period")
        self.machine = machine
        self._rng = rng
        self.period_s = period_s
        self.busy_s = busy_s

    def simulate(self, window_s: float) -> dict[int, list[tuple[float, float]]]:
        """Busy intervals per node over ``window_s`` seconds."""
        if window_s <= 0:
            raise SimulationError("window must be positive")
        sim = Simulator()
        busy: dict[int, list[tuple[float, float]]] = {
            n: [] for n in self.machine.node_ids
        }
        rng = self._rng

        def daemon(node: int, phase: float):
            yield Timeout(phase)
            while sim.now < window_s:
                start = sim.now
                burst = float(rng.uniform(0.5, 1.5)) * self.busy_s
                yield Timeout(burst)
                busy[node].append((start, min(sim.now, window_s)))
                gap = float(rng.uniform(0.8, 1.2)) * self.period_s - burst
                yield Timeout(max(gap, 0.0))

        for node in self.machine.node_ids:
            phase = float(rng.uniform(0.0, self.period_s))
            SimProcess(sim, daemon(node, phase))
        sim.run(until=window_s)
        return busy

    def availability(self, window_s: float = 60.0) -> dict[int, float]:
        """Fraction of each node's CPU time left to applications."""
        traces = self.simulate(window_s)
        out = {}
        for node, intervals in traces.items():
            stolen = sum(end - start for start, end in intervals)
            cores = self.machine.node(node).n_cores
            out[node] = 1.0 - stolen / (window_s * cores)
        return out
