"""Shared node-sweep helpers for the table experiments."""

from __future__ import annotations

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.topology.machine import Machine

__all__ = ["operation_sweep", "WRITE_OPERATIONS", "READ_OPERATIONS"]

#: Table IV measured operations: label -> (engine, rw, numjobs).
WRITE_OPERATIONS = {
    "TCP sender": ("tcp", "send", 4),
    "RDMA_WRITE": ("rdma", "write", 4),
    "SSD write": ("libaio", "write", 4),
}

#: Table V measured operations.
READ_OPERATIONS = {
    "TCP receiver": ("tcp", "recv", 4),
    "RDMA_READ": ("rdma", "read", 4),
    "SSD read": ("libaio", "read", 4),
}


def operation_sweep(
    runner: FioRunner,
    engine: str,
    rw: str,
    numjobs: int = 4,
    nodes=None,
    name: str | None = None,
) -> dict[int, float]:
    """Per-node aggregate bandwidth for one operation (Figs. 5-7 slices)."""
    machine: Machine = runner.machine
    nodes = tuple(nodes) if nodes is not None else machine.node_ids
    job = FioJob(
        name=name or f"sweep-{engine}-{rw}", engine=engine, rw=rw, numjobs=numjobs
    )
    results = runner.sweep_nodes(job, nodes)
    return {node: res.aggregate_gbps for node, res in results.items()}
