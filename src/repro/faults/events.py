"""The fault taxonomy: what can go wrong on (and around) a NUMA host.

Every fault is a small frozen dataclass with two faces:

* **runtime** — :meth:`~Fault.capacity_factors` maps flow-solver
  resource names to multiplicative derating factors in ``[0, 1]``
  (``0.0`` is an outright failure).  The degraded-mode simulator
  multiplies the healthy capacity map by the active factors at each
  time slice, so a faulted capacity can never exceed its healthy value;
* **static** — topology faults additionally implement
  :meth:`~Fault.mutate_description`, rewriting the canonical machine
  description dict.  :class:`~repro.faults.plan.FaultedMachine` rebuilds
  a machine from the mutated description, so the faulted host has a new
  fingerprint and :class:`~repro.solver.session.SolverSession` naturally
  rebuilds capacities and routes for it.

Resource-level faults (NIC port flap, SSD wear throttling) have no
topology footprint; calling :meth:`mutate_description` on them raises
:class:`~repro.errors.FaultError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import FaultError
from repro.solver.capacity import link_resource
from repro.units import ht_raw_gbps

__all__ = [
    "Fault",
    "FaultEvent",
    "LinkDegrade",
    "LinkFail",
    "MemoryThrottle",
    "IrqStorm",
    "NicPortFlap",
    "SsdWearThrottle",
]


def _check_factor(factor: float, what: str) -> None:
    if not 0.0 < factor <= 1.0:
        raise FaultError(f"{what} factor must be in (0, 1], got {factor!r}")


@dataclass(frozen=True)
class Fault:
    """Base class of every injectable fault."""

    #: Short taxonomy tag; stable across releases (reports key on it).
    kind = "fault"

    #: Whether the fault rewrites the machine description
    #: (:meth:`mutate_description` works) or only derates capacities.
    topological = False

    def capacity_factors(self) -> dict[str, float]:
        """Resource name -> multiplicative derating factor in ``[0, 1]``."""
        raise NotImplementedError

    def mutate_description(self, data: dict[str, Any]) -> None:
        """Rewrite a :func:`~repro.topology.serialize.machine_to_dict` dict."""
        raise FaultError(
            f"{self.kind} is not a topology fault; it can only be applied "
            "dynamically through a FaultPlan's capacity factors"
        )

    def describe(self) -> str:
        """Compact, deterministic tag used in names and reports."""
        raise NotImplementedError


def _find_link(data: dict[str, Any], src: int, dst: int) -> dict[str, Any]:
    for entry in data["links"]:
        if entry["src"] == src and entry["dst"] == dst:
            return entry
    raise FaultError(
        f"machine {data.get('name')!r} has no link {src}->{dst} to fault"
    )


@dataclass(frozen=True)
class LinkDegrade(Fault):
    """One direction of a fabric link loses DMA credits / PIO headroom.

    Models buffer-credit starvation and link retraining to a degraded
    width: the ``src -> dst`` direction keeps ``factor`` of its healthy
    bulk capacity (and of its streaming PIO cap).
    """

    src: int
    dst: int
    factor: float

    kind = "link-degrade"
    topological = True

    def __post_init__(self) -> None:
        _check_factor(self.factor, "link degradation")
        if self.src == self.dst:
            raise FaultError(f"link endpoints must differ, got {self.src}")

    def capacity_factors(self) -> dict[str, float]:
        return {link_resource(self.src, self.dst): self.factor}

    def mutate_description(self, data: dict[str, Any]) -> None:
        entry = _find_link(data, self.src, self.dst)
        entry["dma_credit"] = entry["dma_credit"] * self.factor
        # The PIO plane loses the same headroom; resolve the derived
        # default (60 % of raw) first so the derating is explicit.
        if entry["pio_cap_gbps"] is None:
            entry["pio_cap_gbps"] = 0.6 * ht_raw_gbps(
                entry["width_bits"], entry["gts"]
            )
        entry["pio_cap_gbps"] = entry["pio_cap_gbps"] * self.factor

    def describe(self) -> str:
        return f"degrade:{self.src}>{self.dst}x{self.factor:g}"


@dataclass(frozen=True)
class LinkFail(Fault):
    """A physical cable fails: both directions of ``a <-> b`` go dark.

    Unlike :func:`repro.topology.modify.with_link_removed` this does
    *not* refuse to disconnect the fabric — isolating a node is exactly
    the scenario the chaos harness studies.
    """

    a: int
    b: int

    kind = "link-fail"
    topological = True

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise FaultError(f"link endpoints must differ, got {self.a}")

    def capacity_factors(self) -> dict[str, float]:
        return {
            link_resource(self.a, self.b): 0.0,
            link_resource(self.b, self.a): 0.0,
        }

    def mutate_description(self, data: dict[str, Any]) -> None:
        # Idempotent: failing an already-failed (or never-present) cable
        # between two real nodes is a no-op, so composed fault sets with
        # overlapping failures apply cleanly.
        known = {entry["node_id"] for entry in data["nodes"]}
        for node in (self.a, self.b):
            if node not in known:
                raise FaultError(
                    f"machine {data.get('name')!r} has no node {node} to "
                    "disconnect"
                )
        data["links"] = [
            entry
            for entry in data["links"]
            if {entry["src"], entry["dst"]} != {self.a, self.b}
        ]

    def describe(self) -> str:
        lo, hi = sorted((self.a, self.b))
        return f"fail:{lo}<>{hi}"


@dataclass(frozen=True)
class MemoryThrottle(Fault):
    """A node's memory controller throttles (thermal / refresh storms).

    Both the DMA and the reported-PIO controller rates keep ``factor``
    of their healthy value.
    """

    node: int
    factor: float

    kind = "memory-throttle"
    topological = True

    def __post_init__(self) -> None:
        _check_factor(self.factor, "memory throttle")

    def capacity_factors(self) -> dict[str, float]:
        return {
            f"ctrl-dma:{self.node}": self.factor,
            f"ctrl-pio:{self.node}": self.factor,
        }

    def mutate_description(self, data: dict[str, Any]) -> None:
        for entry in data["nodes"]:
            if entry["node_id"] == self.node:
                entry["dram_gbps"] = entry["dram_gbps"] * self.factor
                entry["pio_ctrl_gbps"] = entry["pio_ctrl_gbps"] * self.factor
                return
        raise FaultError(
            f"machine {data.get('name')!r} has no node {self.node} to throttle"
        )

    def describe(self) -> str:
        return f"memthrottle:{self.node}x{self.factor:g}"


@dataclass(frozen=True)
class IrqStorm(Fault):
    """An interrupt storm pins the node's cores in handler context.

    Coherent (PIO) accesses from the node are starved while DMA engines
    keep running — so only the reported-PIO controller rate is derated.
    """

    node: int
    factor: float

    kind = "irq-storm"
    topological = True

    def __post_init__(self) -> None:
        _check_factor(self.factor, "IRQ storm")

    def capacity_factors(self) -> dict[str, float]:
        return {f"ctrl-pio:{self.node}": self.factor}

    def mutate_description(self, data: dict[str, Any]) -> None:
        for entry in data["nodes"]:
            if entry["node_id"] == self.node:
                entry["pio_ctrl_gbps"] = entry["pio_ctrl_gbps"] * self.factor
                return
        raise FaultError(
            f"machine {data.get('name')!r} has no node {self.node} for an IRQ storm"
        )

    def describe(self) -> str:
        return f"irqstorm:{self.node}x{self.factor:g}"


@dataclass(frozen=True)
class NicPortFlap(Fault):
    """A NIC port drops link.

    With ``host`` set, the fault zeroes the cluster-level resources of
    that host (its NIC tx/rx aggregates and switch uplink, the names
    :class:`~repro.cluster.fabric.SwitchedCluster` assembles); without a
    host it zeroes the single-machine device resources
    ``dev:<device>:write`` / ``dev:<device>:read``.  Pair with a
    :class:`~repro.faults.plan.FaultEvent` recovery window to model the
    port retraining and coming back.
    """

    host: str | None = None
    device: str = "nic"

    kind = "nic-flap"

    def capacity_factors(self) -> dict[str, float]:
        if self.host is not None:
            return {
                f"nic-tx:{self.host}": 0.0,
                f"nic-rx:{self.host}": 0.0,
                f"uplink-tx:{self.host}": 0.0,
                f"uplink-rx:{self.host}": 0.0,
            }
        return {
            f"dev:{self.device}:write": 0.0,
            f"dev:{self.device}:read": 0.0,
        }

    def describe(self) -> str:
        where = self.host if self.host is not None else self.device
        return f"nicflap:{where}"


@dataclass(frozen=True)
class SsdWearThrottle(Fault):
    """An SSD hits its wear-leveling write cliff and throttles.

    Derates the device resources ``dev:<device>:write`` (by ``factor``)
    and ``dev:<device>:read`` (by the milder ``read_factor``).
    """

    factor: float
    read_factor: float = 1.0
    device: str = "ssd"

    kind = "ssd-wear"

    def __post_init__(self) -> None:
        _check_factor(self.factor, "SSD wear")
        _check_factor(self.read_factor, "SSD wear read")

    def capacity_factors(self) -> dict[str, float]:
        return {
            f"dev:{self.device}:write": self.factor,
            f"dev:{self.device}:read": self.read_factor,
        }

    def describe(self) -> str:
        return f"ssdwear:{self.device}x{self.factor:g}"


@dataclass(frozen=True)
class FaultEvent:
    """One fault with its activation window on the simulation clock.

    Active over ``[at_s, until_s)``; ``until_s=None`` means the fault is
    permanent (never recovers).
    """

    fault: Fault
    at_s: float = 0.0
    until_s: float | None = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultError(f"fault cannot start before t=0 (at_s={self.at_s!r})")
        if self.until_s is not None and self.until_s <= self.at_s:
            raise FaultError(
                f"fault recovery must follow activation "
                f"(at_s={self.at_s!r}, until_s={self.until_s!r})"
            )

    def active_at(self, t: float) -> bool:
        """Whether the fault is live at simulated time ``t``."""
        return self.at_s <= t and (self.until_s is None or t < self.until_s)

    def describe(self) -> str:
        """Deterministic one-line tag including the window."""
        window = (
            f"@{self.at_s:g}s" if self.until_s is None
            else f"@[{self.at_s:g},{self.until_s:g})s"
        )
        return f"{self.fault.describe()}{window}"
