#!/usr/bin/env python3
"""Bring your own machine: describe a host, attach a device, model it.

The downstream-user scenario: you operate a 2-socket EPYC-style box with
a 100 Gbit NIC on socket 1 and want a placement model for it.  This
example builds that machine from parts (nodes, packages, directed links
with one deliberately weak direction), attaches a NIC with a custom
response curve, runs Algorithm 1, and asks the advisor where to put
eight I/O workers.

Run:  python examples/custom_machine.py
"""

from repro.bench import FioJob, FioRunner
from repro.core import HostCharacterizer, PlacementAdvisor
from repro.devices import EngineProfile, IrqModel, Nic, PcieLink, ResponseCurve
from repro.devices.standard import attach_device
from repro.interconnect import LinkKind, link_pair
from repro.topology import Core, Machine, MachineParams, NumaNode, Package
from repro.units import GiB, NS

def build_machine() -> Machine:
    """A 2-socket, 4-node machine with one weak response direction."""
    nodes = [
        NumaNode(
            node_id=nid,
            package_id=nid // 2,
            cores=tuple(Core(core_id=8 * nid + c, node_id=nid) for c in range(8)),
            memory_bytes=16 * GiB,
            dram_gbps=120.0,
            pio_ctrl_gbps=70.0,
            os_resident_bytes=(3 * GiB if nid == 0 else GiB // 4),
        )
        for nid in range(4)
    ]
    packages = [Package(package_id=p, node_ids=(2 * p, 2 * p + 1)) for p in range(2)]
    links = []
    # On-package die links.
    for a in (0, 2):
        links += link_pair(a, a + 1, 16, 6.4, LinkKind.SRI, pio_latency_s=6 * NS)
    # Cross-socket: a healthy pair and one with a starved 3->0 response
    # direction (the kind of asymmetry the paper teaches you to look for).
    links += link_pair(0, 3, 16, 6.4, dma_credit=0.9, dma_credit_rev=0.45,
                       pio_latency_s=18 * NS)
    links += link_pair(1, 2, 16, 6.4, dma_credit=0.9, pio_latency_s=18 * NS)
    params = MachineParams(
        local_latency_s=90 * NS,
        pio_core_gbps_ns=900.0,
        description="custom 2-socket EPYC-style host",
    )
    return Machine("custom-2s4n", nodes, packages, links, params)

def attach_nic(machine: Machine, node_id: int = 3) -> None:
    """A 100 Gbit adapter on PCIe Gen3 x16 behind node 3."""
    curve_kwargs = dict(beta=0.004, gamma=2.0)
    nic = Nic(
        name="cx6",
        node_id=node_id,
        pcie=PcieLink(gen=3, lanes=16),
        engines={
            "rdma_write": EngineProfile(
                name="rdma_write",
                curve=ResponseCurve(cap_gbps=97.0, path_ref_gbps=100.0,
                                    **curve_kwargs),
                per_stream_cap_gbps=95.0,
                sigma=0.003,
            ),
            "rdma_read": EngineProfile(
                name="rdma_read",
                curve=ResponseCurve(cap_gbps=95.0, path_ref_gbps=100.0,
                                    **curve_kwargs),
                per_stream_cap_gbps=93.0,
                sigma=0.003,
            ),
        },
        irq=IrqModel(irq_node=node_id),
    )
    attach_device(machine, "nic", nic)

def main() -> None:
    machine = build_machine()
    attach_nic(machine)
    print(f"built {machine}\n")

    characterization = HostCharacterizer(machine).characterize(3)
    print(characterization.render())

    runner = FioRunner(machine)
    rdma_read = {
        node: runner.run(
            FioJob(name=f"cm-{node}", engine="rdma", rw="read",
                   numjobs=4, cpunodebind=node)
        ).aggregate_gbps
        for node in machine.node_ids
    }
    print("\nmeasured RDMA_READ per node:",
          {n: round(v, 1) for n, v in rdma_read.items()})

    advisor = PlacementAdvisor(machine, characterization.read_model,
                               rdma_read, tolerance=0.05)
    plan = advisor.advise(8)
    print(f"\nadvisor plan for 8 readers: {plan.render()}")
    print(
        "note: node 0 lands in a lower read class — its 3->0 response "
        "direction is credit-starved, exactly like the reference host's "
        "node 4."
    )


if __name__ == "__main__":
    main()
