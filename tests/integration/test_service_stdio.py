"""Client + server in-process over the stdio transport, and the serve CLI."""

import io
import json

import pytest

from repro.cli.main import main
from repro.rng import RngRegistry
from repro.service import (
    AdvisoryBackend,
    PlacementService,
    serve_stdio,
)


def request(req_id, method, params=None):
    msg = {"jsonrpc": "2.0", "id": req_id, "method": method}
    if params is not None:
        msg["params"] = params
    return json.dumps(msg)


class StdioClient:
    """Drive a PlacementService exactly like a subprocess would."""

    def __init__(self, service):
        self.service = service

    def call(self, *lines):
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        answered = serve_stdio(self.service, stdin=stdin, stdout=stdout)
        replies = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert answered == len(replies)
        return replies


@pytest.fixture(scope="module")
def client(host):
    backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
    service = PlacementService(backend)
    backend.warm((7,))
    return StdioClient(service)


class TestStdioSession:
    def test_full_session_one_reply_per_line(self, client):
        replies = client.call(
            request(1, "ready"),
            request(2, "classify", {"target": 7}),
            request(3, "advise", {"target": 7, "tasks": 4,
                                  "avoid_irq_node": True}),
            request(4, "predict_eq1", {"target": 7, "streams": [0, 1, 6]}),
            request(5, "plan", {"write_weight": 0.6}),
            request(6, "health"),
        )
        assert [r["id"] for r in replies] == [1, 2, 3, 4, 5, 6]
        assert all("result" in r for r in replies)
        assert replies[2]["result"]["stream_nodes"]
        assert replies[5]["result"]["requests"] == 6

    def test_errors_are_inline_not_fatal(self, client):
        replies = client.call(
            request(1, "advise", {"target": 7, "tasks": 4}),
            "this is not json",
            request(3, "advise", {"target": 999, "tasks": 1}),
            request(4, "nope"),
            request(5, "health"),
        )
        assert len(replies) == 5
        kinds = [r["error"]["kind"] for r in replies if "error" in r]
        assert kinds == ["parse_error", "invalid_params", "method_not_found"]
        assert "result" in replies[-1]

    def test_responses_identical_across_sessions(self, host):
        from repro.service.soak import LogicalClock

        def session():
            backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
            # Staleness tags tick on the service clock; a logical clock
            # makes the stream a pure function of the requests.
            service = PlacementService(backend, clock=LogicalClock())
            backend.warm((7,))
            return StdioClient(service).call(
                request(1, "classify", {"target": 7, "mode": "read"}),
                request(2, "advise", {"target": 7, "tasks": 8}),
            )

        assert session() == session()

    def test_blank_lines_are_skipped(self, client):
        stdin = io.StringIO("\n\n" + request(1, "ready") + "\n\n")
        stdout = io.StringIO()
        assert serve_stdio(client.service, stdin=stdin, stdout=stdout) == 1


class TestServeCli:
    def test_stdio_cli_round_trip(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(request(1, "health") + "\n")
        )
        rc = main(["serve", "--stdio", "--runs", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out.splitlines()[-1])
        assert payload["result"]["status"] == "ok"

    def test_soak_cli_exits_zero_on_recovery(self, capsys):
        rc = main(["serve", "--soak", "--requests", "60", "--runs", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovered=true" in out

    def test_soak_cli_json(self, capsys):
        rc = main(["serve", "--soak", "--requests", "60", "--runs", "3",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["answered"] == payload["requests"] == 60

    def test_machine_file_round_trip(self, tmp_path, monkeypatch, capsys, host):
        from repro.topology.serialize import machine_to_dict

        path = tmp_path / "machine.json"
        path.write_text(json.dumps(machine_to_dict(host)), encoding="utf-8")
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(request(1, "ready") + "\n")
        )
        rc = main(["serve", "--stdio", "--runs", "3",
                   "--machine-file", str(path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert payload["result"]["ready"] is True

    def test_malformed_machine_file_renders_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        description = {
            "format_version": 1, "name": "x",
            "params": {}, "nodes": [{"node_id": "zero"}],
            "packages": [], "links": [],
        }
        path.write_text(json.dumps(description), encoding="utf-8")
        rc = main(["serve", "--stdio", "--machine-file", str(path)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_unreadable_machine_file_renders_cleanly(self, tmp_path, capsys):
        rc = main(["serve", "--stdio",
                   "--machine-file", str(tmp_path / "missing.json")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error: ")
        assert "missing.json" in err
