"""Text rendering of the paper's tables and figure series.

Every artifact the benchmark harness regenerates has a renderer here, so
``repro-numa experiment <id>`` and the pytest benches print directly
comparable output, and EXPERIMENTS.md is produced from one code path.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.numa_factor import Table1Row
from repro.bench.jobfile import NETWORK_TEST_DEFAULTS
from repro.topology.machine import Machine
from repro.units import GB, KiB

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_series",
    "render_node_sweep",
]


def render_table1(rows: list[Table1Row]) -> str:
    """Table I: NUMA factor of different server configurations."""
    lines = ["TABLE I — NUMA factor of different server configurations"]
    lines.append(f"{'Server type':32s}{'measured':>10s}{'paper':>8s}{'err':>7s}")
    for row in rows:
        lines.append(
            f"{row.label:32s}{row.measured:>10.2f}{row.paper:>8.1f}"
            f"{100 * row.relative_error:>6.1f}%"
        )
    return "\n".join(lines)


def render_table2(machine: Machine) -> str:
    """Table II: configuration of the server under test."""
    nic = machine.devices.get("nic")
    ssd = machine.devices.get("ssd")
    rows = [
        ("Machine model", machine.params.description or machine.name),
        ("CPU cores/NUMA nodes", f"{machine.n_cores}/{machine.n_nodes}"),
        ("Memory", f"{sum(machine.node(n).memory_bytes for n in machine.node_ids) // 2**30} GiB"),
        ("Last level cache (LLC)", f"{machine.params.llc_bytes // 10**6} MB per die"),
    ]
    if nic is not None:
        rows.append(("Network interface", str(nic)))
    if ssd is not None:
        rows.append(("SSD drives", str(ssd)))
    lines = ["TABLE II — configuration of the server"]
    lines += [f"  {label:28s} {value}" for label, value in rows]
    return "\n".join(lines)


def render_table3() -> str:
    """Table III: parameters for network I/O tests."""
    d = NETWORK_TEST_DEFAULTS
    lines = ["TABLE III — parameters for network I/O tests (TCP and RDMA)"]
    lines.append(f"  Data size per test process    {d['size_bytes'] // GB} GB")
    lines.append(f"  TCP variant                   {d['tcp_variant']}")
    lines.append(f"  IO block size                 {d['blocksize'] // KiB} KiB")
    lines.append(f"  Ethernet frame size           {d['frame_bytes']}")
    return "\n".join(lines)


def render_series(
    title: str, series: Mapping[int, Mapping[int, float]], x_label: str = "streams"
) -> str:
    """A Fig. 5/6/7-style family of curves: node -> x -> Gbps."""
    xs = sorted({x for curve in series.values() for x in curve})
    width = 10
    lines = [title]
    lines.append("node".ljust(8) + "".join(f"{x_label}={x}".rjust(width) for x in xs))
    for node in sorted(series):
        cells = "".join(
            (f"{series[node][x]:.2f}" if x in series[node] else "-").rjust(width)
            for x in xs
        )
        lines.append(f"{node}".ljust(8) + cells)
    return "\n".join(lines)


def render_node_sweep(title: str, values: Mapping[int, float]) -> str:
    """A single per-node bandwidth sweep (Fig. 4/10 panels)."""
    lines = [title]
    for node in sorted(values):
        bar = "#" * int(round(values[node]))
        lines.append(f"  node {node}: {values[node]:6.2f} Gbps {bar}")
    return "\n".join(lines)
