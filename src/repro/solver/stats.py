"""Solver-layer counters — re-exported from the telemetry package.

:class:`~repro.obs.stats.SolverStats` moved to :mod:`repro.obs` when
the unified telemetry layer subsumed it (its phases now emit obs spans,
and run manifests fold its counters into the metrics registry).  This
module remains the import path the solver layer's callers use.
"""

from __future__ import annotations

from repro.obs.stats import SolverStats

__all__ = ["SolverStats"]
