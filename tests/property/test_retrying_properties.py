"""The shared RetryPolicy: bit-identical draws, bounds, re-export compat."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError
from repro.retrying import RetryPolicy
from repro.rng import RngRegistry

POLICIES = st.builds(
    RetryPolicy,
    max_retries=st.integers(0, 8),
    base_delay_s=st.floats(1e-3, 10.0, allow_nan=False),
    multiplier=st.floats(1.0, 4.0, allow_nan=False),
    jitter=st.floats(0.0, 0.999, allow_nan=False),
)


def reference_delay(policy, attempt, u):
    """The pre-extraction formula, written out against a raw uniform draw."""
    delay = policy.base_delay_s * policy.multiplier**attempt
    if policy.jitter > 0.0:
        delay *= 1.0 + policy.jitter * float(2.0 * u - 1.0)
    return delay


class TestBitIdentity:
    @given(policy=POLICIES, seed=st.integers(0, 2**32 - 1),
           n=st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_delay_sequence_matches_reference_formula(self, policy, seed, n):
        """One rng.random() per delay, exactly the historical draw order."""
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        for attempt in range(n):
            got = policy.delay_s(attempt, rng_a)
            want = reference_delay(
                policy, attempt,
                rng_b.random() if policy.jitter > 0.0 else 0.5,
            )
            assert got == want  # bit-identical, not approx

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_registry_stream_twins_are_identical(self, seed, n):
        policy = RetryPolicy()

        def sequence():
            rng = RngRegistry(seed).stream("retry/backoff")
            return [policy.delay_s(k, rng) for k in range(n)]

        assert sequence() == sequence()

    def test_golden_default_sequence(self):
        """Pin the default policy's draws under the library seed.

        This is the exact sequence the pre-extraction
        repro.faults.degraded implementation produced; it must never
        drift, or seeded chaos reports change under users' feet.
        """
        rng = RngRegistry().stream("chaos/backoff")
        got = [RetryPolicy().delay_s(k, rng) for k in range(4)]
        assert got == [
            0.30437106920419593,
            0.5710075569119227,
            1.2016122323205567,
            1.5865330840347447,
        ]


class TestContract:
    @given(policy=POLICIES, attempt=st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_jitter_bounds(self, policy, attempt):
        rng = np.random.default_rng(0)
        base = policy.base_delay_s * policy.multiplier**attempt
        delay = policy.delay_s(attempt, rng)
        assert base * (1 - policy.jitter) <= delay <= base * (1 + policy.jitter)
        assert delay > 0

    @given(policy=POLICIES, attempt=st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_no_rng_means_no_jitter(self, policy, attempt):
        assert policy.delay_s(attempt, None) == (
            policy.base_delay_s * policy.multiplier**attempt
        )

    def test_invalid_policies_rejected(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(FaultError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.0)

    def test_degraded_module_still_reexports(self):
        from repro.faults.degraded import RetryPolicy as Reexported

        assert Reexported is RetryPolicy
