"""Port-budget audit."""

import pytest

from repro.errors import TopologyError
from repro.topology.audit import port_budget_report, render_port_budget
from repro.topology.builders import magny_cours_4p, parametric_machine


class TestPortReport:
    def test_reference_host_exceeds_honestly(self, host):
        """The calibrated host trades port realism for bandwidth
        fidelity; the audit must say so instead of hiding it."""
        rows = {r.node_id: r for r in port_budget_report(host)}
        assert rows[7].over_budget  # SRI + 0 + 2 + 4 + I/O hub
        text = render_port_budget(host)
        assert "OVER BUDGET" in text
        assert "calibrated" in text

    def test_device_counts_one_hub_port(self, host, bare_host):
        with_io = {r.node_id: r for r in port_budget_report(host)}
        without = {r.node_id: r for r in port_budget_report(bare_host)}
        # NIC and SSD share node 7's single hub port.
        assert with_io[7].io_ports == 1
        assert without[7].io_ports == 0
        assert with_io[7].fabric_ports == without[7].fabric_ports

    def test_parametric_ring_is_plausible(self):
        machine = parametric_machine(4, nodes_per_package=2)
        assert all(not r.over_budget for r in port_budget_report(machine))
        assert "physically plausible" in render_port_budget(machine)

    def test_variant_machines_within_budget(self):
        for v in "bd":
            machine = magny_cours_4p(v)
            rows = port_budget_report(machine)
            assert all(r.total <= 4 for r in rows), v

    def test_invalid_budget(self, host):
        with pytest.raises(TopologyError):
            port_budget_report(host, budget=0)
