"""Concurrent multi-device runner and traffic counters."""

import pytest

from repro.bench.concurrent import ConcurrentRunner
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.errors import BenchmarkError
from repro.rng import RngRegistry


@pytest.fixture()
def runner(host):
    return ConcurrentRunner(host, RngRegistry())


def _nic_job(node, name="nic"):
    return FioJob(name=name, engine="rdma", rw="write", numjobs=4,
                  cpunodebind=node)


def _ssd_job(node, name="ssd"):
    return FioJob(name=name, engine="libaio", rw="write", numjobs=4,
                  cpunodebind=node)


class TestSingleJobConsistency:
    def test_matches_fio_runner_when_alone(self, host, runner):
        """One job through the concurrent runner ~= the fio engine."""
        solo = FioRunner(host, RngRegistry())
        for job in (_nic_job(5), _ssd_job(0)):
            alone = solo.run(job).aggregate_gbps
            concurrent = runner.run([job]).per_job[job.name].aggregate_gbps
            assert concurrent == pytest.approx(alone, rel=0.05)


class TestContention:
    def test_shared_narrow_link_binds(self, runner, host):
        """NIC + SSD writes from node 2 share the starved 2->7 direction."""
        result = runner.run([_nic_job(2), _ssd_job(2)])
        link_cap = host.link(2, 7).dma_gbps
        assert result.total_gbps <= link_cap * 1.02
        assert result.counters.utilization("link-dma:2>7") > 0.98

    def test_disjoint_paths_do_not_contend(self, runner):
        result = runner.run([_nic_job(0), _ssd_job(4)])
        solo_sum = 23.2 + 28.5  # calibrated class-2 values
        assert result.total_gbps == pytest.approx(solo_sum, rel=0.05)

    def test_fair_sharing_on_the_bottleneck(self, runner):
        result = runner.run([_nic_job(2), _ssd_job(2)])
        nic = result.per_job["nic"].aggregate_gbps
        ssd = result.per_job["ssd"].aggregate_gbps
        assert nic == pytest.approx(ssd, rel=0.1)

    def test_contention_strictly_worse_than_solo(self, host, runner):
        solo = FioRunner(host, RngRegistry())
        alone = solo.run(_nic_job(2)).aggregate_gbps
        shared = runner.run([_nic_job(2), _ssd_job(2)]).per_job["nic"].aggregate_gbps
        assert shared < alone


class TestCounters:
    def test_window_and_bytes(self, runner):
        result = runner.run([_nic_job(0)])
        counters = result.counters
        assert counters.window_s > 0
        assert counters.bytes_by_resource["link-dma:0>7"] == pytest.approx(
            4 * 400e9, rel=0.01
        )

    def test_utilization_bounded(self, runner):
        result = runner.run([_nic_job(2), _ssd_job(2)])
        for resource, util in result.counters.hottest(10):
            assert 0 < util <= 1.001, resource

    def test_render(self, runner):
        text = runner.run([_nic_job(2)]).render()
        assert "traffic counters" in text
        assert "link-dma:2>7" in text

    def test_unknown_resource_rejected(self, runner):
        counters = runner.run([_nic_job(0)]).counters
        with pytest.raises(BenchmarkError):
            counters.utilization("link-dma:9>9")


class TestValidation:
    def test_empty_jobs_rejected(self, runner):
        with pytest.raises(BenchmarkError):
            runner.run([])

    def test_duplicate_names_rejected(self, runner):
        with pytest.raises(BenchmarkError):
            runner.run([_nic_job(0), _nic_job(1)])

    def test_memcpy_jobs_rejected(self, runner):
        job = FioJob(name="m", engine="memcpy", rw="write", numjobs=4,
                     cpunodebind=0, target_node=7)
        with pytest.raises(BenchmarkError):
            runner.run([job])

    def test_missing_device_rejected(self, registry):
        from repro.topology.builders import reference_host

        bare = reference_host(with_devices=False)
        runner = ConcurrentRunner(bare, registry)
        with pytest.raises(BenchmarkError):
            runner.run([_nic_job(0)])

    def test_deterministic(self, host):
        jobs = [_nic_job(2), _ssd_job(0)]
        a = ConcurrentRunner(host, RngRegistry()).run(jobs).total_gbps
        b = ConcurrentRunner(host, RngRegistry()).run(jobs).total_gbps
        assert a == b
