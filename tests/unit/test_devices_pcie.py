"""PCIe link model."""

import pytest

from repro.devices.pcie import PcieLink
from repro.errors import DeviceError


class TestPcieLink:
    def test_paper_nic_attachment(self):
        link = PcieLink(gen=2, lanes=8)
        assert link.raw_gbps == pytest.approx(40.0)
        assert link.data_gbps == pytest.approx(32.0)

    def test_gen3_encoding(self):
        link = PcieLink(gen=3, lanes=4)
        assert link.data_gbps == pytest.approx(4 * 8.0 * 128 / 130)

    def test_str_mentions_gen_and_lanes(self):
        assert "Gen2 x8" in str(PcieLink(gen=2, lanes=8))

    def test_invalid_lanes_rejected(self):
        with pytest.raises(DeviceError):
            PcieLink(gen=2, lanes=5)

    def test_invalid_gen_rejected(self):
        with pytest.raises(DeviceError):
            PcieLink(gen=7, lanes=8)
