#!/usr/bin/env python3
"""Class-aware task placement (the paper's §V-B scheduling application).

Compares three policies for placing N concurrent RDMA_WRITE tasks:

* **all-local** — everything pinned to the device node (the naive
  locality-maximising choice the paper argues against);
* **advisor** — spread across the performance-equivalent classes found
  by the memcpy model;
* **advisor, IRQ-aware** — same, but keeping off the interrupt-handling
  node when alternatives exist.

Run:  python examples/scheduler_placement.py
"""

from repro import reference_host
from repro.bench import FioJob, FioRunner
from repro.core import IOModelBuilder, PlacementAdvisor

def measure(runner, tag: str, engine: str, rw: str, stream_nodes) -> float:
    """Aggregate bandwidth of one placement."""
    job = FioJob(
        name=f"sched-{tag}-{len(stream_nodes)}",
        engine=engine,
        rw=rw,
        numjobs=len(stream_nodes),
        stream_nodes=tuple(stream_nodes),
    )
    return runner.run(job).aggregate_gbps

def main() -> None:
    host = reference_host()
    runner = FioRunner(host)
    write_model = IOModelBuilder(host).build(7, "write")

    # Judge class equivalence on the operation actually being scheduled.
    rdma_write = {
        node: runner.run(
            FioJob(name=f"sched-base-{node}", engine="rdma", rw="write",
                   numjobs=4, cpunodebind=node)
        ).aggregate_gbps
        for node in host.node_ids
    }
    advisor = PlacementAdvisor(host, write_model, rdma_write, tolerance=0.05)
    print(f"equivalent classes for RDMA_WRITE: {advisor.equivalent_classes()}")
    print(f"candidate nodes: {advisor.candidate_nodes()}\n")

    header = (f"{'tasks':>6s}{'all-local':>12s}{'advisor':>12s}"
              f"{'irq-aware':>12s}{'best gain':>11s}")
    print(header)
    print("-" * len(header))
    for n_tasks in (4, 8, 16, 24):
        local = measure(
            runner, "local", "rdma", "write",
            advisor.naive_plan(n_tasks).stream_nodes(),
        )
        spread_plan = advisor.advise(n_tasks)
        spread = measure(runner, "spread", "rdma", "write",
                         spread_plan.stream_nodes())
        irq_plan = advisor.advise(n_tasks, avoid_irq_node=True)
        irq_aware = measure(runner, "irq", "rdma", "write",
                            irq_plan.stream_nodes())
        gain = max(spread, irq_aware) / local - 1
        print(f"{n_tasks:>6d}{local:>11.2f} {spread:>11.2f} "
              f"{irq_aware:>11.2f} {100 * gain:>+9.1f}%")

    print("\nthe advisor's 16-task plan:")
    print(" ", advisor.advise(16).render())


if __name__ == "__main__":
    main()
