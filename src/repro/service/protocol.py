"""The service wire protocol: JSON-RPC 2.0 framing, schemas, typed errors.

One request per line, one response per line, everything JSON.  The
protocol layer is the service's outer wall: every byte that arrives is
parsed, shape-checked and schema-validated *here*, so the dispatch and
backend layers only ever see well-typed parameter dicts — and every
failure mode maps to a typed error object (``kind`` + JSON-RPC ``code``
+ message + structured ``data``), never a traceback.

Error taxonomy
--------------

===================  ======  =================================================
kind                 code    meaning
===================  ======  =================================================
``parse_error``      -32700  the line is not valid JSON
``invalid_request``  -32600  valid JSON, not a valid JSON-RPC request
``method_not_found`` -32601  unknown ``method``
``invalid_params``   -32602  params failed schema validation (names the field)
``internal_error``   -32603  unexpected failure (sanitised, no traceback)
``solver_error``     -32000  the solver/characterization layer failed
``deadline_exceeded``-32001  the request's deadline expired
``overloaded``       -32002  admission queue full — explicit backpressure
``unavailable``      -32003  breaker open and no last-good degraded answer
``shutting_down``    -32004  server is draining; retry elsewhere
===================  ======  =================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "METHODS",
    "Field",
    "decode_request",
    "validate_params",
    "result_response",
    "error_response",
    "encode_message",
]

PROTOCOL_VERSION = "2.0"

#: kind -> JSON-RPC error code.  Standard codes where they exist,
#: implementation-defined (-32000..-32099) for the service's own taxonomy.
ERROR_CODES = {
    "parse_error": -32700,
    "invalid_request": -32600,
    "method_not_found": -32601,
    "invalid_params": -32602,
    "internal_error": -32603,
    "solver_error": -32000,
    "deadline_exceeded": -32001,
    "overloaded": -32002,
    "unavailable": -32003,
    "shutting_down": -32004,
}

#: Reserved request param understood by the transport, not the methods.
DEADLINE_PARAM = "deadline_ms"


@dataclass(frozen=True)
class Field:
    """Schema for one request parameter."""

    types: tuple
    required: bool = False
    default: Any = None
    choices: tuple | None = None
    minimum: float | None = None
    maximum: float | None = None
    below: float | None = None  # exclusive upper bound
    item_types: tuple | None = None  # element types for list fields
    nonempty: bool = False


#: method -> {param name -> Field}.  ``deadline_ms`` is accepted on every
#: method and handled by the transport layer.
METHODS: dict[str, dict[str, Field]] = {
    "advise": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="write", choices=("write", "read")),
        "tasks": Field((int,), required=True, minimum=1),
        "avoid_irq_node": Field((bool,), default=False),
        "tolerance": Field((int, float), default=0.05, minimum=0.0, below=1.0),
    },
    "plan": {
        "write_weight": Field((int, float), default=0.5, minimum=0.0, maximum=1.0),
    },
    "predict_eq1": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="read", choices=("write", "read")),
        "streams": Field((list,), required=True, item_types=(int,), nonempty=True),
    },
    "classify": {
        "target": Field((int,), required=True, minimum=0),
        "mode": Field((str,), default="write", choices=("write", "read")),
    },
    "health": {},
    "ready": {},
}


def _is_bool(value) -> bool:
    return isinstance(value, bool)


def _type_ok(value, types: tuple) -> bool:
    """Type check that never lets ``True`` pass as an int (or vice versa)."""
    if _is_bool(value):
        return bool in types
    return isinstance(value, tuple(t for t in types if t is not bool))


def _type_names(types: tuple) -> str:
    return " or ".join(t.__name__ for t in types)


def _check_field(method: str, name: str, spec: Field, value):
    where = f"method {method!r}: param {name!r}"
    if not _type_ok(value, spec.types):
        raise ServiceError(
            "invalid_params",
            f"{where} must be {_type_names(spec.types)}, "
            f"got {type(value).__name__}",
            data={"param": name},
        )
    if spec.choices is not None and value not in spec.choices:
        raise ServiceError(
            "invalid_params",
            f"{where} must be one of {list(spec.choices)}, got {value!r}",
            data={"param": name},
        )
    if spec.minimum is not None and value < spec.minimum:
        raise ServiceError(
            "invalid_params",
            f"{where} must be >= {spec.minimum}, got {value!r}",
            data={"param": name},
        )
    if spec.maximum is not None and value > spec.maximum:
        raise ServiceError(
            "invalid_params",
            f"{where} must be <= {spec.maximum}, got {value!r}",
            data={"param": name},
        )
    if spec.below is not None and value >= spec.below:
        raise ServiceError(
            "invalid_params",
            f"{where} must be < {spec.below}, got {value!r}",
            data={"param": name},
        )
    if spec.item_types is not None:
        bad = [v for v in value if not _type_ok(v, spec.item_types)]
        if bad:
            raise ServiceError(
                "invalid_params",
                f"{where} must contain only {_type_names(spec.item_types)}, "
                f"got {bad[0]!r}",
                data={"param": name},
            )
    if spec.nonempty and not value:
        raise ServiceError(
            "invalid_params", f"{where} must not be empty", data={"param": name}
        )


def validate_params(method: str, params: Mapping | None) -> dict:
    """Schema-validate ``params`` for ``method``; returns a filled dict.

    Defaults are applied, unknown parameters are rejected *by name*, and
    every violation raises :class:`~repro.errors.ServiceError` of kind
    ``invalid_params`` (or ``method_not_found`` for an unknown method).
    """
    try:
        schema = METHODS[method]
    except KeyError:
        raise ServiceError(
            "method_not_found",
            f"unknown method {method!r}; choose from {sorted(METHODS)}",
        ) from None
    params = dict(params) if params else {}
    params.pop(DEADLINE_PARAM, None)
    unknown = [k for k in params if k not in schema]
    if unknown:
        raise ServiceError(
            "invalid_params",
            f"method {method!r}: unknown param {unknown[0]!r} "
            f"(accepts {sorted(schema) + [DEADLINE_PARAM]})",
            data={"param": unknown[0]},
        )
    out: dict = {}
    for name, spec in schema.items():
        if name not in params:
            if spec.required:
                raise ServiceError(
                    "invalid_params",
                    f"method {method!r}: missing required param {name!r}",
                    data={"param": name},
                )
            out[name] = spec.default
            continue
        value = params[name]
        _check_field(method, name, spec, value)
        out[name] = value
    return out


def decode_request(line: str) -> tuple[Any, str, dict, "float | None"]:
    """Parse one request line into ``(id, method, raw params, deadline_ms)``.

    Raises :class:`~repro.errors.ServiceError` (``parse_error`` /
    ``invalid_request``) on malformed input; params are *not* yet
    schema-validated (that is :func:`validate_params`, once the method
    is known to exist).
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError("parse_error", f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError(
            "invalid_request",
            f"request must be a JSON object, got {type(obj).__name__}",
        )
    if obj.get("jsonrpc") != PROTOCOL_VERSION:
        raise ServiceError(
            "invalid_request",
            f"request field 'jsonrpc' must be {PROTOCOL_VERSION!r}, "
            f"got {obj.get('jsonrpc')!r}",
        )
    if "id" not in obj or not isinstance(obj["id"], (str, int)) or _is_bool(obj["id"]):
        raise ServiceError(
            "invalid_request", "request field 'id' must be a string or integer"
        )
    method = obj.get("method")
    if not isinstance(method, str):
        raise ServiceError(
            "invalid_request", "request field 'method' must be a string"
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError(
            "invalid_request",
            f"request field 'params' must be an object, "
            f"got {type(params).__name__}",
        )
    deadline = params.get(DEADLINE_PARAM)
    if deadline is not None and (
        not _type_ok(deadline, (int, float)) or deadline < 0
    ):
        raise ServiceError(
            "invalid_params",
            f"param {DEADLINE_PARAM!r} must be a non-negative number, "
            f"got {deadline!r}",
            data={"param": DEADLINE_PARAM},
        )
    return obj["id"], method, params, deadline


def result_response(req_id, result: Mapping) -> dict:
    """A JSON-RPC success envelope."""
    return {"jsonrpc": PROTOCOL_VERSION, "id": req_id, "result": dict(result)}


def error_response(req_id, exc: ServiceError) -> dict:
    """A JSON-RPC error envelope from a typed :class:`ServiceError`."""
    error = {
        "code": ERROR_CODES.get(exc.kind, ERROR_CODES["internal_error"]),
        "kind": exc.kind,
        "message": str(exc),
    }
    if exc.data:
        error["data"] = dict(exc.data)
    return {"jsonrpc": PROTOCOL_VERSION, "id": req_id, "error": error}


def encode_message(message: Mapping) -> str:
    """One wire line (sorted keys, compact separators — byte-stable)."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
