"""Machine (de)serialisation."""

import json

import pytest

from repro.errors import TopologyError
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.topology.serialize import machine_from_dict, machine_to_dict


class TestRoundTrip:
    def test_reference_host_roundtrips(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        assert rebuilt.name == bare_host.name
        assert rebuilt.node_ids == bare_host.node_ids
        assert rebuilt.links.keys() == bare_host.links.keys()
        assert rebuilt.params == bare_host.params

    def test_capacity_models_survive(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        for src in bare_host.node_ids:
            for dst in bare_host.node_ids:
                assert rebuilt.dma_path_gbps(src, dst) == pytest.approx(
                    bare_host.dma_path_gbps(src, dst)
                )
                assert rebuilt.pio_stream_gbps(src, dst) == pytest.approx(
                    bare_host.pio_stream_gbps(src, dst)
                )

    def test_routing_survives(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        for plane in (PLANE_PIO, PLANE_DMA):
            for src in bare_host.node_ids:
                for dst in bare_host.node_ids:
                    assert (rebuilt.routing.route(plane, src, dst)
                            == bare_host.routing.route(plane, src, dst))

    def test_json_compatible(self, bare_host):
        text = json.dumps(machine_to_dict(bare_host))
        rebuilt = machine_from_dict(json.loads(text))
        assert rebuilt.n_nodes == bare_host.n_nodes

    def test_devices_not_serialised(self, host):
        rebuilt = machine_from_dict(machine_to_dict(host))
        assert rebuilt.devices == {}


class TestValidation:
    def test_version_checked(self, bare_host):
        data = machine_to_dict(bare_host)
        data["format_version"] = 99
        with pytest.raises(TopologyError):
            machine_from_dict(data)

    def test_missing_fields_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        del data["nodes"][0]["dram_gbps"]
        with pytest.raises(TopologyError):
            machine_from_dict(data)

    def test_malformed_links_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        data["links"][0].pop("width_bits")
        with pytest.raises(TopologyError):
            machine_from_dict(data)


def _corrupt(data, section, index, field, value):
    data[section][index][field] = value
    return data


class TestErrorsNameTheField:
    """Every malformed load names its offending field — never a bare
    KeyError/TypeError/ValueError escaping to the caller."""

    def check(self, data, *needles):
        with pytest.raises(TopologyError) as exc:
            machine_from_dict(data)
        message = str(exc.value)
        for needle in needles:
            assert needle in message, (needle, message)
        return message

    def test_non_mapping_description(self):
        self.check([1, 2, 3], "JSON object")

    def test_missing_section_named(self, bare_host):
        data = machine_to_dict(bare_host)
        del data["links"]
        self.check(data, "'links'", "missing")

    def test_section_wrong_shape_named(self, bare_host):
        data = machine_to_dict(bare_host)
        data["nodes"] = {"oops": 1}
        self.check(data, "nodes", "list")

    def test_non_object_entry_named_with_index(self, bare_host):
        data = machine_to_dict(bare_host)
        data["packages"][1] = "p1"
        self.check(data, "packages[1]", "object")

    def test_missing_node_field_named(self, bare_host):
        data = machine_to_dict(bare_host)
        del data["nodes"][2]["core_ids"]
        self.check(data, "nodes[2].core_ids", "missing")

    def test_wrong_typed_node_field_named(self, bare_host):
        data = machine_to_dict(bare_host)
        self.check(
            _corrupt(data, "nodes", 0, "node_id", "zero"),
            "nodes[0].node_id", "int", "str",
        )

    def test_bool_is_not_an_int(self, bare_host):
        data = machine_to_dict(bare_host)
        self.check(
            _corrupt(data, "nodes", 3, "memory_bytes", True),
            "nodes[3].memory_bytes",
        )

    def test_core_ids_items_checked(self, bare_host):
        data = machine_to_dict(bare_host)
        data["nodes"][1]["core_ids"] = [0, "one"]
        self.check(data, "nodes[1].core_ids", "'one'")

    def test_unknown_link_kind_lists_choices(self, bare_host):
        data = machine_to_dict(bare_host)
        message = self.check(
            _corrupt(data, "links", 3, "kind", "carrier-pigeon"),
            "links[3].kind", "'carrier-pigeon'",
        )
        assert "one of" in message

    def test_link_field_type_named(self, bare_host):
        data = machine_to_dict(bare_host)
        self.check(
            _corrupt(data, "links", 0, "gts", None), "links[0].gts",
        )

    def test_params_unknown_key_named(self, bare_host):
        data = machine_to_dict(bare_host)
        data["params"]["warp_factor"] = 9
        self.check(data, "params.warp_factor")

    def test_params_missing_key_named(self, bare_host):
        data = machine_to_dict(bare_host)
        del data["params"]["llc_bytes"]
        self.check(data, "params.llc_bytes", "missing")

    def test_params_wrong_shape(self, bare_host):
        data = machine_to_dict(bare_host)
        data["params"] = [1]
        self.check(data, "params", "object")

    def test_name_must_be_string(self, bare_host):
        data = machine_to_dict(bare_host)
        data["name"] = 7
        self.check(data, "machine.name")

    def test_value_level_rejection_is_wrapped(self, bare_host):
        data = machine_to_dict(bare_host)
        message = self.check(
            _corrupt(data, "links", 0, "dma_credit", 7.5), "links[0]",
        )
        assert "Traceback" not in message

    def test_fuzzed_loads_never_leak_bare_errors(self, bare_host):
        pristine = machine_to_dict(bare_host)
        poisons = (None, True, "x", -1, [], {}, 1.5)
        for section in ("nodes", "packages", "links"):
            for field in pristine[section][0]:
                for poison in poisons:
                    data = machine_to_dict(bare_host)
                    data[section][0][field] = poison
                    try:
                        machine_from_dict(data)
                    except TopologyError:
                        pass  # the only acceptable failure mode
