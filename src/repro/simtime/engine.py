"""The simulation clock and run loop."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs import recorder as _obs
from repro.simtime.event_queue import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulator: a clock plus an event queue.

    Time is a ``float`` in seconds starting at ``0.0``.  Events execute in
    timestamp order (FIFO among ties); callbacks may schedule further
    events.  The engine is single-threaded and re-entrant callbacks are not
    allowed (``step`` during ``step`` raises).

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(2.0, lambda: seen.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._steps = 0

    # --- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._steps

    # --- scheduling ----------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time!r} < now={self._now!r})"
            )
        return self._queue.push(time, callback)

    # --- execution -----------------------------------------------------
    def peek(self) -> float | None:
        """Timestamp of the next pending event, if any."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if the queue is empty."""
        if self._running:
            raise SimulationError("re-entrant Simulator.step() call")
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        self._running = True
        try:
            event.callback()
        finally:
            self._running = False
        self._steps += 1
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int = 10_000_000,
        max_wall_seconds: float | None = None,
    ) -> None:
        """Execute events until the queue is empty or ``until`` is reached.

        Parameters
        ----------
        until:
            Optional simulated-time horizon; the clock is advanced to
            exactly ``until`` when the horizon is hit first.
        max_events:
            Safety valve against runaway event loops: at most
            ``max_events`` events execute, and
            :class:`~repro.errors.SimulationError` is raised only if
            more are still pending.
        max_wall_seconds:
            Optional *wall-clock* watchdog.  A pathological model can
            stay under ``max_events`` while each event takes forever (or
            schedules ever-closer events); when the run loop has spent
            more than this many real seconds, it raises
            :class:`~repro.errors.SimulationError` reporting the
            simulated time reached and the events still pending.
        """
        import time as _time

        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise SimulationError(
                f"max_wall_seconds must be positive, got {max_wall_seconds!r}"
            )
        deadline = (
            _time.monotonic() + max_wall_seconds
            if max_wall_seconds is not None
            else None
        )
        executed = 0
        with _obs.span("simtime.run") as sp:
            try:
                while True:
                    next_time = self._queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        self._now = until
                        return
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; event loop runaway?"
                        )
                    if deadline is not None and _time.monotonic() > deadline:
                        raise SimulationError(
                            f"simulation watchdog fired after {max_wall_seconds:g}s "
                            f"wall time: {len(self._queue)} events still pending at "
                            f"simulated t={self._now:g}s ({executed} executed)"
                        )
                    if not self.step():  # pragma: no cover - peek said non-empty
                        break
                    executed += 1
                if until is not None and until > self._now:
                    self._now = until
            finally:
                sp.tag(events=executed)
                _obs.count("simtime.events", executed)
