"""F5 — Fig. 5: TCP send/receive vs streams and NUMA binding."""


def test_fig5_tcp(run_paper_experiment):
    result = run_paper_experiment("f5")
    assert set(result.data) == {"send", "recv"}
