"""Machine arenas: publish/attach round trips, refcounts, and no leaks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FabricError
from repro.fabric import arena as arena_mod
from repro.fabric.arena import attach, get_arena, live_segments, publish
from repro.solver.capacity import build_capacities, machine_fingerprint
from repro.topology.builders import scaled_host
from repro.topology.distance import hop_matrix

pytestmark = pytest.mark.fabric


@pytest.fixture()
def machine():
    return scaled_host(3, seed=11)


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test starts and ends with zero live arena segments."""
    arena_mod.release_all()
    assert live_segments() == []
    yield
    arena_mod.release_all()
    assert live_segments() == []


def test_publish_attach_round_trip(machine):
    fingerprint = machine_fingerprint(machine)
    owner = publish(machine)
    try:
        assert owner.owner and owner.fingerprint == fingerprint
        assert live_segments() == [owner.name]

        attached = attach(fingerprint)
        assert attached is not None and not attached.owner
        assert attached.capacities() == build_capacities(machine)
        assert np.array_equal(attached.hops, hop_matrix(machine))
        rebuilt = attached.machine()
        assert machine_fingerprint(rebuilt) == fingerprint
        assert rebuilt.node_ids == machine.node_ids
        attached._shm.close()
    finally:
        owner._close()


def test_adjacency_matches_links(machine):
    owner = publish(machine)
    try:
        ids = machine.node_ids
        index = {nid: i for i, nid in enumerate(ids)}
        for (src, dst), link in machine.links.items():
            assert owner.adjacency[index[src], index[dst]] == link.dma_gbps
    finally:
        owner._close()


def test_views_are_read_only(machine):
    owner = publish(machine)
    try:
        with pytest.raises(ValueError):
            owner.hops[0, 0] = 99
    finally:
        owner._close()


def test_refcounting_unlinks_on_last_release(machine):
    arena = get_arena(machine)
    assert arena.refs == 1 and arena.owner
    assert get_arena(machine) is arena and arena.refs == 2
    arena.release()
    assert not arena.closed and live_segments() == [arena.name]
    arena.release()
    assert arena.closed
    assert live_segments() == []


def test_attach_missing_returns_none():
    assert attach("no-such-fingerprint-0123456789abcdef") is None


def test_publish_twice_raises(machine):
    owner = publish(machine)
    try:
        with pytest.raises(FabricError):
            publish(machine)
    finally:
        owner._close()


def test_publish_rejects_routing_overrides(machine):
    from repro.topology.serialize import machine_from_dict, machine_to_dict

    # A private copy so the fixture machine stays pristine.
    copied = machine_from_dict(machine_to_dict(machine))
    nodes = copied.node_ids
    hops = copied.routing.route("dma", nodes[0], nodes[1])
    copied.routing.set_route("dma", hops)
    with pytest.raises(FabricError, match="overrides"):
        publish(copied)


def test_release_all_sweeps_everything(machine):
    get_arena(machine)
    get_arena(scaled_host(2, seed=3))
    assert len(live_segments()) == 2
    arena_mod.release_all()
    assert live_segments() == []


def test_session_eviction_releases_arena(machine):
    """Satellite (c): sessions evicted from the LRU release their arena."""
    from repro.solver import session as session_mod
    from repro.solver.session import get_session, reset_sessions

    reset_sessions()
    arena = get_arena(machine)
    session = get_session(machine)
    session.attach_arena(arena)
    arena.release()  # the session now holds the only reference
    assert not arena.closed
    # Arena-backed capacities come from the shared segment.
    assert session.capacities() == build_capacities(machine)

    # Flood the registry past its LRU bound; the arena-backed session is
    # evicted, closed, and the segment disappears with its last ref.
    for seed in range(session_mod._MAX_SESSIONS + 1):
        get_session(scaled_host(2, seed=seed))
    assert arena.closed
    assert live_segments() == []
    reset_sessions()


def test_reset_sessions_releases_arena(machine):
    from repro.solver.session import get_session, reset_sessions

    reset_sessions()
    arena = get_arena(machine)
    session = get_session(machine)
    session.attach_arena(arena)
    arena.release()
    reset_sessions()
    assert arena.closed
    assert live_segments() == []


# --- integrity and orphan hygiene (PR 7) ----------------------------------


def _raw_segment(name):
    from multiprocessing import shared_memory

    with arena_mod._untracked():
        return shared_memory.SharedMemory(name=name)


def test_attach_verifies_payload_checksum(machine):
    fingerprint = machine_fingerprint(machine)
    owner = publish(machine)
    raw = _raw_segment(owner.name)
    try:
        raw.buf[-1] ^= 0xFF  # scribble on the last array's payload
        with pytest.raises(FabricError, match="payload checksum"):
            attach(fingerprint)
        raw.buf[-1] ^= 0xFF  # restore; the segment is intact again
        attached = attach(fingerprint)
        assert attached is not None
        attached._shm.close()
    finally:
        raw.close()
        owner._close()


def test_header_publishes_owner_pid_and_crc(machine):
    import os

    owner = publish(machine)
    try:
        assert owner._header["pid"] == os.getpid()
        assert isinstance(owner._header["payload_crc"], int)
    finally:
        owner._close()


_CHILD_PUBLISH = """
import os, sys, time
from repro.fabric import arena
from repro.topology.builders import scaled_host

with arena._untracked():  # keep the tracker from reaping after SIGKILL
    owner = arena.publish(scaled_host(3, seed=11))
print(owner.name, flush=True)
if "--sleep" in sys.argv:
    time.sleep(60)
"""


def test_reap_orphans_unlinks_dead_owner_segments():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_PUBLISH],
        capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    name = proc.stdout.strip()
    assert name in live_segments()  # orphan survived the child's exit
    assert name in arena_mod.reap_orphans()
    assert name not in live_segments()


def test_reap_orphans_spares_live_owners():
    import signal
    import subprocess
    import sys

    if not hasattr(signal, "SIGKILL"):
        pytest.skip("SIGKILL unavailable on this platform")
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD_PUBLISH, "--sleep"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        name = proc.stdout.readline().strip()
        assert name in live_segments()
        assert name not in arena_mod.reap_orphans()  # owner is alive
        assert name in live_segments()
    finally:
        proc.kill()
        proc.wait(timeout=30)
    assert name in arena_mod.reap_orphans()  # owner is dead now
    assert name not in live_segments()


def test_reap_orphans_age_gates_unreadable_segments():
    from multiprocessing import shared_memory

    name = "repro_fab_test_junk_header"
    with arena_mod._untracked():
        shm = shared_memory.SharedMemory(name=name, create=True, size=64)
    try:
        shm.buf[:8] = b"\xff" * 8  # absurd header length: unparsable
        # A fresh unreadable segment might be a publisher mid-write.
        assert name not in arena_mod.reap_orphans(max_age_s=3600.0)
        assert name in live_segments()
        assert name in arena_mod.reap_orphans(max_age_s=0.0)
        assert name not in live_segments()
    finally:
        shm.close()
