"""Physical-plausibility audits of a machine description.

§II-A: "the pin constraint of the AMD G34 architecture allows at most
four HyperTransport ports per CPU node", one of which the bottom dies
spend on the I/O hub.  The calibrated reference host deliberately
trades port-count realism for bandwidth fidelity (the paper itself
proves the physical wiring unknowable from outside), so the audit
exists to make that trade *visible*: it reports per-die port usage and
flags budget violations instead of hiding them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.machine import Machine

__all__ = ["PortUsage", "port_budget_report", "render_port_budget"]

#: AMD G34: at most four HT ports per die.
G34_PORT_BUDGET = 4


@dataclass(frozen=True)
class PortUsage:
    """One die's HT port consumption."""

    node_id: int
    fabric_ports: int  # distinct fabric neighbours
    io_ports: int  # I/O hub attachments (devices behind this die)
    budget: int

    @property
    def total(self) -> int:
        """Ports consumed."""
        return self.fabric_ports + self.io_ports

    @property
    def over_budget(self) -> bool:
        """True when this die uses more ports than the silicon has."""
        return self.total > self.budget


def port_budget_report(
    machine: Machine, budget: int = G34_PORT_BUDGET
) -> list[PortUsage]:
    """Per-die port usage, ordered by node id."""
    if budget < 1:
        raise TopologyError(f"port budget must be >= 1, got {budget}")
    neighbours: dict[int, set[int]] = {n: set() for n in machine.node_ids}
    for src, dst in machine.links:
        neighbours[src].add(dst)
        neighbours[dst].add(src)
    io_nodes: dict[int, int] = {n: 0 for n in machine.node_ids}
    hubs_seen: set[int] = set()
    for device in machine.devices.values():
        # Devices behind the same node share one I/O hub port.
        if device.node_id not in hubs_seen:
            io_nodes[device.node_id] += 1
            hubs_seen.add(device.node_id)
    return [
        PortUsage(
            node_id=n,
            fabric_ports=len(neighbours[n]),
            io_ports=io_nodes[n],
            budget=budget,
        )
        for n in machine.node_ids
    ]


def render_port_budget(machine: Machine, budget: int = G34_PORT_BUDGET) -> str:
    """Text audit with violations flagged."""
    rows = port_budget_report(machine, budget)
    lines = [f"HT port audit for {machine.name!r} (budget {budget}/die):"]
    for row in rows:
        flag = "  OVER BUDGET (behavioural model, not physical wiring)" \
            if row.over_budget else ""
        lines.append(
            f"  die {row.node_id}: {row.fabric_ports} fabric + "
            f"{row.io_ports} I/O = {row.total}{flag}"
        )
    over = [r.node_id for r in rows if r.over_budget]
    lines.append(
        "verdict: physically plausible wiring"
        if not over
        else f"verdict: dies {over} exceed the budget — this description is "
        "calibrated to observed bandwidths, not to a physical layout "
        "(see DESIGN.md §7)"
    )
    return "\n".join(lines)
