"""Concurrent multi-device workloads with fabric-level contention.

The single-job fio engines fold all sharing *within one device* into
per-stream service caps; two jobs against *different* devices, however,
can also contend in the fabric — a NIC send and an SSD write whose
buffers both live on node 2 share the starved 2->7 request direction.
This runner builds one flow network across every concurrent job:

* each stream demands its device-level service cap (the validated
  single-job model), and
* additionally crosses its host-side controller and every DMA-plane
  link of its buffer<->device route,

so cross-device contention emerges exactly where the fabric says it
must.  A :class:`~repro.osmodel.counters.TrafficCounters` is filled per
run, showing where the bytes went.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.engines import (
    StreamPlacement,
    device_service_levels,
    link_resource,
    resolve_placements,
)
from repro.bench.jobfile import FioJob
from repro.bench.results import JobResult
from repro.errors import BenchmarkError
from repro.flows.flow import Flow
from repro.interconnect.planes import PLANE_DMA
from repro.memory.allocator import PageAllocator
from repro.memory.controller import MemoryController
from repro.osmodel.counters import TrafficCounters
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.solver.session import get_session
from repro.topology.machine import Machine

__all__ = ["ConcurrentResult", "ConcurrentRunner"]


@dataclass(frozen=True)
class ConcurrentResult:
    """All jobs' results plus the traffic accounting."""

    per_job: dict[str, JobResult]
    counters: TrafficCounters
    solver_stats: dict = field(default_factory=dict)

    @property
    def total_gbps(self) -> float:
        """Sum of all jobs' aggregates."""
        return sum(r.aggregate_gbps for r in self.per_job.values())

    def render(self) -> str:
        """Per-job lines plus the hottest resources."""
        lines = [r.render().splitlines()[0] for r in self.per_job.values()]
        lines.append(self.counters.render())
        return "\n".join(lines)


class ConcurrentRunner:
    """Run several fio jobs simultaneously on one machine."""

    def __init__(self, machine: Machine, registry: RngRegistry | None = None) -> None:
        self.machine = machine
        self.registry = registry or RngRegistry()
        self.session = get_session(machine)

    def _stream_route(self, direction: str, mem_node: int, device) -> list[str]:
        """Host-side resources one stream's data crosses."""
        if direction == "write":
            src, dst = mem_node, device.node_id
        else:
            src, dst = device.node_id, mem_node
        resources = [MemoryController(mem_node, 0, 0).dma_resource]
        if src != dst:
            for link in self.machine.path(PLANE_DMA, src, dst).links:
                resources.append(link_resource(*link.ends))
        return resources

    def run(self, jobs: list[FioJob], run_idx: int = 0) -> ConcurrentResult:
        """Execute all ``jobs`` concurrently; returns per-job results."""
        if not jobs:
            raise BenchmarkError("need at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise BenchmarkError(f"duplicate job names: {sorted(names)}")
        for job in jobs:
            if job.engine == "memcpy":
                raise BenchmarkError(
                    f"job {job.name!r}: the concurrent runner drives devices; "
                    "memcpy jobs belong to FioRunner"
                )

        machine = self.machine
        allocator = PageAllocator(machine)
        capacities = self.session.capacities()
        flows: list[Flow] = []
        flow_meta: dict[str, tuple[str, tuple[int, int]]] = {}
        job_caps: dict[str, float] = {}
        allocations = []
        # (device, direction) -> accumulated stream levels across ALL jobs:
        # the DMA engine time-slices over every stream it serves, so both
        # the per-stream division and the aggregate ceiling must span jobs.
        dev_levels: dict[tuple[str, str], list[float]] = {}
        staged = []  # (job, device, profile, placements, levels, noise)

        try:
            for job in jobs:
                device = machine.devices.get(job.device)
                if device is None:
                    raise BenchmarkError(
                        f"job {job.name!r} needs device {job.device!r}, but "
                        f"{machine.name!r} has {sorted(machine.devices)}"
                    )
                profile = device.engine(job.profile_name)
                if job.engine == "libaio" and job.iodepth < device.min_iodepth:
                    raise BenchmarkError(
                        f"job {job.name!r}: iodepth {job.iodepth} cannot keep "
                        f"{device.name!r} saturated (needs >= {device.min_iodepth})"
                    )
                placements, allocs = resolve_placements(machine, allocator, job)
                allocations.extend(allocs)
                levels = device_service_levels(
                    machine, device, profile, placements, job.direction,
                    session=self.session,
                )
                noise = NoiseModel(
                    self.registry.stream(f"concurrent/{job.name}/run{run_idx}")
                )
                dev_levels.setdefault((device.name, job.direction), []).extend(levels)
                staged.append((job, device, profile, placements, levels, noise))

            # Device-direction aggregates over every stream of every job.
            for (dev_name, direction), levels in dev_levels.items():
                capacities[f"dev:{dev_name}:{direction}"] = (
                    sum(levels) / len(levels)
                )

            for job, device, profile, placements, levels, noise in staged:
                n = len(placements)
                total_on_device = len(dev_levels[(device.name, job.direction)])
                ways = max(1.0, total_on_device / device.dma.contexts)
                sigma = (profile.sigma if n < profile.crowd_threshold
                         else profile.crowd_sigma)
                stream_noise = noise.factors(sigma, n)
                dev_resource = f"dev:{device.name}:{job.direction}"
                for i, (placement, level) in enumerate(zip(placements, levels)):
                    demand = level / ways
                    if profile.per_stream_cap_gbps is not None:
                        demand = min(demand, profile.per_stream_cap_gbps)
                    if profile.cpu_gbps_per_stream is not None:
                        cores = machine.node(placement.cpu_node).n_cores
                        share = min(
                            1.0,
                            cores / sum(
                                1 for p in placements
                                if p.cpu_node == placement.cpu_node
                            ),
                        )
                        demand = min(demand, profile.cpu_gbps_per_stream * share)
                    resources = tuple(
                        dict.fromkeys(
                            [dev_resource]
                            + self._stream_route(
                                job.direction, placement.mem_node, device
                            )
                        )
                    )
                    flow_name = f"{job.name}/{i}"
                    flows.append(
                        Flow(
                            name=flow_name,
                            resources=resources,
                            demand_gbps=demand * float(stream_noise[i]),
                            size_bytes=float(job.size_bytes),
                        )
                    )
                    flow_meta[flow_name] = (
                        job.name,
                        (placement.cpu_node, placement.mem_node),
                    )
                job_caps[job.name] = capacities[dev_resource]

            outcomes = self.session.simulate(flows, capacities)
        finally:
            for allocation in allocations:
                allocator.release(allocation)

        counters = TrafficCounters(capacities=dict(capacities))
        counters.window_s = max(o.finish_s for o in outcomes.values())
        for flow in flows:
            counters.record_flow(flow.resources, outcomes[flow.name].bytes_moved)

        per_job: dict[str, JobResult] = {}
        for job in jobs:
            job_outcomes = {
                name: o for name, o in outcomes.items()
                if flow_meta[name][0] == job.name
            }
            per_job[job.name] = JobResult(
                job_name=job.name,
                engine=f"{job.engine}:{job.rw}",
                streams=tuple(
                    flow_meta[name][1] for name in sorted(job_outcomes)
                ),
                per_stream_gbps={
                    name: o.avg_gbps for name, o in job_outcomes.items()
                },
                aggregate_gbps=sum(o.avg_gbps for o in job_outcomes.values()),
                duration_s=max(o.finish_s for o in job_outcomes.values()),
                tags={"concurrent": True, "device_cap": job_caps[job.name]},
                solver_stats=self.session.stats.snapshot(),
            )
        return ConcurrentResult(
            per_job=per_job,
            counters=counters,
            solver_stats=self.session.stats.snapshot(),
        )
