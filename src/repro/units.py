"""Units and conversions used throughout the library.

Conventions
-----------
* **Bandwidth** is expressed in **Gbps** (``1e9`` bits per second) as a
  ``float``.  The paper reports every bandwidth in Gbps (Gbit/s), so the
  library does too; helpers convert to and from bytes/second.
* **Data sizes** are **bytes** as an ``int``.
* **Time** is **seconds** as a ``float``; latencies are usually built from
  the :data:`NS` constant for readability (``100 * NS``).

These are plain module-level helpers rather than a unit-checking type: the
hot paths in the flow solver run over numpy arrays and must stay free of
per-element wrapper objects (see the HPC guide's advice on vectorisation).
"""

from __future__ import annotations

# --- size constants (bytes) -------------------------------------------------
KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

#: A cache line on the modelled AMD platforms.
CACHE_LINE = 64

# --- time constants (seconds) -----------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- bandwidth conversions ---------------------------------------------------
BITS_PER_BYTE = 8


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a bandwidth in Gbps to bytes per second."""
    return gbps * 1e9 / BITS_PER_BYTE


def bytes_per_s_to_gbps(bps: float) -> float:
    """Convert a bandwidth in bytes/second to Gbps."""
    return bps * BITS_PER_BYTE / 1e9


def gbps(bytes_moved: float, seconds: float) -> float:
    """Bandwidth in Gbps achieved moving ``bytes_moved`` in ``seconds``.

    Raises
    ------
    ValueError
        If ``seconds`` is not strictly positive.
    """
    if seconds <= 0.0:
        raise ValueError(f"elapsed time must be positive, got {seconds!r}")
    return bytes_per_s_to_gbps(bytes_moved / seconds)


def transfer_time(bytes_moved: float, bw_gbps: float) -> float:
    """Seconds needed to move ``bytes_moved`` at ``bw_gbps``.

    Raises
    ------
    ValueError
        If ``bw_gbps`` is not strictly positive.
    """
    if bw_gbps <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bw_gbps!r}")
    return bytes_moved / gbps_to_bytes_per_s(bw_gbps)


def ht_raw_gbps(width_bits: int, gts: float) -> float:
    """Raw per-direction capacity of a HyperTransport link in Gbps.

    HyperTransport is double-pumped and quoted in GT/s; a ``width_bits``-bit
    link moving ``gts`` billion transfers per second carries
    ``width_bits * gts`` Gbps per direction (HT 3.0 spec, §4).

    >>> ht_raw_gbps(16, 3.2)
    51.2
    >>> ht_raw_gbps(8, 3.2)
    25.6
    """
    if width_bits <= 0:
        raise ValueError(f"link width must be positive, got {width_bits!r}")
    if gts <= 0:
        raise ValueError(f"transfer rate must be positive, got {gts!r}")
    return width_bits * gts


def pcie_data_gbps(lanes: int, gen: int) -> float:
    """Usable data bandwidth of a PCIe link in Gbps (per direction).

    Gen 1/2 use 8b/10b encoding (2.5 / 5.0 GT/s per lane -> 2.0 / 4.0 Gbps
    usable); Gen 3 uses 128b/130b at 8.0 GT/s (~7.877 Gbps usable).  The
    paper's NIC is Gen 2 x8: 40 Gbps raw, 32 Gbps usable, which this helper
    reproduces.

    >>> pcie_data_gbps(8, 2)
    32.0
    """
    if lanes <= 0:
        raise ValueError(f"lane count must be positive, got {lanes!r}")
    per_lane_raw = {1: 2.5, 2: 5.0, 3: 8.0}
    encoding = {1: 8.0 / 10.0, 2: 8.0 / 10.0, 3: 128.0 / 130.0}
    if gen not in per_lane_raw:
        raise ValueError(f"unsupported PCIe generation: {gen!r}")
    return lanes * per_lane_raw[gen] * encoding[gen]


def fmt_gbps(value: float, digits: int = 2) -> str:
    """Render a bandwidth for reports, e.g. ``'21.34 Gbps'``."""
    return f"{value:.{digits}f} Gbps"


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``'128.0 KiB'``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")
