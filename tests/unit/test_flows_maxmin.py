"""Max-min fair allocation."""

import pytest

from repro.errors import SimulationError
from repro.flows.flow import Flow
from repro.flows.maxmin import maxmin_allocate


class TestBasicSharing:
    def test_equal_split(self):
        flows = [Flow(name=f"f{i}", resources=("r",)) for i in range(4)]
        rates = maxmin_allocate(flows, {"r": 20.0})
        assert all(rate == pytest.approx(5.0) for rate in rates.values())

    def test_single_flow_takes_all(self):
        rates = maxmin_allocate([Flow(name="f", resources=("r",))], {"r": 10.0})
        assert rates["f"] == pytest.approx(10.0)

    def test_demand_cap_redistributes(self):
        flows = [
            Flow(name="small", resources=("r",), demand_gbps=2.0),
            Flow(name="big", resources=("r",)),
        ]
        rates = maxmin_allocate(flows, {"r": 10.0})
        assert rates["small"] == pytest.approx(2.0)
        assert rates["big"] == pytest.approx(8.0)

    def test_two_bottlenecks(self):
        # f1 crosses both resources; f2 only the second.
        flows = [
            Flow(name="f1", resources=("a", "b")),
            Flow(name="f2", resources=("b",)),
        ]
        rates = maxmin_allocate(flows, {"a": 4.0, "b": 10.0})
        assert rates["f1"] == pytest.approx(4.0)
        assert rates["f2"] == pytest.approx(6.0)

    def test_weights(self):
        flows = [
            Flow(name="heavy", resources=("r",), weight=3.0),
            Flow(name="light", resources=("r",), weight=1.0),
        ]
        rates = maxmin_allocate(flows, {"r": 8.0})
        assert rates["heavy"] == pytest.approx(6.0)
        assert rates["light"] == pytest.approx(2.0)

    def test_disjoint_resources_independent(self):
        flows = [
            Flow(name="a", resources=("x",)),
            Flow(name="b", resources=("y",)),
        ]
        rates = maxmin_allocate(flows, {"x": 3.0, "y": 7.0})
        assert rates["a"] == pytest.approx(3.0)
        assert rates["b"] == pytest.approx(7.0)

    def test_empty_flows(self):
        assert maxmin_allocate([], {"r": 1.0}) == {}

    def test_flow_with_no_resources_needs_demand(self):
        rates = maxmin_allocate(
            [Flow(name="f", resources=(), demand_gbps=5.0)], {}
        )
        assert rates["f"] == pytest.approx(5.0)

    def test_elastic_flow_with_no_resources_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([Flow(name="f", resources=())], {})


class TestValidation:
    def test_duplicate_names_rejected(self):
        flows = [Flow(name="f", resources=("r",)), Flow(name="f", resources=("r",))]
        with pytest.raises(SimulationError):
            maxmin_allocate(flows, {"r": 1.0})

    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([Flow(name="f", resources=("ghost",))], {"r": 1.0})

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            maxmin_allocate([Flow(name="f", resources=("r",))], {"r": 0.0})

    def test_unused_resources_ignored(self):
        rates = maxmin_allocate(
            [Flow(name="f", resources=("r",))], {"r": 1.0, "dead": -5.0}
        )
        assert rates["f"] == pytest.approx(1.0)


class TestMaxMinProperty:
    def test_feasibility(self):
        flows = [
            Flow(name="a", resources=("x", "y")),
            Flow(name="b", resources=("y", "z")),
            Flow(name="c", resources=("x", "z")),
        ]
        caps = {"x": 5.0, "y": 3.0, "z": 4.0}
        rates = maxmin_allocate(flows, caps)
        loads = {r: 0.0 for r in caps}
        for f in flows:
            for r in f.resources:
                loads[r] += rates[f.name]
        for r, load in loads.items():
            assert load <= caps[r] + 1e-9

    def test_bottleneck_saturated(self):
        flows = [Flow(name=f"f{i}", resources=("r",)) for i in range(3)]
        rates = maxmin_allocate(flows, {"r": 9.0})
        assert sum(rates.values()) == pytest.approx(9.0)
