"""Execution-layer faults: env arming, validation, no capacity footprint."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import STALL_ENV, CrashPoint, ExecutionFault, TornWrite, WorkerStall
from repro.journal import CRASH_ENV


def test_crash_point_arms_journal_env():
    fault = CrashPoint(record=3)
    assert fault.env() == (CRASH_ENV, "3")
    assert fault.kind == "crash-point"
    assert fault.describe() == "crash@3"


def test_torn_write_arms_torn_mode():
    fault = TornWrite(record=2)
    assert fault.env() == (CRASH_ENV, "2:torn")
    assert fault.describe() == "torn@2"


def test_worker_stall_arms_pool_env():
    fault = WorkerStall(seconds=0.25)
    assert fault.env() == (STALL_ENV, "0.25")
    assert fault.describe() == "stall:0.25s"


def test_env_values_round_trip_through_the_journal_parser():
    from repro.journal.store import RunJournal

    for fault, expected in [
        (CrashPoint(record=5), (5, False)),
        (TornWrite(record=5), (5, True)),
    ]:
        _, value = fault.env()
        assert RunJournal._parse_crash_spec(value) == expected


def test_record_indices_validated():
    with pytest.raises(FaultError, match=">= 1"):
        CrashPoint(record=0)
    with pytest.raises(FaultError, match=">= 1"):
        TornWrite(record=-2)


def test_worker_stall_bounds():
    with pytest.raises(FaultError, match=r"\(0, 60\]"):
        WorkerStall(seconds=0.0)
    with pytest.raises(FaultError, match=r"\(0, 60\]"):
        WorkerStall(seconds=61.0)
    WorkerStall(seconds=60.0)  # inclusive upper bound


def test_no_capacity_footprint():
    for fault in (CrashPoint(record=1), TornWrite(record=1), WorkerStall(seconds=1.0)):
        assert isinstance(fault, ExecutionFault)
        with pytest.raises(FaultError, match="no capacity footprint"):
            fault.capacity_factors()
