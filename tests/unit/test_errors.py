"""Exception hierarchy contract."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "subtype",
    [
        errors.TopologyError,
        errors.RoutingError,
        errors.AllocationError,
        errors.AffinityError,
        errors.SimulationError,
        errors.BenchmarkError,
        errors.ModelError,
        errors.DeviceError,
        errors.FaultError,
        errors.RouteLostError,
    ],
)
def test_all_errors_derive_from_repro_error(subtype):
    assert issubclass(subtype, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise subtype("boom")


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)


def test_route_lost_is_a_fault_error():
    assert issubclass(errors.RouteLostError, errors.FaultError)
