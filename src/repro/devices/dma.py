"""Device DMA engine service model.

A device's DMA engine time-slices among the I/O contexts posted to it.
A stream whose buffers sit behind a narrow NUMA path cannot use a wider
slice than its path supports, and a stream on a wide path cannot steal
the slices of others — so each of ``n`` concurrent streams is served at
most ``path_bw(stream) / n``.  This round-robin model is what makes the
paper's Eq. 1 mixture prediction come out right: the aggregate over a
class mixture is the stream-weighted mean of per-class bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import DeviceError

__all__ = ["DmaEngine"]


@dataclass(frozen=True)
class DmaEngine:
    """Round-robin DMA service shared by concurrent I/O contexts.

    Parameters
    ----------
    max_gbps:
        Engine ceiling (bounded above by the device's PCIe attachment).
    contexts:
        Number of hardware channels served in parallel before
        time-slicing begins (2 for the paper's two-card SSD array; 1
        otherwise).
    """

    max_gbps: float
    contexts: int = 1

    def __post_init__(self) -> None:
        if self.max_gbps <= 0:
            raise DeviceError(f"DMA engine capacity must be positive, got {self.max_gbps!r}")
        if self.contexts < 1:
            raise DeviceError(f"DMA engine needs >= 1 context, got {self.contexts!r}")

    def per_stream_caps(self, path_gbps: Sequence[float]) -> list[float]:
        """Per-stream service ceilings for streams with these path bandwidths.

        Each of ``n`` streams is served in at most ``max(1, n/contexts)``-way
        time-slices of its own path bandwidth.
        """
        n = len(path_gbps)
        if n == 0:
            return []
        ways = max(1.0, n / self.contexts)
        for p in path_gbps:
            if p <= 0:
                raise DeviceError(f"path bandwidth must be positive, got {p!r}")
        return [p / ways for p in path_gbps]

    def mixture_factor(self, shares: Sequence[float], mix_coef: float) -> float:
        """Aggregate derating for serving a mixture of NUMA classes.

        ``shares`` are the class fractions (summing to 1).  A single
        class costs nothing; a diverse mixture pays
        ``mix_coef * (1 - sum(share^2))`` — a Herfindahl-style diversity
        penalty for the engine bouncing between differently-routed
        buffers.  Calibrated so the paper's 50/50 RDMA_READ example lands
        ~3 % under the Eq. 1 prediction.
        """
        if not shares:
            return 1.0
        total = sum(shares)
        if total <= 0:
            raise DeviceError("class shares must sum to a positive value")
        herfindahl = sum((s / total) ** 2 for s in shares)
        return 1.0 - mix_coef * (1.0 - herfindahl)
