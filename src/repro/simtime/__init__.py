"""A small discrete-event simulation core.

The flow-level network model (:mod:`repro.flows`) advances simulated time
between *rate-change events* (a flow starting or finishing); device queue
models and the OS noise model schedule their own events.  This package
provides the shared clock and event queue they all use.

Public API
----------
:class:`~repro.simtime.engine.Simulator`
    The clock plus event queue; ``schedule`` callbacks, ``run`` until idle
    or a deadline.
:class:`~repro.simtime.event_queue.EventQueue`
    A deterministic priority queue of timestamped events (stable FIFO order
    for simultaneous events).
:class:`~repro.simtime.process.SimProcess`
    Generator-based cooperative process helper on top of the simulator.
"""

from repro.simtime.engine import Simulator
from repro.simtime.event_queue import Event, EventQueue
from repro.simtime.process import SimProcess, Timeout

__all__ = ["Simulator", "Event", "EventQueue", "SimProcess", "Timeout"]
