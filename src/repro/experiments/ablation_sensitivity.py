"""A6 — calibration sensitivity: do the classes come from the fabric?

DESIGN.md commits to class structure *emerging* from the link
description rather than being painted on.  Two probes:

1. **Robustness** — jitter every link's DMA credit by ±4 %: the class
   structure of both node-7 models must not change (measurement-scale
   perturbations don't flip the model).
2. **Causality** — repair the single starved direction behind each
   anomaly (2->7 request credits; 7->4 response credits): the
   corresponding class must dissolve.  If the classes were hard-coded
   anywhere downstream, this knob would do nothing.
"""

from __future__ import annotations

from repro.core.iomodel import IOModelBuilder
from repro.experiments.common import IO_NODE, check, default_registry
from repro.experiments.registry import ExperimentResult
from repro.rng import RngRegistry
from repro.topology.builders import reference_host
from repro.topology.serialize import machine_from_dict, machine_to_dict

TITLE = "Ablation: class structure is an emergent property of the fabric"


def _classes(machine, registry: RngRegistry, mode: str, runs: int):
    model = IOModelBuilder(machine, registry=registry, runs=runs).build(IO_NODE, mode)
    return [sorted(c.node_ids) for c in model.classes]


def _perturb_credits(data: dict, factor_fn) -> dict:
    for entry in data["links"]:
        entry["dma_credit"] = min(1.0, entry["dma_credit"] * factor_fn(entry))
    return data


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Jitter and repair the fabric; watch the classes respond."""
    registry = default_registry(registry)
    runs = 5 if quick else 50
    base = reference_host(with_devices=False)
    base_write = _classes(base, registry, "write", runs)
    base_read = _classes(base, registry, "read", runs)

    # --- robustness: +/-4 % credit jitter --------------------------------
    rng = registry.stream("a6/jitter")
    jittered_data = _perturb_credits(
        machine_to_dict(base),
        lambda entry: float(1.0 + rng.uniform(-0.04, 0.04)),
    )
    jittered = machine_from_dict(jittered_data)
    jit_write = _classes(jittered, registry.child("jit"), "write", runs)
    jit_read = _classes(jittered, registry.child("jit"), "read", runs)

    # --- causality: repair the starved 2->7 request direction ------------
    repaired_23 = machine_to_dict(base)
    for entry in repaired_23["links"]:
        if entry["src"] == 2 and entry["dst"] == 7:
            entry["dma_credit"] = 0.87  # like the healthy 0->7 direction
    rep23_write = _classes(
        machine_from_dict(repaired_23), registry.child("r23"), "write", runs
    )

    # --- causality: repair the starved 7->4 response direction -----------
    repaired_4 = machine_to_dict(base)
    for entry in repaired_4["links"]:
        if entry["src"] == 7 and entry["dst"] == 4:
            entry["dma_credit"] = 0.79  # like the healthy 7->0 direction
    rep4_read = _classes(
        machine_from_dict(repaired_4), registry.child("r4"), "read", runs
    )

    checks = (
        check("4 % credit jitter leaves the write classes intact",
              jit_write == base_write, f"{jit_write}"),
        check("4 % credit jitter leaves the read classes intact",
              jit_read == base_read, f"{jit_read}"),
        check(
            "repairing 2->7 credits dissolves write class 3 "
            "(nodes {2,3} join class 2)",
            rep23_write == [[6, 7], [0, 1, 2, 3, 4, 5]],
            f"{rep23_write}",
        ),
        check(
            "repairing 7->4 credits removes the read-class-4 outlier",
            [4] not in rep4_read and len(rep4_read) == len(base_read) - 1,
            f"{rep4_read}",
        ),
    )
    lines = [
        f"baseline write classes: {base_write}",
        f"baseline read classes:  {base_read}",
        f"jittered (+/-4 %):      {jit_write} / {jit_read}",
        f"2->7 repaired (write):  {rep23_write}",
        f"7->4 repaired (read):   {rep4_read}",
    ]
    return ExperimentResult(
        exp_id="a6", title=TITLE, text="\n".join(lines),
        data={
            "base_write": base_write,
            "base_read": base_read,
            "repaired_write": rep23_write,
            "repaired_read": rep4_read,
        },
        checks=checks,
    )
