"""Concrete routed paths and their capacity/latency summaries."""

from __future__ import annotations

from dataclasses import dataclass

from repro.interconnect.link import DirectedLink
from repro.interconnect.planes import Plane

__all__ = ["Path"]


@dataclass(frozen=True)
class Path:
    """A routed path between two NUMA nodes on one traffic plane.

    ``hops`` is the full node sequence including the endpoints; ``links``
    are the corresponding directed links (empty when ``src == dst``).
    """

    plane: Plane
    hops: tuple[int, ...]
    links: tuple[DirectedLink, ...]

    def __post_init__(self) -> None:
        assert len(self.hops) >= 1
        assert len(self.links) == len(self.hops) - 1
        for link, (a, b) in zip(self.links, zip(self.hops, self.hops[1:])):
            assert link.ends == (a, b), f"link {link} does not match hop {a}->{b}"

    @property
    def src(self) -> int:
        """Source node id."""
        return self.hops[0]

    @property
    def dst(self) -> int:
        """Destination node id."""
        return self.hops[-1]

    @property
    def n_hops(self) -> int:
        """Number of fabric links crossed (0 for a local path)."""
        return len(self.links)

    @property
    def is_local(self) -> bool:
        """True when source and destination are the same node."""
        return self.n_hops == 0

    def dma_bottleneck_gbps(self) -> float:
        """Bulk/DMA capacity of the narrowest link on the path.

        ``inf`` for a local path — the caller bounds it by the memory
        controller.
        """
        if not self.links:
            return float("inf")
        return min(link.dma_gbps for link in self.links)

    def pio_bottleneck_gbps(self) -> float:
        """Streaming-PIO cap of the narrowest link on the path (``inf`` local)."""
        if not self.links:
            return float("inf")
        return min(link.pio_gbps for link in self.links)

    def latency_one_way_s(self) -> float:
        """Sum of the per-link latencies along this direction."""
        return sum(link.pio_latency_s for link in self.links)

    def __str__(self) -> str:  # pragma: no cover - repr aid
        return f"{self.plane}:{'->'.join(map(str, self.hops))}"
