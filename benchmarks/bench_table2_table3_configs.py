"""T2/T3 — configuration tables (Table II hardware, Table III fio params)."""


def test_table2_server_configuration(run_paper_experiment):
    run_paper_experiment("t2")


def test_table3_network_parameters(run_paper_experiment):
    run_paper_experiment("t3")
