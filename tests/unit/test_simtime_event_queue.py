"""Event queue ordering and cancellation."""

import pytest

from repro.errors import SimulationError
from repro.simtime.event_queue import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, lambda: "c")
        q.push(1.0, lambda: "a")
        q.push(2.0, lambda: "b")
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_fifo_among_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("first"))
        q.push(1.0, lambda: order.append("second"))
        q.pop().callback()
        q.pop().callback()
        assert order == ["first", "second"]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, lambda: None)
        assert q
        assert len(q) == 1


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        assert q.pop().time == 2.0

    def test_cancelled_not_counted(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        ev.cancel()
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None


class TestErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)
