"""Time-based (fio ``time_based``) jobs."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob, parse_jobfile, write_jobfile
from repro.errors import BenchmarkError
from repro.rng import RngRegistry


@pytest.fixture()
def runner(host):
    return FioRunner(host, RngRegistry())


class TestTimeBased:
    def test_duration_is_runtime(self, runner):
        job = FioJob(name="tb", engine="rdma", rw="write", numjobs=4,
                     cpunodebind=5, runtime_s=30.0)
        result = runner.run(job)
        assert result.duration_s == 30.0

    def test_bandwidth_matches_size_based(self, runner):
        timed = runner.run(
            FioJob(name="tb-t", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=5, runtime_s=60.0)
        ).aggregate_gbps
        sized = runner.run(
            FioJob(name="tb-s", engine="rdma", rw="write", numjobs=4,
                   cpunodebind=5)
        ).aggregate_gbps
        assert timed == pytest.approx(sized, rel=0.03)

    def test_per_stream_rates_present(self, runner):
        job = FioJob(name="tb2", engine="tcp", rw="send", numjobs=2,
                     cpunodebind=6, runtime_s=10.0)
        result = runner.run(job)
        assert len(result.per_stream_gbps) == 2
        assert result.aggregate_gbps == pytest.approx(
            sum(result.per_stream_gbps.values())
        )

    def test_invalid_runtime_rejected(self):
        with pytest.raises(BenchmarkError):
            FioJob(name="x", engine="tcp", rw="send", runtime_s=0)

    def test_jobfile_roundtrip(self):
        job = FioJob(name="tb3", engine="libaio", rw="read", numjobs=2,
                     cpunodebind=0, iodepth=16, runtime_s=45.0)
        back = parse_jobfile(write_jobfile([job]))[0]
        assert back.runtime_s == 45.0

    def test_jobfile_parse_key(self):
        jobs = parse_jobfile("[j]\nioengine=tcp\nrw=send\nruntime=12.5\n")
        assert jobs[0].runtime_s == 12.5
