"""A4 — predictor shoot-out: memcpy model vs hop distance vs STREAM.

The paper dismisses hop distance (§I-A) and STREAM cost models (§IV-B)
qualitatively; this ablation quantifies the gap on a level playing
field.  Each candidate cost model is wrapped in the *same* class /
Eq. 1 machinery, then judged on:

1. rank correlation with measured RDMA_READ bandwidth, and
2. mean Eq. 1 prediction error over every two-class 4-stream mixture.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analysis.baselines import (
    hop_distance_model,
    model_from_values,
    stream_cost_model,
)
from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor
from repro.core.validation import rank_correlation
from repro.experiments.common import IO_NODE, check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import operation_sweep

TITLE = "Ablation: Eq. 1 on memcpy vs hop-distance vs STREAM cost models"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Compare the three cost models as RDMA_READ predictors."""
    m = default_machine(machine)
    registry = default_registry(registry)
    runs = 10 if quick else 100

    candidates = {
        "iomodel": IOModelBuilder(m, registry=registry, runs=runs)
        .build(IO_NODE, "read")
        .values,
        "hop-distance": hop_distance_model(m, IO_NODE),
        "stream": stream_cost_model(m, IO_NODE, "read",
                                    registry=registry.child("a4"), runs=runs),
    }
    runner = FioRunner(m, registry=registry)
    measured = operation_sweep(runner, "rdma", "read", numjobs=4)

    correlations = {
        name: rank_correlation(values, measured)
        for name, values in candidates.items()
    }

    # Eq. 1 over one FIXED mixture set (pairs spanning the true classes),
    # so every candidate is judged on identical workloads.
    probe_nodes = (0, 2, 4, 6)
    mixtures = [(a, a, b, b) for a, b in itertools.combinations(probe_nodes, 2)]
    measured_mix = {
        streams: runner.run(
            FioJob(
                name=f"a4-{streams[0]}{streams[2]}", engine="rdma", rw="read",
                numjobs=4, stream_nodes=streams,
            )
        ).aggregate_gbps
        for streams in mixtures
    }
    errors: dict[str, float] = {}
    for name, values in candidates.items():
        model = model_from_values(m, IO_NODE, "read", values, label=name)
        predictor = MixturePredictor(model, measured)
        per_mixture = [
            abs(predictor.predict_streams(streams) - measured_mix[streams])
            / measured_mix[streams]
            for streams in mixtures
        ]
        errors[name] = float(np.mean(per_mixture))

    checks = (
        check(
            "memcpy model has the highest rank correlation",
            correlations["iomodel"] >= max(correlations.values()) - 1e-9,
            ", ".join(f"{k}: {v:+.3f}" for k, v in sorted(correlations.items())),
        ),
        check(
            "hop distance is a poor read predictor (rho < 0.6)",
            correlations["hop-distance"] < 0.6,
            f"rho = {correlations['hop-distance']:+.3f}",
        ),
        check(
            "memcpy classes give the lowest Eq. 1 mixture error",
            errors["iomodel"] <= min(errors.values()) + 1e-9,
            ", ".join(f"{k}: {100 * v:.1f} %" for k, v in sorted(errors.items())),
        ),
        check(
            "memcpy Eq. 1 error under 6 %",
            errors["iomodel"] < 0.06,
            f"{100 * errors['iomodel']:.1f} %",
        ),
    )
    lines = ["candidate cost models vs measured RDMA_READ:"]
    for name in sorted(candidates):
        lines.append(
            f"  {name:14s} rho={correlations[name]:+.3f}  "
            f"Eq.1 mixture error {100 * errors[name]:5.1f} %"
        )
    return ExperimentResult(
        exp_id="a4", title=TITLE, text="\n".join(lines),
        data={"correlations": correlations, "errors": errors},
        checks=checks,
    )
