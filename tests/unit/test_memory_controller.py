"""Controller resource adapters."""

from repro.memory.controller import MemoryController, controller_capacities


class TestResourceNames:
    def test_names_are_stable(self):
        ctrl = MemoryController(node_id=7, dram_gbps=56.0, pio_ctrl_gbps=31.0)
        assert ctrl.dma_resource == "ctrl-dma:7"
        assert ctrl.pio_resource == "ctrl-pio:7"


class TestCapacities:
    def test_covers_every_node(self, host):
        caps = controller_capacities(host)
        for nid in host.node_ids:
            assert caps[f"ctrl-dma:{nid}"] == host.node(nid).dram_gbps
            assert caps[f"ctrl-pio:{nid}"] == host.node(nid).pio_ctrl_gbps

    def test_count(self, host):
        assert len(controller_capacities(host)) == 2 * host.n_nodes
