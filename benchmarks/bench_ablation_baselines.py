"""A4 — ablation: memcpy model vs hop-distance vs STREAM as predictors."""


def test_ablation_baselines(run_paper_experiment):
    result = run_paper_experiment("a4")
    assert result.data["errors"]["iomodel"] < result.data["errors"]["hop-distance"]
