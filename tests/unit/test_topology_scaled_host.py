"""The scaled reference-style host builder."""

import pytest

from repro.errors import TopologyError
from repro.topology.builders import scaled_host
from repro.topology.distance import hop_matrix


class TestScaledHost:
    def test_shape(self):
        machine = scaled_host(8)
        assert machine.n_nodes == 16
        assert len(machine.packages) == 8

    def test_connected_at_all_sizes(self):
        for n in (2, 3, 5, 16):
            hop_matrix(scaled_host(n))  # raises if disconnected

    def test_deterministic_per_seed(self):
        a = scaled_host(6, seed=3)
        b = scaled_host(6, seed=3)
        assert {e: l.dma_credit for e, l in a.links.items()} == {
            e: l.dma_credit for e, l in b.links.items()
        }

    def test_seeds_differ(self):
        a = scaled_host(6, seed=3)
        b = scaled_host(6, seed=4)
        assert {e: l.dma_credit for e, l in a.links.items()} != {
            e: l.dma_credit for e, l in b.links.items()
        }

    def test_zero_asymmetry_has_no_starved_links(self):
        machine = scaled_host(6, asymmetry_fraction=0.0)
        inter = [l for l in machine.links.values() if l.kind.value == "ht"]
        assert all(l.dma_credit > 0.8 for l in inter)

    def test_full_asymmetry_starves_everything(self):
        machine = scaled_host(6, asymmetry_fraction=1.0)
        inter = [l for l in machine.links.values() if l.kind.value == "ht"]
        assert all(l.dma_credit < 0.61 for l in inter)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            scaled_host(1)

    def test_algorithm1_finds_structure(self):
        from repro.core.iomodel import IOModelBuilder

        machine = scaled_host(8, asymmetry_fraction=0.4)
        model = IOModelBuilder(machine, runs=5).build(0, "write")
        assert model.n_classes >= 2
