"""CLI byte-identity across the worker fabric.

The contract ``scripts/fabric_smoke.sh`` gates in CI, exercised here
in-process: ``--jobs N`` changes wall-clock, never bytes.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.cli.main import main
from repro.fabric import live_segments

pytestmark = pytest.mark.fabric


def _run(argv: "list[str]") -> "tuple[int, str]":
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        rc = main(argv)
    return rc, stdout.getvalue()


@pytest.fixture(autouse=True)
def _no_leaks():
    yield
    assert live_segments() == []


def test_iomodel_sweep_stdout_identical_across_jobs():
    base = ["iomodel", "--targets", "0,2,5,7", "--mode", "write",
            "--runs", "8"]
    rc_serial, serial = _run(base)
    rc_sharded, sharded = _run(base + ["--jobs", "3"])
    assert rc_serial == rc_sharded == 0
    assert serial == sharded
    assert serial.count("per-node memcpy write bandwidth") == 4


def test_iomodel_both_mode_identical_across_jobs():
    base = ["iomodel", "--targets", "all", "--runs", "5"]
    rc_serial, serial = _run(base)
    rc_sharded, sharded = _run(base + ["--jobs", "4"])
    assert rc_serial == rc_sharded == 0
    assert serial == sharded


def test_iomodel_single_target_unchanged_by_targets_flag():
    rc_a, single = _run(["iomodel", "--target", "7", "--mode", "read",
                         "--runs", "5"])
    rc_b, listed = _run(["iomodel", "--targets", "7", "--mode", "read",
                         "--runs", "5"])
    assert rc_a == rc_b == 0
    assert single == listed


def test_iomodel_rejects_bad_targets_and_jobs(capsys):
    rc, _ = _run(["iomodel", "--targets", "1,x"])
    assert rc != 0
    assert "--targets" in capsys.readouterr().err
    rc, _ = _run(["iomodel", "--targets", "0,1", "--jobs", "0"])
    assert rc != 0
    assert "--jobs" in capsys.readouterr().err


def test_obs_manifest_ledger_identical_across_jobs(tmp_path):
    """Satellite (a): worker draws land in the parent manifest."""
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    base = ["iomodel", "--targets", "0,3,6", "--mode", "write", "--runs", "5"]
    rc_serial, serial = _run(base + ["--obs-dir", str(serial_dir)])
    rc_sharded, sharded = _run(
        base + ["--jobs", "3", "--obs-dir", str(sharded_dir)]
    )
    assert rc_serial == rc_sharded == 0
    assert serial == sharded

    manifest_serial = json.loads((serial_dir / "manifest.json").read_text())
    manifest_sharded = json.loads((sharded_dir / "manifest.json").read_text())
    streams = manifest_serial["seed"]["streams"]
    assert streams == manifest_sharded["seed"]["streams"]
    assert streams, "expected a non-empty draw ledger"

    # Worker spans survive the process boundary: the sharded trace holds
    # the same solver span names, nested under fabric.worker containers.
    def span_names(obs_dir):
        with open(obs_dir / "trace.jsonl", encoding="utf-8") as handle:
            return [json.loads(line)["name"] for line in handle]

    serial_names = span_names(serial_dir)
    sharded_names = span_names(sharded_dir)
    assert "iomodel.build_many" in serial_names
    assert sharded_names.count("iomodel.build_many") == 3
    assert sharded_names.count("fabric.build_many") == 3


def test_experiment_all_artifacts_identical_across_jobs(tmp_path):
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    rc_serial, _ = _run(["experiment", "all", "--quick",
                         "--outdir", str(serial_dir)])
    rc_sharded, out = _run(["experiment", "all", "--quick", "--jobs", "2",
                            "--outdir", str(sharded_dir)])
    assert rc_serial == rc_sharded == 0
    assert "crashed" not in out and "CRASH" not in out
    serial_files = sorted(p.name for p in serial_dir.iterdir())
    assert serial_files == sorted(p.name for p in sharded_dir.iterdir())
    assert serial_files, "expected experiment artifacts"
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (
            sharded_dir / name
        ).read_bytes()
