"""What-if machine modifications."""

import pytest

from repro.errors import TopologyError
from repro.topology.builders import parametric_machine
from repro.topology.modify import with_dram_gbps, with_link_credit, with_link_removed


class TestWithLinkCredit:
    def test_changes_one_direction_only(self, bare_host):
        modified = with_link_credit(bare_host, 2, 7, 0.87)
        assert modified.link(2, 7).dma_credit == 0.87
        assert modified.link(7, 2).dma_credit == bare_host.link(7, 2).dma_credit

    def test_original_untouched(self, bare_host):
        with_link_credit(bare_host, 2, 7, 0.87)
        assert bare_host.link(2, 7).dma_credit == 0.52

    def test_dissolves_write_class3(self, bare_host):
        from repro.core.iomodel import IOModelBuilder

        repaired = with_link_credit(bare_host, 2, 7, 0.87)
        model = IOModelBuilder(repaired, runs=5).build(7, "write")
        assert [sorted(c.node_ids) for c in model.classes] == [
            [6, 7], [0, 1, 2, 3, 4, 5]
        ]

    def test_renamed(self, bare_host):
        assert "credit2>7" in with_link_credit(bare_host, 2, 7, 0.9).name

    def test_missing_link_rejected(self, bare_host):
        with pytest.raises(TopologyError):
            with_link_credit(bare_host, 0, 5, 0.9)


class TestWithLinkRemoved:
    def test_removes_both_directions(self, bare_host):
        modified = with_link_removed(bare_host, 3, 4)
        with pytest.raises(TopologyError):
            modified.link(3, 4)
        with pytest.raises(TopologyError):
            modified.link(4, 3)

    def test_traffic_reroutes(self, bare_host):
        # Without the 2<->7 cable, node 2's writes detour; the bottleneck
        # changes because the starved 2->7 direction is gone.
        modified = with_link_removed(bare_host, 2, 7)
        assert modified.dma_path_gbps(2, 7) != bare_host.dma_path_gbps(2, 7)

    def test_disconnection_refused(self):
        machine = parametric_machine(2)  # single inter-package cable
        gateway_link = next(
            (a, b) for (a, b) in machine.links
            if machine.node(a).package_id != machine.node(b).package_id
        )
        with pytest.raises(TopologyError):
            with_link_removed(machine, *gateway_link)


class TestWithDram:
    def test_slower_memory_caps_local_copies(self, bare_host):
        modified = with_dram_gbps(bare_host, 7, 30.0)
        assert modified.dma_path_gbps(7, 7) == pytest.approx(30.0)
        assert bare_host.dma_path_gbps(7, 7) == pytest.approx(56.0)

    def test_invalid_value_rejected(self, bare_host):
        with pytest.raises(TopologyError):
            with_dram_gbps(bare_host, 7, 0)

    def test_unknown_node_rejected(self, bare_host):
        with pytest.raises(TopologyError):
            with_dram_gbps(bare_host, 42, 50.0)
