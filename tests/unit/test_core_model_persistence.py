"""Model save/load."""

import json

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.model import IOPerformanceModel
from repro.errors import ModelError


@pytest.fixture(scope="module")
def model(host):
    from repro.rng import RngRegistry

    return IOModelBuilder(host, registry=RngRegistry(), runs=10).build(7, "read")


class TestPersistence:
    def test_roundtrip(self, model):
        back = IOPerformanceModel.from_dict(model.to_dict())
        assert back.values == model.values
        assert back.mode == model.mode
        assert back.target_node == model.target_node
        assert [c.node_ids for c in back.classes] == [
            c.node_ids for c in model.classes
        ]

    def test_json_safe(self, model):
        text = json.dumps(model.to_dict())
        back = IOPerformanceModel.from_dict(json.loads(text))
        assert back.class_of(4).rank == model.class_of(4).rank

    def test_loaded_model_is_usable(self, model, host):
        from repro.core.predictor import MixturePredictor

        back = IOPerformanceModel.from_dict(model.to_dict())
        sweep = {n: 20.0 for n in host.node_ids}
        predictor = MixturePredictor(back, sweep)
        assert predictor.predict_streams([2, 0]) == pytest.approx(20.0)

    def test_version_checked(self, model):
        data = model.to_dict()
        data["format_version"] = 42
        with pytest.raises(ModelError):
            IOPerformanceModel.from_dict(data)

    def test_malformed_rejected(self, model):
        data = model.to_dict()
        del data["classes"][0]["node_ids"]
        with pytest.raises(ModelError):
            IOPerformanceModel.from_dict(data)
