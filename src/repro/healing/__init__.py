"""Self-healing control plane: quarantine, repair, promote.

Closes the detect→repair loop over the rest of the stack: the fault
layer and the drift watch *detect* that the machine moved; this package
*repairs* the service's tiered answer path — targeted quarantine of the
affected ``(target, mode)`` tier entries, bounded background
re-characterization with seeded backoff, verification, and atomic
promotion back into tiers 1–2.  See
:class:`~repro.healing.repair.RepairSupervisor`.
"""

from repro.healing.repair import BACKOFF_STREAM, RepairJob, RepairSupervisor

__all__ = ["BACKOFF_STREAM", "RepairJob", "RepairSupervisor"]
