"""The paper's headline quantitative facts, end to end.

These are the acceptance criteria from DESIGN.md §4, asserted against
the full pipeline (not the capacity model directly): Tables IV/V class
structure, the STREAM prose facts, the RDMA_READ reversal, Eq. 1.
"""

import numpy as np
import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.bench.stream import StreamBenchmark
from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor
from repro.experiments.paper_values import (
    TABLE4_AVG,
    TABLE4_CLASSES,
    TABLE5_AVG,
    TABLE5_CLASSES,
)


@pytest.fixture(scope="module")
def models(host):
    from repro.rng import RngRegistry

    builder = IOModelBuilder(host, registry=RngRegistry(), runs=30)
    return builder.build_both(7)


@pytest.fixture(scope="module")
def sweeps(host):
    runner = FioRunner(host)
    out = {}
    for engine, rw in (
        ("tcp", "send"), ("tcp", "recv"),
        ("rdma", "write"), ("rdma", "read"),
        ("libaio", "write"), ("libaio", "read"),
    ):
        job = FioJob(name=f"facts-{engine}-{rw}", engine=engine, rw=rw, numjobs=4)
        out[f"{engine}_{rw}"] = {
            node: runner.run(job.with_node(node)).aggregate_gbps
            for node in host.node_ids
        }
    return out


def _class_avgs(values, classes):
    return [float(np.mean([values[n] for n in group])) for group in classes]


class TestTable4:
    def test_memcpy_classes(self, models):
        write, _ = models
        assert [sorted(c.node_ids) for c in write.classes] == TABLE4_CLASSES

    @pytest.mark.parametrize("op,key", [
        ("tcp_send", "tcp_send"),
        ("rdma_write", "rdma_write"),
        ("libaio_write", "ssd_write"),
    ])
    def test_operation_class_averages(self, sweeps, op, key):
        measured = _class_avgs(sweeps[op], TABLE4_CLASSES)
        for got, paper in zip(measured, TABLE4_AVG[key]):
            assert got == pytest.approx(paper, rel=0.10)


class TestTable5:
    def test_memcpy_classes(self, models):
        _, read = models
        assert [sorted(c.node_ids) for c in read.classes] == TABLE5_CLASSES

    @pytest.mark.parametrize("op,key,tol", [
        ("tcp_recv", "tcp_recv", 0.12),
        ("rdma_read", "rdma_read", 0.10),
        ("libaio_read", "ssd_read", 0.10),
    ])
    def test_operation_class_averages(self, sweeps, op, key, tol):
        measured = _class_avgs(sweeps[op], TABLE5_CLASSES)
        for got, paper in zip(measured, TABLE5_AVG[key]):
            assert got == pytest.approx(paper, rel=tol)


class TestFlagshipReversal:
    def test_stream_ranks_01_above_23(self, host):
        row = StreamBenchmark(host, runs=10).cpu_centric(7)
        assert np.mean([row[0], row[1]]) > 1.4 * np.mean([row[2], row[3]])

    def test_rdma_read_ranks_23_above_01(self, sweeps):
        rdma = sweeps["rdma_read"]
        deficit = 1 - np.mean([rdma[0], rdma[1]]) / np.mean([rdma[2], rdma[3]])
        # Paper: {0,1} below {2,3} by 15 - 18.4 %.
        assert 0.10 <= deficit <= 0.25


class TestEq1:
    def test_mixture_prediction(self, host, models, sweeps):
        _, read = models
        predictor = MixturePredictor(read, sweeps["rdma_read"])
        runner = FioRunner(host)
        mixed = runner.run(
            FioJob(name="facts-eq1", engine="rdma", rw="read", numjobs=4,
                   stream_nodes=(2, 2, 0, 0))
        )
        report = predictor.validate(mixed.aggregate_gbps, [2, 2, 0, 0])
        assert report.predicted_gbps == pytest.approx(20.017, rel=0.05)
        assert report.relative_error <= 0.06


class TestStreamProse:
    def test_quoted_pair(self, host):
        bench = StreamBenchmark(host, runs=50)
        assert bench.measure(7, 4).gbps == pytest.approx(21.34, rel=0.05)
        assert bench.measure(4, 7).gbps == pytest.approx(18.45, rel=0.05)

    def test_node0_diagonal_maximum(self, host):
        bench = StreamBenchmark(host, runs=10)
        diag = {n: bench.measure(n, n).gbps for n in host.node_ids}
        assert max(diag, key=diag.get) == 0
