"""Batched routing + vectorized characterization benchmarks.

The evidence behind BENCH_routing.json: all-pairs route computation at
8/32/64 nodes through the batched engine, the vectorized Algorithm 1
sweep, and the parallel ``repro-numa experiment all --jobs`` runner.
Recorded and gated by ``scripts/bench_smoke.sh`` with the same
pytest-benchmark machinery as BENCH_solver.json.
"""

from __future__ import annotations

import pytest

from repro.cli.main import main
from repro.core.characterize import HostCharacterizer
from repro.rng import RngRegistry
from repro.routing.table import RoutingTable
from repro.topology.builders import hp_blade_32n, reference_host, scaled_host


def _route_all_pairs(machine):
    table = RoutingTable(machine.links)
    count = 0
    for plane in ("pio", "dma"):
        for src in machine.node_ids:
            for dst in machine.node_ids:
                if src != dst:
                    table.route(plane, src, dst)
                    count += 1
    return count


@pytest.fixture(scope="module")
def host8():
    return reference_host(with_devices=False)


@pytest.fixture(scope="module")
def blade32():
    return hp_blade_32n()


@pytest.fixture(scope="module")
def host64():
    return scaled_host(32)  # 64 nodes, seeded credit asymmetries


@pytest.fixture(scope="module")
def host256():
    return scaled_host(128)  # 256 nodes, the data-centre-scale tier


def test_perf_routing_all_pairs_8_nodes(benchmark, host8):
    """Every (pair, plane) of the reference host via the batched engine."""
    assert benchmark(_route_all_pairs, host8) == 2 * 8 * 7


def test_perf_routing_all_pairs_32_nodes_batched(benchmark, blade32):
    """Every (pair, plane) of the 32-node blade via the batched engine."""
    assert benchmark(_route_all_pairs, blade32) == 2 * 32 * 31


def test_perf_routing_all_pairs_64_nodes(benchmark, host64):
    """Every (pair, plane) of a 64-node asymmetric host."""
    assert benchmark(_route_all_pairs, host64) == 2 * 64 * 63


def test_perf_routing_all_pairs_256_nodes(benchmark, host256):
    """Every (pair, plane) of a 256-node asymmetric host.

    The scale tier: 130,560 routed pairs per round, dominated by the
    batched BFS sweep rather than per-pair dictionary hits.
    """
    assert benchmark(_route_all_pairs, host256) == 2 * 256 * 255


def test_perf_routing_populate_64_nodes(benchmark, host64):
    """The batch populate itself (both planes), no per-pair lookups."""

    def populate_both():
        table = RoutingTable(host64.links)
        table.populate("pio")
        table.populate("dma")
        return table

    benchmark(populate_both)


def test_perf_routing_incremental_reroute_64_nodes(benchmark, host64):
    """Single-cable-failure re-route vs the full repopulate it replaces.

    Fails a leaf die's only (SRI) cable on the 64-node host — the
    dominant chaos fault shape, a node isolation — and derives the
    faulted table incrementally.  Hard-asserts the self-healing
    acceptance bar: the incremental re-route is >= 5x faster than
    repopulating all pairs, and bit-identical to it.
    """
    import time

    table = RoutingTable(host64.links)
    table.populate("pio")
    table.populate("dma")
    adj = table.adjacency
    leaf = min(n for n, nbrs in adj.items() if len(nbrs) == 1)
    sib = adj[leaf][0]
    faulted = {
        ends: link
        for ends, link in host64.links.items()
        if set(ends) != {leaf, sib}
    }
    table.derive(faulted)  # warm the usage/per-plane route caches

    derived = benchmark(table.derive, faulted)
    assert derived.last_reroute["dma"].pairs_rerouted == 0  # drop-only path

    def full_rebuild():
        fresh = RoutingTable(faulted)
        fresh.populate("pio", strict=False)
        fresh.populate("dma", strict=False)
        return fresh

    def best_of(fn, n=5):
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    fresh = full_rebuild()
    assert derived._cache == fresh._cache
    t_inc = best_of(lambda: table.derive(faulted))
    t_full = best_of(full_rebuild)
    assert t_full >= 5.0 * t_inc, (
        f"incremental re-route only {t_full / t_inc:.1f}x faster than a "
        f"full repopulate (need >= 5x)"
    )


def test_perf_iomodel_sweep_32_nodes(benchmark, blade32):
    """Vectorized Algorithm 1: both modes for two targets in one sweep."""

    def sweep():
        characterizer = HostCharacterizer(
            blade32, registry=RngRegistry(), runs=25
        )
        return characterizer.characterize_many((0, 16))

    results = benchmark(sweep)
    assert sorted(results) == [0, 16]


def test_perf_experiment_all_two_jobs(benchmark):
    """The parallel CLI runner: all 21 quick experiments, two workers."""

    def run_all():
        return main(["experiment", "all", "--quick", "--jobs", "2"])

    assert benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0) == 0
