"""repro — reproduction of the ICPP 2013 NUMA I/O bandwidth paper.

The library has three layers:

1. **Substrate** — a flow-level NUMA machine simulator: topology
   (:mod:`repro.topology`), interconnect and routing
   (:mod:`repro.interconnect`, :mod:`repro.routing`), memory and OS
   models (:mod:`repro.memory`, :mod:`repro.osmodel`), PCIe devices
   (:mod:`repro.devices`), and max-min flow contention
   (:mod:`repro.flows`).
2. **Benchmarks** — STREAM and a fio-like runner (:mod:`repro.bench`)
   that execute against the substrate exactly the way the paper ran them
   against hardware.
3. **The paper's contribution** — :mod:`repro.core`: Algorithm 1
   (memcpy-based I/O characterization), class models (Tables IV/V), the
   Eq. 1 mixture predictor, and the placement advisor.

Quickstart::

    from repro import reference_host, IOModelBuilder

    host = reference_host()
    model = IOModelBuilder(host).build(target_node=7, mode="write")
    print(model.render())
"""

from repro.rng import DEFAULT_SEED, RngRegistry
from repro.topology.builders import (
    amd_4s8n,
    amd_8s8n,
    hp_blade_32n,
    intel_4s4n,
    magny_cours_4p,
    parametric_machine,
    reference_host,
)
from repro.topology.machine import Machine, MachineParams, Relation

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "RngRegistry",
    "Machine",
    "MachineParams",
    "Relation",
    "reference_host",
    "magny_cours_4p",
    "intel_4s4n",
    "amd_4s8n",
    "amd_8s8n",
    "hp_blade_32n",
    "parametric_machine",
]


def __getattr__(name: str):
    """Lazy re-exports of the higher layers (keeps import time low)."""
    lazy = {
        "IOModelBuilder": ("repro.core.iomodel", "IOModelBuilder"),
        "IOPerformanceModel": ("repro.core.model", "IOPerformanceModel"),
        "MixturePredictor": ("repro.core.predictor", "MixturePredictor"),
        "PlacementAdvisor": ("repro.core.scheduler_advisor", "PlacementAdvisor"),
        "StreamBenchmark": ("repro.bench.stream", "StreamBenchmark"),
        "FioRunner": ("repro.bench.fio", "FioRunner"),
        "FioJob": ("repro.bench.jobfile", "FioJob"),
    }
    if name in lazy:
        module_name, attr = lazy[name]
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
