#!/usr/bin/env python3
"""Quickstart: characterise a NUMA host's I/O bandwidth without touching
its I/O devices, then use the model.

This walks the paper's core loop in ~40 lines:

1. build the (simulated) reference host — an 8-node AMD 4P box with a
   40 GbE NIC and two PCIe SSDs behind node 7;
2. run Algorithm 1 (`IOModelBuilder`): bulk memcpy probes that imitate
   the devices' DMA engines;
3. read the class structure off the resulting models;
4. predict a multi-user aggregate with Eq. 1 and check it against a
   real (simulated) fio run.

Run:  python examples/quickstart.py
"""

from repro import reference_host
from repro.bench import FioJob, FioRunner
from repro.core import IOModelBuilder, MixturePredictor

def main() -> None:
    host = reference_host()
    print(f"host: {host}\n")

    # --- Algorithm 1: model node 7 (where the devices live) -------------
    builder = IOModelBuilder(host)
    write_model, read_model = builder.build_both(target_node=7)
    print(write_model.render())
    print()
    print(read_model.render())

    # --- the model's first use: fewer benchmark configurations ----------
    print(
        f"\nProbe one node per class instead of all {host.n_nodes}: "
        f"{read_model.representative_nodes()} "
        f"({100 * read_model.probe_cost_reduction():.0f} % fewer read probes)"
    )

    # --- the model's second use: Eq. 1 multi-user prediction ------------
    runner = FioRunner(host)
    rdma_read = {
        node: runner.run(
            FioJob(name=f"qs-{node}", engine="rdma", rw="read",
                   numjobs=4, cpunodebind=node)
        ).aggregate_gbps
        for node in host.node_ids
    }
    predictor = MixturePredictor(read_model, rdma_read)

    streams = (2, 2, 0, 0)  # the paper's example: 2 from node 2, 2 from node 0
    mixed = runner.run(
        FioJob(name="qs-mix", engine="rdma", rw="read",
               numjobs=len(streams), stream_nodes=streams)
    )
    report = predictor.validate(mixed.aggregate_gbps, streams)
    print(f"\nEq. 1 on streams {streams}: {report.render()}")


if __name__ == "__main__":
    main()
