"""Algorithm 1 implementation."""

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.errors import ModelError


class TestBuilder:
    def test_threads_per_node(self, host):
        assert IOModelBuilder(host).threads_per_node() == 4

    def test_buffer_must_defeat_cache(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host, buffer_bytes=host.params.llc_bytes)

    def test_runs_validated(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host, runs=0)

    def test_measure_pair_protocol(self, host):
        builder = IOModelBuilder(host, runs=25)
        m = builder.measure_pair(0, 7, "write")
        assert m.protocol == "mean"
        assert m.runs == 25
        assert m.gbps == pytest.approx(44.5, rel=0.05)

    def test_measure_pair_mode_validated(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host).measure_pair(0, 7, "sideways")

    def test_unknown_target_rejected(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host).build(42, "write")

    def test_build_mode_validated(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host).build(7, "sideways")

    def test_negative_sigma_rejected(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host, sigma=-0.1)

    def test_vectorized_build_matches_measure_pair_loop(self, host, registry):
        builder = IOModelBuilder(host, registry=registry, runs=10)
        for mode in ("write", "read"):
            model = builder.build(7, mode)
            assert model.values == {
                i: builder.measure_pair(i, 7, mode).gbps for i in host.node_ids
            }

    def test_build_many_matches_single_builds(self, host, registry):
        builder = IOModelBuilder(host, registry=registry, runs=10)
        swept = builder.build_many((0, 7), "write")
        assert sorted(swept) == [0, 7]
        for target in (0, 7):
            assert swept[target].values == builder.build(target, "write").values

    def test_build_many_unknown_target_rejected(self, host):
        with pytest.raises(ModelError):
            IOModelBuilder(host).build_many((7, 42), "write")


class TestModels:
    def test_write_model_matches_paper(self, host, registry):
        model = IOModelBuilder(host, registry=registry, runs=20).build(7, "write")
        assert [sorted(c.node_ids) for c in model.classes] == [
            [6, 7], [0, 1, 4, 5], [2, 3]
        ]
        assert model.mode == "write"
        assert model.threads == 4

    def test_read_model_matches_paper(self, host, registry):
        model = IOModelBuilder(host, registry=registry, runs=20).build(7, "read")
        assert [sorted(c.node_ids) for c in model.classes] == [
            [6, 7], [2, 3], [0, 1, 5], [4]
        ]

    def test_build_both(self, host, registry):
        write, read = IOModelBuilder(host, registry=registry, runs=5).build_both(7)
        assert write.mode == "write"
        assert read.mode == "read"

    def test_deterministic(self, host):
        a = IOModelBuilder(host, runs=10).build(7, "write").values
        b = IOModelBuilder(host, runs=10).build(7, "write").values
        assert a == b

    def test_generalises_to_other_targets(self, host, registry):
        # §V-B: "The methodology ... can also be generalized to other
        # nodes in the host."
        model = IOModelBuilder(host, registry=registry, runs=5).build(0, "write")
        assert 0 in model.class_by_rank(1).node_ids
        assert 1 in model.class_by_rank(1).node_ids

    def test_no_device_consulted(self, registry):
        # The methodology must work on a device-free machine.
        from repro.topology.builders import reference_host

        bare = reference_host(with_devices=False)
        model = IOModelBuilder(bare, registry=registry, runs=5).build(7, "read")
        assert [sorted(c.node_ids) for c in model.classes] == [
            [6, 7], [2, 3], [0, 1, 5], [4]
        ]
