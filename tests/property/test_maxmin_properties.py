"""Property-based tests for the max-min solver.

Invariants: feasibility (no resource over capacity), demand respect,
work conservation (every flow is either demand-capped or crosses a
saturated resource), and scale covariance.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.flow import Flow
from repro.flows.maxmin import maxmin_allocate

RESOURCES = ["r0", "r1", "r2", "r3", "r4"]


@st.composite
def problems(draw):
    n_resources = draw(st.integers(min_value=1, max_value=5))
    names = RESOURCES[:n_resources]
    caps = {
        r: draw(st.floats(min_value=0.5, max_value=100.0,
                          allow_nan=False, allow_infinity=False))
        for r in names
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        subset = draw(
            st.sets(st.sampled_from(names), min_size=1, max_size=n_resources)
        )
        demand = draw(
            st.one_of(
                st.just(math.inf),
                st.floats(min_value=0.1, max_value=50.0,
                          allow_nan=False, allow_infinity=False),
            )
        )
        weight = draw(st.floats(min_value=0.25, max_value=4.0,
                                allow_nan=False, allow_infinity=False))
        flows.append(
            Flow(name=f"f{i}", resources=tuple(sorted(subset)),
                 demand_gbps=demand, weight=weight)
        )
    return flows, caps


@given(problems())
@settings(max_examples=200, deadline=None)
def test_feasible_and_demand_respecting(problem):
    flows, caps = problem
    rates = maxmin_allocate(flows, caps)
    loads = {r: 0.0 for r in caps}
    for f in flows:
        assert rates[f.name] >= -1e-9
        assert rates[f.name] <= f.demand_gbps + 1e-6
        for r in f.resources:
            loads[r] += rates[f.name]
    for r, load in loads.items():
        assert load <= caps[r] * (1 + 1e-6) + 1e-6


@given(problems())
@settings(max_examples=200, deadline=None)
def test_work_conserving(problem):
    """Every flow is blocked by its demand or by a saturated resource."""
    flows, caps = problem
    rates = maxmin_allocate(flows, caps)
    loads = {r: 0.0 for r in caps}
    for f in flows:
        for r in f.resources:
            loads[r] += rates[f.name]
    saturated = {r for r in caps if loads[r] >= caps[r] * (1 - 1e-6) - 1e-6}
    for f in flows:
        demand_capped = rates[f.name] >= f.demand_gbps - 1e-6
        bottlenecked = any(r in saturated for r in f.resources)
        assert demand_capped or bottlenecked, f.name


@given(problems(), st.floats(min_value=0.5, max_value=4.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_scale_covariance(problem, scale):
    """Scaling all capacities and finite demands scales all rates."""
    flows, caps = problem
    base = maxmin_allocate(flows, caps)
    scaled_flows = [
        Flow(
            name=f.name,
            resources=f.resources,
            demand_gbps=f.demand_gbps * scale if math.isfinite(f.demand_gbps)
            else math.inf,
            weight=f.weight,
        )
        for f in flows
    ]
    scaled = maxmin_allocate(scaled_flows, {r: c * scale for r, c in caps.items()})
    for f in flows:
        assert scaled[f.name] >= base[f.name] * scale * (1 - 1e-6) - 1e-6
        assert scaled[f.name] <= base[f.name] * scale * (1 + 1e-6) + 1e-6


@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    st.lists(st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
             min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_adding_a_flow_never_helps_on_shared_bottleneck(n_flows, cap, demands):
    """On a single shared resource, one more elastic flow never increases
    anyone else's rate.  (In multi-resource networks max-min allocation is
    NOT monotone this way — an intruder can throttle side-bottlenecked
    flows and free shared capacity — so the property is asserted only
    where it holds.)
    """
    flows = [
        Flow(name=f"f{i}", resources=("r",),
             demand_gbps=demands[i % len(demands)])
        for i in range(n_flows)
    ]
    base = maxmin_allocate(flows, {"r": cap})
    intruder = Flow(name="intruder", resources=("r",))
    extended = maxmin_allocate(flows + [intruder], {"r": cap})
    for f in flows:
        assert extended[f.name] <= base[f.name] + 1e-6
