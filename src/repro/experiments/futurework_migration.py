"""FW1 — the paper's future work #1: online placement and migration.

§VI: "we will continue working on the mechanisms of placing and
migrating parallel I/O threads for data-intensive applications based on
the result of our characterization methodology."  This experiment runs
that mechanism over a seeded multi-user RDMA_WRITE arrival process:

* ``local`` — every stream on the device node (Linux default + naive
  locality);
* ``random`` — affinity roulette;
* ``class-spread`` — model-driven admission placement (§V-B online);
* ``class-migrate`` — streams arrive local (unmodified applications),
  the controller migrates them per the class model, paying a stall per
  move.
"""

from __future__ import annotations

from repro.core.iomodel import IOModelBuilder
from repro.core.migration import OnlineSimulator, OnlineWorkload
from repro.experiments.common import IO_NODE, check, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Future work: online placement and migration of parallel I/O streams"

N_STREAMS = 60
ARRIVAL_RATE = 0.12  # streams per second: enough pressure to queue


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Compare the four online policies on one workload."""
    m = default_machine(machine)
    registry = default_registry(registry)
    model = IOModelBuilder(m, registry=registry, runs=10 if quick else 100).build(
        IO_NODE, "write"
    )
    # Quick mode uses fewer streams, so it raises the arrival rate to
    # keep enough queueing pressure for the policies to differ.
    rate = 0.2 if quick else ARRIVAL_RATE
    workload = OnlineWorkload(registry.child("fw1"), rate_per_s=rate)
    jobs = workload.generate(30 if quick else N_STREAMS)
    simulator = OnlineSimulator(m, model, registry=registry.child("sim"))
    outcomes = simulator.compare(jobs)

    local = outcomes["local"]
    spread = outcomes["class-spread"]
    migrate = outcomes["class-migrate"]
    spread_gain = local.mean_completion_s / spread.mean_completion_s - 1
    migrate_gain = local.mean_completion_s / migrate.mean_completion_s - 1

    checks = (
        check(
            "class-spread beats all-local on mean completion time (>4 %)",
            spread_gain > 0.04,
            f"{local.mean_completion_s:.1f} s -> {spread.mean_completion_s:.1f} s "
            f"(+{100 * spread_gain:.1f} %)",
        ),
        check(
            "class-spread is the best policy overall",
            spread.mean_completion_s
            <= min(o.mean_completion_s for o in outcomes.values()) + 1e-9,
        ),
        check(
            "migration recovers most of the gap for unmodified apps",
            migrate.mean_completion_s < local.mean_completion_s
            and migrate_gain > 0.5 * spread_gain,
            f"migrate +{100 * migrate_gain:.1f} % vs spread +{100 * spread_gain:.1f} %",
        ),
        check(
            "the migration controller actually migrates (and not wildly)",
            0 < migrate.migrations <= 3 * len(jobs),
            f"{migrate.migrations} migrations over {len(jobs)} streams",
        ),
    )
    lines = [f"{len(jobs)} RDMA_WRITE streams, Poisson arrivals "
             f"({rate}/s), per-stream sizes ~40 GB:"]
    for policy in ("local", "random", "class-spread", "class-migrate"):
        lines.append("  " + outcomes[policy].render())
    return ExperimentResult(
        exp_id="fw1", title=TITLE, text="\n".join(lines),
        data={p: o.mean_completion_s for p, o in outcomes.items()},
        checks=checks,
    )
