"""PCIe devices: NICs, SSDs, their DMA engines and interrupts.

Devices attach to a NUMA node (via that node's I/O hub) and expose
*engine profiles* — calibrated response curves mapping the DMA-plane
path bandwidth between a buffer's node and the device's node to the
bandwidth an I/O protocol achieves over that placement.  The curves are
phenomenological on purpose: the paper's position is that device-level
behaviour cannot be derived from topology and must be measured; our
curves are fitted to the paper's Tables IV/V measurements, and the
*methodology under test* (Algorithm 1) never reads them — it only sees
memcpy bandwidth.
"""

from repro.devices.dma import DmaEngine
from repro.devices.fit import CurveFit, fit_engine_profile, fit_response_curve
from repro.devices.interrupts import IrqModel
from repro.devices.nic import Nic
from repro.devices.pcie import PcieLink
from repro.devices.response import EngineProfile, ResponseCurve
from repro.devices.ssd import SsdArray
from repro.devices.standard import attach_reference_devices

__all__ = [
    "DmaEngine",
    "IrqModel",
    "Nic",
    "PcieLink",
    "EngineProfile",
    "ResponseCurve",
    "SsdArray",
    "attach_reference_devices",
    "CurveFit",
    "fit_response_curve",
    "fit_engine_profile",
]
