"""Result containers."""

import numpy as np
import pytest

from repro.bench.results import BandwidthMatrix, JobResult, Measurement
from repro.errors import BenchmarkError


class TestMeasurement:
    def test_max_protocol(self):
        m = Measurement.from_samples([1.0, 3.0, 2.0], protocol="max")
        assert m.gbps == 3.0
        assert m.runs == 3
        assert m.spread == 2.0

    def test_mean_protocol(self):
        m = Measurement.from_samples([1.0, 3.0], protocol="mean")
        assert m.gbps == 2.0

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            Measurement.from_samples([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(BenchmarkError):
            Measurement(gbps=1.0, samples=(1.0,), protocol="median")


class TestBandwidthMatrix:
    def _matrix(self):
        values = np.array([[10.0, 5.0], [4.0, 9.0]])
        return BandwidthMatrix(node_ids=(0, 1), values=values)

    def test_at(self):
        assert self._matrix().at(0, 1) == 5.0

    def test_row_is_cpu_centric(self):
        assert self._matrix().row(0) == {0: 10.0, 1: 5.0}

    def test_col_is_memory_centric(self):
        assert self._matrix().col(0) == {0: 10.0, 1: 4.0}

    def test_asymmetry(self):
        # |5-4|/5 = 0.2 is the worst pair.
        assert self._matrix().asymmetry() == pytest.approx(0.2)

    def test_render_layout(self):
        text = self._matrix().render()
        assert "MEM0" in text and "CPU1" in text

    def test_unknown_node_rejected(self):
        with pytest.raises(BenchmarkError):
            self._matrix().at(5, 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(BenchmarkError):
            BandwidthMatrix(node_ids=(0, 1), values=np.zeros((3, 3)))


class TestJobResult:
    def test_numjobs_and_render(self):
        result = JobResult(
            job_name="j", engine="tcp:send", streams=((7, 7), (6, 6)),
            per_stream_gbps={"j/0": 5.0, "j/1": 5.5},
            aggregate_gbps=10.5, duration_s=160.0,
        )
        assert result.numjobs == 2
        text = result.render()
        assert "10.50 Gbps aggregate" in text
        assert "j/0" in text
