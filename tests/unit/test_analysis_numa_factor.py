"""NUMA factor analysis (Table I)."""

import numpy as np
import pytest

from repro.analysis.numa_factor import latency_matrix, numa_factor, table1
from repro.errors import TopologyError
from repro.topology.builders import intel_4s4n, parametric_machine


class TestLatencyMatrix:
    def test_diagonal_is_local_latency(self, host):
        lat = latency_matrix(host)
        assert np.allclose(np.diag(lat), host.params.local_latency_s)

    def test_remote_exceeds_local(self, host):
        lat = latency_matrix(host)
        n = lat.shape[0]
        off = lat[~np.eye(n, dtype=bool)]
        assert (off > np.diag(lat).max() - 1e-12).all()


class TestNumaFactor:
    def test_intel_mesh_factor(self):
        assert numa_factor(intel_4s4n()) == pytest.approx(1.5, rel=0.01)

    def test_single_node_rejected(self):
        machine = parametric_machine(1, nodes_per_package=1)
        with pytest.raises(TopologyError):
            numa_factor(machine)

    def test_factor_at_least_one(self, host):
        assert numa_factor(host) > 1.0


class TestTable1:
    def test_all_rows_within_ten_percent(self):
        rows = table1()
        assert len(rows) == 4
        for row in rows:
            assert row.relative_error < 0.10, row.label

    def test_ordering_matches_paper(self):
        rows = {r.label: r.measured for r in table1()}
        assert (rows["Intel 4 sockets/4 nodes"]
                < rows["AMD 4 sockets/8 nodes"]
                <= rows["AMD 8 sockets/8 nodes"]
                < rows["HP blade system 32 nodes"])
