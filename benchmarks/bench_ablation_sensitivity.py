"""A6 — ablation: classes are emergent fabric properties."""


def test_ablation_sensitivity(run_paper_experiment):
    result = run_paper_experiment("a6")
    assert result.data["base_write"] != result.data["repaired_write"]
