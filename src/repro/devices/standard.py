"""The reference host's devices, calibrated to the paper's measurements.

Curve-fit provenance (all targets from Tables IV and V; ``path`` values
are the DMA-plane bandwidths the calibrated fabric yields):

=============  =====  =====  ========================================
engine         dir    cap    fit targets (path -> Gbps)
=============  =====  =====  ========================================
tcp_send       write  20.5   44.5 -> 20.4, 26.6 -> 16.2
tcp_recv       read   21.4   40.4 -> 20.6, 27.9 -> 14.4
rdma_write     write  23.3   44.5 -> 23.2, 26.6 -> 17.1
rdma_read      read   22.0   40.4 -> 18.3, 27.9 -> 16.1
libaio_write   write  29.0   44.5 -> 28.5, 26.6 -> 18.0
libaio_read    read   34.7   40.4 -> 30.1, 27.9 -> 18.5
=============  =====  =====  ========================================

Write-direction curves anchor ``path_ref`` at 51.2 Gbps (the class-1
write level); read-direction curves anchor at 47.0 Gbps — the *minimum*
class-1 read path — so nodes 6 and {2, 3} sit flat at the cap exactly as
the paper measures (RDMA_READ: 22.0-22.0 for both classes).

``beta``/``gamma`` solve the two fit targets exactly:
``gamma = ln(d2_target_ratio) / ln(d2/d1)``, ``beta = drop1 / d1**gamma``.
"""

from __future__ import annotations

from repro.devices.interrupts import IrqModel
from repro.devices.nic import Nic
from repro.devices.pcie import PcieLink
from repro.devices.response import EngineProfile, ResponseCurve
from repro.devices.ssd import SsdArray
from repro.errors import DeviceError

__all__ = ["reference_nic", "reference_ssd_array", "attach_reference_devices"]

#: DMA path reference for write-direction curves (class-1 write level).
_WRITE_REF = 51.2
#: DMA path reference for read-direction curves (class-1 read floor).
_READ_REF = 47.0

#: Protocol-processing throughput of one TCP stream's CPU share (Gbps);
#: makes aggregate TCP grow until ~4 streams (Fig. 5) then plateau.
_TCP_CPU_PER_STREAM = 6.9
#: Throughput retained by CPU-heavy engines when running on the IRQ node;
#: reproduces "node 6 beats node 7" (§IV-B1).
_TCP_IRQ_SENSITIVITY = 0.966


def reference_nic(node_id: int = 7, irq_node: int | None = None) -> Nic:
    """The ConnectX-3 40 GbE RoCE adapter of Table II (PCIe Gen2 x8).

    ``irq_node`` defaults to the device-local node (the paper's §III-B2
    tuning); the IRQ-redirection ablation passes something else.
    """
    engines = {
        "tcp_send": EngineProfile(
            name="tcp_send",
            curve=ResponseCurve(cap_gbps=20.5, path_ref_gbps=_WRITE_REF,
                                beta=4.087e-4, gamma=2.8917),
            cpu_gbps_per_stream=_TCP_CPU_PER_STREAM,
            irq_sensitivity=_TCP_IRQ_SENSITIVITY,
            sigma=0.012,
            crowd_sigma=0.035,
        ),
        "tcp_recv": EngineProfile(
            name="tcp_recv",
            curve=ResponseCurve(cap_gbps=21.4, path_ref_gbps=_READ_REF,
                                beta=0.0170, gamma=2.0415),
            cpu_gbps_per_stream=_TCP_CPU_PER_STREAM,
            irq_sensitivity=_TCP_IRQ_SENSITIVITY,
            sigma=0.012,
            crowd_sigma=0.035,
        ),
        # RDMA offloads protocol processing to the adapter: no per-stream
        # CPU term, tiny run-to-run noise ("more stable than TCP", §IV-B2).
        "rdma_write": EngineProfile(
            name="rdma_write",
            curve=ResponseCurve(cap_gbps=23.3, path_ref_gbps=_WRITE_REF,
                                beta=2.393e-4, gamma=3.1730),
            per_stream_cap_gbps=22.5,
            sigma=0.002,
            crowd_sigma=0.004,
        ),
        "rdma_read": EngineProfile(
            name="rdma_read",
            curve=ResponseCurve(cap_gbps=22.0, path_ref_gbps=_READ_REF,
                                beta=1.614, gamma=0.4393),
            per_stream_cap_gbps=21.5,
            sigma=0.002,
            crowd_sigma=0.004,
        ),
        "rdma_send": EngineProfile(
            name="rdma_send",
            curve=ResponseCurve(cap_gbps=23.0, path_ref_gbps=_WRITE_REF,
                                beta=2.393e-4, gamma=3.1730),
            per_stream_cap_gbps=22.2,
            sigma=0.002,
            crowd_sigma=0.004,
        ),
    }
    return Nic(
        name="mlx-connectx3",
        node_id=node_id,
        pcie=PcieLink(gen=2, lanes=8),
        engines=engines,
        irq=IrqModel(irq_node=node_id if irq_node is None else irq_node),
    )


def reference_ssd_array(node_id: int = 7) -> SsdArray:
    """The two LSI Nytro WarpDrive cards of Table II, driven as one array."""
    engines = {
        "libaio_write": EngineProfile(
            name="libaio_write",
            curve=ResponseCurve(cap_gbps=29.0, path_ref_gbps=_WRITE_REF,
                                beta=1.587e-3, gamma=2.756),
            irq_sensitivity=0.99,
            sigma=0.008,
            crowd_sigma=0.02,
        ),
        "libaio_read": EngineProfile(
            name="libaio_read",
            curve=ResponseCurve(cap_gbps=34.7, path_ref_gbps=_READ_REF,
                                beta=0.4922, gamma=1.1847),
            sigma=0.006,
            crowd_sigma=0.02,
        ),
    }
    return SsdArray(
        name="lsi-nytro-array",
        node_id=node_id,
        pcie=PcieLink(gen=2, lanes=8),
        engines=engines,
        n_cards=2,
        min_iodepth=4,
        irq=IrqModel(irq_node=node_id),
    )


def attach_device(machine, name: str, device) -> None:
    """Attach ``device`` to ``machine`` under ``name``, validating its node."""
    if device.node_id not in machine.node_ids:
        raise DeviceError(
            f"device {name!r} attaches to node {device.node_id}, "
            f"which {machine.name!r} does not have"
        )
    if name in machine.devices:
        raise DeviceError(f"machine {machine.name!r} already has a device {name!r}")
    machine.devices[name] = device


def attach_reference_devices(machine, io_node: int = 7) -> None:
    """Attach the Table II NIC and SSD array to ``io_node`` (default 7)."""
    attach_device(machine, "nic", reference_nic(io_node))
    attach_device(machine, "ssd", reference_ssd_array(io_node))
