"""OS layer: tasks, affinity, the numactl/libnuma front-ends, noise.

This package gives benchmarks the same control surface the paper used on
Linux: ``numactl``-style static binding for whole tasks
(:class:`~repro.osmodel.numactl.Numactl`), ``libnuma``-style runtime
calls (:mod:`repro.osmodel.libnuma`, mirroring the function names in the
paper's Algorithm 1), a CPU scheduler that enforces core capacity, and a
seeded measurement-noise model.
"""

from repro.osmodel.counters import TrafficCounters
from repro.osmodel.noise import NoiseModel, OsNoiseDaemons
from repro.osmodel.numactl import Numactl
from repro.osmodel.process import SimTask, TaskBinding
from repro.osmodel.scheduler import CpuScheduler

__all__ = [
    "NoiseModel",
    "OsNoiseDaemons",
    "Numactl",
    "SimTask",
    "TaskBinding",
    "CpuScheduler",
    "TrafficCounters",
]
