"""Traffic plane identifiers.

A *plane* names a traffic class with its own routing table and link
efficiency model.  The library ships two:

``PLANE_PIO``
    CPU-initiated load/store streams (STREAM benchmark, ordinary
    application memory access).  Latency-bound per core; follows the
    coherent-fabric routing.

``PLANE_DMA``
    Bulk transfers: device DMA and streaming/non-temporal ``memcpy``.
    Credit/width-bound; may follow different routing registers.

Separating the planes is the mechanism by which the paper's headline
mismatch (STREAM ranks node sets one way, I/O benchmarks another) emerges
in the simulator rather than being hard-coded.
"""

from __future__ import annotations

from repro.errors import RoutingError

Plane = str

PLANE_PIO: Plane = "pio"
PLANE_DMA: Plane = "dma"

ALL_PLANES: tuple[Plane, ...] = (PLANE_PIO, PLANE_DMA)


def validate_plane(plane: str) -> Plane:
    """Return ``plane`` if it names a known traffic plane, else raise."""
    if plane not in ALL_PLANES:
        raise RoutingError(f"unknown traffic plane {plane!r}; expected one of {ALL_PLANES}")
    return plane
