"""Mismatch report."""

import pytest

from repro.analysis.mismatch import GroupComparison, group_ratio, mismatch_report
from repro.errors import ModelError


@pytest.fixture()
def sample_models():
    nodes = range(8)
    stream = {n: {0: 24.0, 1: 22.0, 2: 14.0, 3: 14.0}.get(n, 20.0) for n in nodes}
    iomodel = {n: {0: 40.4, 1: 40.4, 2: 48.6, 3: 47.0}.get(n, 45.0) for n in nodes}
    return {"stream": stream, "iomodel": iomodel}


@pytest.fixture()
def sample_operations():
    nodes = range(8)
    rdma = {n: {0: 18.3, 1: 18.3, 2: 22.0, 3: 22.0}.get(n, 20.0) for n in nodes}
    return {"RDMA_READ": rdma}


class TestGroupRatio:
    def test_ratio(self):
        values = {0: 20.0, 1: 24.0, 2: 10.0, 3: 12.0}
        assert group_ratio(values, (0, 1), (2, 3)) == pytest.approx(2.0)

    def test_missing_nodes_rejected(self):
        with pytest.raises(ModelError):
            group_ratio({0: 1.0}, (0,), (1,))

    def test_comparison_direction(self):
        assert GroupComparison(label="x", ratio=1.2).a_wins
        assert not GroupComparison(label="x", ratio=0.8).a_wins


class TestMismatchReport:
    def test_correlations_computed(self, sample_models, sample_operations):
        report = mismatch_report(sample_models, sample_operations)
        assert report.correlations["iomodel"]["RDMA_READ"] > 0.5
        assert report.correlations["stream"]["RDMA_READ"] < 0.5

    def test_best_model(self, sample_models, sample_operations):
        report = mismatch_report(sample_models, sample_operations)
        assert report.best_model() == "iomodel"

    def test_reversal_detected(self, sample_models, sample_operations):
        report = mismatch_report(sample_models, sample_operations)
        assert report.reversal_demonstrated("stream", "RDMA_READ")
        assert not report.reversal_demonstrated("iomodel", "RDMA_READ")

    def test_unknown_labels_rejected(self, sample_models, sample_operations):
        report = mismatch_report(sample_models, sample_operations)
        with pytest.raises(ModelError):
            report.reversal_demonstrated("ghost", "RDMA_READ")
        with pytest.raises(ModelError):
            report.mean_rho("ghost")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ModelError):
            mismatch_report({}, {})

    def test_render(self, sample_models, sample_operations):
        text = mismatch_report(sample_models, sample_operations).render()
        assert "Spearman" in text
        assert "RDMA_READ" in text
        assert "ratio" in text
