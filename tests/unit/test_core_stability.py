"""Class-stability metric."""

import pytest

from repro.core.validation import class_stability
from repro.errors import ModelError
from repro.topology.builders import scaled_host


class TestStability:
    def test_reference_host_perfectly_stable(self, bare_host):
        assert class_stability(bare_host, 7, "write", repeats=6, runs=25) == 1.0
        assert class_stability(bare_host, 7, "read", repeats=6, runs=25) == 1.0

    def test_fewer_runs_can_destabilise_near_ties(self):
        # A host with near-tied credits: single-run models jitter more
        # than 25-run ones.
        machine = scaled_host(6, seed=11, asymmetry_fraction=0.3)
        shaky = class_stability(machine, 0, "read", repeats=8, runs=1)
        steady = class_stability(machine, 0, "read", repeats=8, runs=50)
        assert steady >= shaky

    def test_bounds(self, bare_host):
        value = class_stability(bare_host, 7, "write", repeats=4, runs=5)
        assert 0.0 < value <= 1.0

    def test_repeats_validated(self, bare_host):
        with pytest.raises(ModelError):
            class_stability(bare_host, 7, "write", repeats=1)
