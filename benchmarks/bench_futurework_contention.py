"""FW2 — future work: locality vs contention across concurrent devices."""


def test_futurework_contention(run_paper_experiment):
    result = run_paper_experiment("fw2")
    assert result.data["gain"] > 0.70
