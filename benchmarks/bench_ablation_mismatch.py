"""A2 — ablation: STREAM models vs the memcpy model as I/O predictors."""


def test_ablation_mismatch(run_paper_experiment):
    result = run_paper_experiment("a2")
    assert result.data["iomodel_read"] > result.data["stream_cpu_centric"]
