"""``repro-numa`` entry point and argument wiring."""

from __future__ import annotations

import argparse
import sys

from repro.cli import commands
from repro.errors import ReproError

__all__ = ["build_parser", "main"]

#: Machines selectable with ``--machine``.
MACHINE_CHOICES = (
    "reference",
    "magny-cours-a",
    "magny-cours-b",
    "magny-cours-c",
    "magny-cours-d",
    "intel-4s4n",
    "amd-4s8n",
    "amd-8s8n",
    "hp-blade-32n",
)


def _add_resume(parser: argparse.ArgumentParser, unit: str) -> None:
    """Attach the checkpoint/resume flag to one subcommand parser."""
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help=f"journal the run into RUN_DIR (one record per {unit}); "
             "re-running after a crash skips completed units and prints "
             "byte-identical output to an uninterrupted run",
    )


def _add_obs_dir(parser: argparse.ArgumentParser) -> None:
    """Attach the telemetry opt-in flag to one subcommand parser."""
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="record a span trace and run manifest into DIR "
             "(telemetry is off without this flag; computed output is "
             "byte-identical either way)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-numa",
        description=(
            "NUMA I/O bandwidth characterisation (ICPP 2013 reproduction): "
            "a simulated NUMA host, the paper's benchmarks, and its "
            "memcpy-based I/O performance-model methodology."
        ),
    )
    parser.add_argument(
        "--machine",
        default="reference",
        choices=MACHINE_CHOICES,
        help="host to operate on (default: the calibrated reference host)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment RNG seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("hardware", help="numactl --hardware plus the fabric links")
    p.add_argument("--links", action="store_true", help="include the directed link table")
    p.add_argument("--audit", action="store_true",
                   help="include the G34 HT port-budget audit")
    p.set_defaults(func=commands.cmd_hardware)

    p = sub.add_parser("stream", help="run the STREAM benchmark")
    p.add_argument("--cpu", type=int, help="CPU node (omit for the full matrix)")
    p.add_argument("--mem", type=int, help="memory node (with --cpu)")
    p.add_argument("--kernel", default="copy",
                   choices=("copy", "scale", "add", "triad"))
    p.add_argument("--runs", type=int, default=100)
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_stream)

    p = sub.add_parser("fio", help="run fio jobs")
    p.add_argument("--jobfile", help="ini-format job file path")
    p.add_argument("--engine", choices=("tcp", "rdma", "libaio", "memcpy"))
    p.add_argument("--rw", help="direction (send/recv/write/read)")
    p.add_argument("--numjobs", type=int, default=4)
    p.add_argument("--node", type=int, help="cpunodebind")
    p.add_argument("--target", type=int, help="memcpy target node")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_fio)

    p = sub.add_parser("iomodel", help="Algorithm 1: memcpy I/O performance model")
    p.add_argument("--target", type=int, default=7, help="device-attached node")
    p.add_argument("--targets", metavar="A,B,... | all",
                   help="sweep several target nodes (overrides --target; "
                        "'all' sweeps every node)")
    p.add_argument("--mode", default="both", choices=("write", "read", "both"))
    p.add_argument("--runs", type=int, default=100)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="shard the target sweep over N fabric worker "
                        "processes (output is byte-identical for any N)")
    _add_resume(p, "target node")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_iomodel)

    p = sub.add_parser("predict", help="Eq. 1 mixture prediction")
    p.add_argument("--target", type=int, default=7)
    p.add_argument("--engine", default="rdma", choices=("tcp", "rdma", "libaio"))
    p.add_argument("--rw", default="read")
    p.add_argument(
        "--streams",
        required=True,
        help="comma-separated source node per stream, e.g. 2,2,0,0",
    )
    p.add_argument("--measure", action="store_true",
                   help="also run the mixture and report the error")
    p.set_defaults(func=commands.cmd_predict)

    p = sub.add_parser("advise", help="class-aware placement advice")
    p.add_argument("--target", type=int, default=7)
    p.add_argument("--engine", default="rdma", choices=("tcp", "rdma", "libaio"))
    p.add_argument("--rw", default="write")
    p.add_argument("--tasks", type=int, default=16)
    p.add_argument("--compare", action="store_true",
                   help="measure the spread plan against all-local binding")
    p.set_defaults(func=commands.cmd_advise)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", nargs="?",
                   help="experiment id, or 'all' (omit to list)")
    p.add_argument("--quick", action="store_true", help="reduced run counts")
    p.add_argument("--json", dest="json_path",
                   help="also write the structured result data to this file")
    p.add_argument("--outdir",
                   help="with 'all': write each artifact to <outdir>/<id>.txt")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="with 'all': run experiments in N worker processes "
                        "(deterministic merge order, per-experiment wall time)")
    _add_resume(p, "experiment")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_experiment)

    p = sub.add_parser(
        "stats", help="solver-session instrumentation for a workload"
    )
    p.add_argument("--workload", default="iomodel",
                   choices=("iomodel", "stream", "fio"),
                   help="which workload to instrument")
    p.add_argument("--target", type=int, default=7, help="target node")
    p.add_argument("--runs", type=int, default=25)
    p.set_defaults(func=commands.cmd_stats)

    p = sub.add_parser("plan", help="rank nodes as device attachment points")
    p.add_argument("--write-weight", type=float, default=0.5,
                   help="fraction of expected traffic that is device-write")
    p.set_defaults(func=commands.cmd_plan)

    p = sub.add_parser("numastat", help="allocation counters after a demo workload")
    p.set_defaults(func=commands.cmd_numastat)

    p = sub.add_parser("numademo", help="the numademo module x policy grid")
    p.add_argument("--node", type=int, default=0, help="CPU node to run on")
    p.set_defaults(func=commands.cmd_numademo)

    p = sub.add_parser(
        "online", help="online placement/migration policy comparison"
    )
    p.add_argument("--target", type=int, default=7)
    p.add_argument("--streams", type=int, default=40)
    p.add_argument("--rate", type=float, default=0.1,
                   help="stream arrivals per second")
    p.add_argument("--trace", help="replay a workload trace instead of generating")
    p.add_argument("--save-trace", dest="save_trace",
                   help="save the generated workload to this trace file")
    p.set_defaults(func=commands.cmd_online)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection scenarios with a resilience report",
    )
    p.add_argument(
        "--scenario",
        default="all",
        choices=("single-link-loss", "cascading-node-isolation",
                 "flapping-uplink", "all"),
        help="which scenario to run (default: all three)",
    )
    p.add_argument("--json", action="store_true",
                   help="emit the structured report as JSON")
    p.add_argument("--quick", action="store_true",
                   help="smaller transfers and fewer streams")
    p.add_argument("--retry-budget", dest="retry_budget", type=int,
                   default=4, metavar="N",
                   help="retries a blocked stream may spend before it "
                        "fails structurally (default: 4)")
    p.add_argument("--retry-base", dest="retry_base", type=float,
                   default=0.25, metavar="S",
                   help="base backoff delay in seconds, doubled per "
                        "retry with seeded jitter (default: 0.25)")
    _add_resume(p, "scenario")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_chaos)

    p = sub.add_parser(
        "recover",
        help="seeded crash-recovery soak: SIGKILL journaled runs, resume, "
             "gate bit-identity and /dev/shm hygiene",
    )
    p.add_argument("--workload", default="both",
                   choices=("iomodel", "experiment", "both"),
                   help="which journaled workload(s) to crash and resume")
    p.add_argument("--trials", type=int, default=2, metavar="N",
                   help="crash trials per workload (seeded kill points)")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="fabric workers inside each run under test")
    p.add_argument("--runs", type=int, default=10,
                   help="Algorithm 1 copies per probe in the iomodel workload")
    p.add_argument("--keep", action="store_true",
                   help="keep the soak's journals and obs dirs for inspection")
    p.set_defaults(func=commands.cmd_recover)

    p = sub.add_parser(
        "serve",
        help="placement-advisory JSON-RPC service (TCP, stdio, or chaos soak)",
    )
    p.add_argument("--stdio", action="store_true",
                   help="serve line requests serially on stdin/stdout")
    p.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    p.add_argument("--port", type=int, default=8713,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--machine-file", dest="machine_file", metavar="JSON",
                   help="serve a machine loaded from a JSON description "
                        "instead of --machine")
    p.add_argument("--runs", type=int, default=25,
                   help="Algorithm 1 copies per probe (latency/accuracy)")
    p.add_argument("--queue-limit", type=int, default=32,
                   help="bounded admission queue size (TCP backpressure)")
    p.add_argument("--workers", type=int, default=4,
                   help="concurrent solver workers (TCP transport)")
    p.add_argument("--failure-threshold", type=int, default=3,
                   help="consecutive solver failures that trip the breaker")
    p.add_argument("--solver-pool", type=int, default=None, metavar="N",
                   help="build cold models in N fabric worker processes "
                        "(shared-memory arenas) instead of in-process")
    p.add_argument("--tier-max-staleness", dest="tier_max_staleness",
                   type=float, default=None, metavar="S",
                   help="re-characterize when tier 1-2 cache entries are "
                        "older than S seconds (default: never stale)")
    p.add_argument("--warm", default=None, metavar="TARGETS",
                   help="pre-characterize at startup: 'all' or "
                        "comma-separated node ids (default: device nodes); "
                        "'ready' stays false until warmup completes")
    p.add_argument("--soak", action="store_true",
                   help="run the deterministic chaos soak instead of serving")
    p.add_argument("--converge", action="store_true",
                   help="with --soak: run the self-healing convergence "
                        "drill (derate window, drift, quarantine, repair) "
                        "instead of the breaker-tripping partition soak")
    p.add_argument("--requests", type=int, default=120,
                   help="scripted requests in the soak trace")
    p.add_argument("--no-fault", dest="fault", action="store_false",
                   help="soak without the fault window (healthy twin)")
    p.add_argument("--json", action="store_true",
                   help="emit the soak report as JSON")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_serve)

    p = sub.add_parser("export", help="dump the machine description as JSON")
    p.set_defaults(func=commands.cmd_export)

    p = sub.add_parser(
        "concurrent",
        help="run a job file's jobs simultaneously with traffic counters",
    )
    p.add_argument("jobfile", help="ini-format fio job file")
    _add_obs_dir(p)
    p.set_defaults(func=commands.cmd_concurrent)

    p = sub.add_parser(
        "obs", help="inspect telemetry recorded with --obs-dir"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    rp = obs_sub.add_parser(
        "report", help="summarize one recorded run, or diff two"
    )
    rp.add_argument(
        "dirs",
        nargs="+",
        metavar="DIR",
        help="one obs dir to summarize, or two to diff (A B)",
    )
    rp.add_argument(
        "--json", action="store_true", help="emit the structured form"
    )
    rp.add_argument(
        "--top", type=int, default=10, help="slowest spans to list (default 10)"
    )
    rp.add_argument(
        "--phase-tolerance", dest="phase_tolerance", type=float, default=None,
        metavar="FRAC",
        help="with two dirs: flag spans whose wall time shifted by more "
             "than FRAC (e.g. 0.5 = ±50%%) between A and B",
    )
    rp.add_argument(
        "--gate-phases", dest="gate_phases", action="store_true",
        help="exit 4 when --phase-tolerance flags any span",
    )
    rp.set_defaults(func=commands.cmd_obs_report)

    def _add_endpoint(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default="127.0.0.1",
                        help="serve transport address")
        sp.add_argument("--port", type=int, default=8713,
                        help="serve transport port")

    sp = obs_sub.add_parser(
        "scrape",
        help="Prometheus-style text exposition of a live server's metrics",
    )
    _add_endpoint(sp)
    sp.add_argument(
        "--from-json", dest="from_json", metavar="FILE",
        help="render a saved `metrics` result payload instead of polling "
             "a server ('-' reads stdin)",
    )
    sp.set_defaults(func=commands.cmd_obs_scrape)

    sp = obs_sub.add_parser(
        "top", help="live tier mix / latency percentiles / breaker state"
    )
    _add_endpoint(sp)
    sp.add_argument("--interval", type=float, default=2.0,
                    help="seconds between polls")
    sp.add_argument("--count", type=int, default=1,
                    help="polls before exiting (0 = until interrupted)")
    sp.set_defaults(func=commands.cmd_obs_top)

    sp = obs_sub.add_parser(
        "tail", help="dump the flight recorder (recent spans and events)"
    )
    _add_endpoint(sp)
    sp.add_argument("--spans", type=int, default=16,
                    help="most recent spans to show")
    sp.add_argument("--events", type=int, default=16,
                    help="most recent events to show")
    sp.add_argument("--json", action="store_true",
                    help="emit the raw flight-recorder dump as JSON")
    sp.set_defaults(func=commands.cmd_obs_tail)

    return parser


def _obs_config(args: argparse.Namespace) -> dict:
    """The manifest ``config`` block: the run's plain-value options."""
    # "resume" is excluded like "obs_dir": both are per-invocation paths
    # that must not break the deterministic-twin verdict between a
    # resumed run and its golden twin.
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in ("func", "obs_dir", "resume")
        and isinstance(value, (str, int, float, bool, type(None)))
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    When the subcommand was given ``--obs-dir``, the whole dispatch runs
    under a telemetry recording: spans and counters are captured and a
    trace + manifest land in that directory.  Everything the command
    prints stays byte-identical to an unrecorded run.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_dir = getattr(args, "obs_dir", None)
    try:
        if obs_dir:
            from repro.obs import recording
            from repro.rng import DEFAULT_SEED

            with recording(
                obs_dir,
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                seed=args.seed if args.seed is not None else DEFAULT_SEED,
                config=_obs_config(args),
            ):
                return args.func(args)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
