"""Baseline cost models."""

import pytest

from repro.analysis.baselines import (
    hop_distance_model,
    model_from_values,
    stream_cost_model,
)
from repro.errors import ModelError


class TestHopDistanceModel:
    def test_local_scores_highest(self, host):
        values = hop_distance_model(host, 7)
        assert values[7] == max(values.values())

    def test_one_hop_above_two_hop(self, host):
        values = hop_distance_model(host, 7)
        assert values[0] > values[1]  # 0 is 1 hop, 1 is 2 hops from 7

    def test_unknown_target_rejected(self, host):
        with pytest.raises(ModelError):
            hop_distance_model(host, 42)

    def test_blind_to_credit_asymmetry(self, host):
        # Hop distance scores 2 and 4 identically (both 1 hop from 7);
        # the real read model separates them by ~1.7x.  This blindness
        # is exactly why the paper rejects the metric.
        values = hop_distance_model(host, 7)
        assert values[2] == values[4]
        assert host.dma_path_gbps(7, 2) > 1.5 * host.dma_path_gbps(7, 4)


class TestStreamCostModel:
    def test_read_mode_is_cpu_centric(self, host, registry):
        from repro.bench.stream import StreamBenchmark

        model = stream_cost_model(host, 7, "read", registry=registry, runs=5)
        expected = StreamBenchmark(host, registry=registry, runs=5).cpu_centric(7)
        assert model == expected

    def test_write_mode_is_memory_centric(self, host, registry):
        from repro.bench.stream import StreamBenchmark

        model = stream_cost_model(host, 7, "write", registry=registry, runs=5)
        expected = StreamBenchmark(host, registry=registry, runs=5).memory_centric(7)
        assert model == expected

    def test_bad_mode_rejected(self, host):
        with pytest.raises(ModelError):
            stream_cost_model(host, 7, "diagonal")


class TestModelFromValues:
    def test_wraps_any_values(self, host):
        values = hop_distance_model(host, 7)
        model = model_from_values(host, 7, "read", values, label="hops")
        assert model.machine_name.endswith("[hops]")
        # The local/neighbour rule applies to baselines too.
        assert sorted(model.class_by_rank(1).node_ids) == [6, 7]

    def test_misranks_nodes_vs_true_model(self, host):
        # Under hop distance, {2,3,4} collapse into wrong groups relative
        # to the true read classes — the quantified §I-A complaint.
        values = hop_distance_model(host, 7)
        model = model_from_values(host, 7, "read", values, label="hops")
        assert model.class_of(2).rank == model.class_of(4).rank
