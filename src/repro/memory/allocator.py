"""Page-granular NUMA allocator.

Tracks per-node free memory (seeded from each node's OS-resident set,
which is how the paper's ``numactl --hardware`` observation — 1.5 GB
free on node 0, ~4 GB elsewhere — shows up here) and implements the four
Linux policies.  Benchmarks allocate their buffers through this, so a
BIND to a full node fails exactly like ``mbind`` would, and
LOCAL_PREFERRED spills to the nearest node with space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.memory.numastat import NumaStat
from repro.memory.policy import AllocPolicy, MemBinding
from repro.topology.distance import hop_pairs
from repro.topology.machine import Machine

__all__ = ["Allocation", "PageAllocator"]

PAGE_BYTES = 4096


@dataclass(frozen=True)
class Allocation:
    """A satisfied allocation: bytes per node (page-aligned)."""

    bytes_by_node: dict[int, int]

    @property
    def total_bytes(self) -> int:
        """Total allocated size."""
        return sum(self.bytes_by_node.values())

    @property
    def nodes(self) -> tuple[int, ...]:
        """Nodes that received at least one page."""
        return tuple(sorted(n for n, b in self.bytes_by_node.items() if b))

    def home_node(self) -> int:
        """The node holding the majority of the allocation."""
        return max(sorted(self.bytes_by_node), key=lambda n: self.bytes_by_node[n])


class PageAllocator:
    """Per-machine page bookkeeping with Linux policy semantics."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._free = {nid: machine.node(nid).free_bytes for nid in machine.node_ids}
        self.stats = NumaStat(node_ids=machine.node_ids)
        # Shared per-machine distance dict: allocators only read it, and
        # characterization sweeps construct one allocator per probe.
        self._hops = hop_pairs(machine)

    def free_bytes(self, node: int) -> int:
        """Currently free memory on ``node``."""
        if node not in self._free:
            raise AllocationError(f"unknown node {node}")
        return self._free[node]

    def allocate(self, size_bytes: int, cpu_node: int, binding: MemBinding | None = None) -> Allocation:
        """Allocate ``size_bytes`` for a task faulting from ``cpu_node``.

        Raises
        ------
        AllocationError
            When a BIND set is exhausted, or the whole machine is out of
            memory.
        """
        if size_bytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {size_bytes}")
        if cpu_node not in self._free:
            raise AllocationError(f"unknown CPU node {cpu_node}")
        binding = binding or MemBinding.local()
        pages = -(-size_bytes // PAGE_BYTES)

        if binding.policy is AllocPolicy.INTERLEAVE:
            return self._interleave(pages, cpu_node, binding.nodes)

        if binding.policy is AllocPolicy.BIND:
            candidates = list(binding.nodes)
            strict = True
            intended = binding.nodes[0]
        elif binding.policy is AllocPolicy.PREFERRED:
            intended = binding.nodes[0]
            candidates = self._by_distance(intended)
            strict = False
        else:  # LOCAL_PREFERRED
            intended = cpu_node
            candidates = self._by_distance(cpu_node)
            strict = False

        got: dict[int, int] = {}
        need = pages
        for node in candidates:
            take = min(need, self._free[node] // PAGE_BYTES)
            if take > 0:
                got[node] = got.get(node, 0) + take * PAGE_BYTES
                self._free[node] -= take * PAGE_BYTES
                self.stats.record(node, intended, cpu_node, take)
                need -= take
            if need == 0:
                break
        if need > 0:
            # Roll back so a failed allocation leaves no trace.
            for node, size in got.items():
                self._free[node] += size
            where = f"nodes {binding.nodes}" if strict else "the machine"
            raise AllocationError(
                f"cannot allocate {size_bytes} bytes on {where} "
                f"({need * PAGE_BYTES} bytes short)"
            )
        return Allocation(bytes_by_node=got)

    def _interleave(self, pages: int, cpu_node: int, nodes: tuple[int, ...]) -> Allocation:
        per = pages // len(nodes)
        extra = pages % len(nodes)
        got: dict[int, int] = {}
        for i, node in enumerate(nodes):
            want = per + (1 if i < extra else 0)
            if want == 0:
                continue
            if self._free[node] < want * PAGE_BYTES:
                for done, size in got.items():
                    self._free[done] += size
                raise AllocationError(
                    f"interleave over {nodes} failed: node {node} lacks "
                    f"{want * PAGE_BYTES} bytes"
                )
            got[node] = want * PAGE_BYTES
            self._free[node] -= want * PAGE_BYTES
            self.stats.record(node, node, cpu_node, want, interleaved=True)
        return Allocation(bytes_by_node=got)

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's pages to their nodes."""
        for node, size in allocation.bytes_by_node.items():
            if node not in self._free:
                raise AllocationError(f"release references unknown node {node}")
            limit = self.machine.node(node).free_bytes
            if self._free[node] + size > limit:
                raise AllocationError(
                    f"double free on node {node}: releasing {size} bytes would "
                    f"exceed the node's application memory"
                )
            self._free[node] += size

    def _by_distance(self, origin: int) -> list[int]:
        """Node ids ordered by hop distance from ``origin`` (stable)."""
        return sorted(self.machine.node_ids, key=lambda n: (self._hops[(origin, n)], n))
