#!/usr/bin/env sh
# Service smoke: replay the scripted soak trace twice — once healthy,
# once with the fault plan firing mid-stream — and prove the
# deterministic-twin contract: same seed -> byte-identical response
# streams, every request answered exactly once, breaker tripped and
# recovered.  Then drive the stdio transport with a scripted session
# and check it, too, answers identically across runs.  Finally the
# tier drill: a cold question is answered by a full solve (tier 3), its
# repeat by the analytic fast tier (tier 1) within the documented error
# bound, the class model serves tier 2, and with the breaker forced
# open the service degrades to last-good tier-2 answers instead of
# failing.
set -eu

cd "$(dirname "$0")/.."

TMPDIR="${TMPDIR:-/tmp}"
A="$TMPDIR/service_smoke_a.$$"
B="$TMPDIR/service_smoke_b.$$"
trap 'rm -f "$A" "$B"' EXIT

echo "== chaos soak: fault plan firing mid-stream"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3

echo
echo "== determinism: faulted soak twice with seed 7 (full JSON report)"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --json > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --json > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: faulted soak report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
echo "OK: faulted response stream bit-identical across runs"

echo
echo "== determinism: healthy soak twice with seed 7"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --no-fault --json > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --no-fault --json > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: healthy soak report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
echo "OK: healthy response stream bit-identical across runs"

echo
echo "== stdio transport: scripted session twice"
TRACE='{"jsonrpc":"2.0","id":1,"method":"ready"}
{"jsonrpc":"2.0","id":2,"method":"classify","params":{"target":7}}
{"jsonrpc":"2.0","id":3,"method":"advise","params":{"target":7,"tasks":4,"avoid_irq_node":true}}
{"jsonrpc":"2.0","id":4,"method":"predict_eq1","params":{"target":7,"streams":[0,1,6]}}
{"jsonrpc":"2.0","id":5,"method":"advise","params":{"target":99,"tasks":1}}
not even json
{"jsonrpc":"2.0","id":7,"method":"classify","params":{"target":7,"deadline_ms":0}}'
printf '%s\n' "$TRACE" | PYTHONPATH=src python -m repro.cli.main --seed 7 \
    serve --stdio --runs 3 > "$A"
printf '%s\n' "$TRACE" | PYTHONPATH=src python -m repro.cli.main --seed 7 \
    serve --stdio --runs 3 > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: stdio response stream is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
RESPONSES=$(wc -l < "$A" | tr -d ' ')
if [ "$RESPONSES" != "7" ]; then
    echo "FAIL: expected 7 responses (one per request), got $RESPONSES" >&2
    exit 1
fi
echo "OK: stdio session answered 7/7 requests, bit-identical across runs"

echo
echo "== tier drill: cold -> 3, repeat -> 1, class -> 2, breaker open -> degraded 2"
PYTHONPATH=src python - <<'EOF'
import json

from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, PlacementService
from repro.service.soak import LogicalClock
from repro.topology.builders import reference_host

backend = AdvisoryBackend(reference_host(), registry=RngRegistry(), runs=3)
service = PlacementService(backend, clock=LogicalClock())


def call(method, params):
    line = json.dumps({"jsonrpc": "2.0", "id": 1,
                       "method": method, "params": params})
    response = json.loads(service.handle_line(line))
    assert "result" in response, response
    return response["result"]


cold = call("predict_eq1", {"target": 7, "mode": "write", "streams": [0, 1]})
assert cold["tier"] == 3 and cold["staleness_s"] == 0.0, cold
warm = call("predict_eq1", {"target": 7, "mode": "write", "streams": [0, 1]})
assert warm["tier"] == 1, warm
drift = abs(warm["predicted_gbps"] - cold["predicted_gbps"]) / cold["predicted_gbps"]
assert drift <= 0.05, f"analytic tier drifted {drift:.4f} from the solve"
assert warm["fit_rel_err_bound"] <= 0.05, warm
classed = call("classify", {"target": 7, "mode": "write"})
assert classed["tier"] == 2, classed
# Force the breaker open: the solver is untouchable, yet covered
# questions still get last-good class-model answers, honestly marked.
for _ in range(service.breaker.failure_threshold):
    service.breaker.record_failure()
assert not service.breaker.allow()
degraded = call("advise", {"target": 7, "mode": "write", "tasks": 4})
assert degraded["tier"] == 2 and degraded["degraded"] is True, degraded
assert degraded["source"] == "last-good-characterization", degraded
print("OK: tier drill — cold solve 3, analytic repeat 1 "
      f"(drift {drift:.4f} <= 0.05), class model 2, degraded tier 2")
EOF

echo
echo "== faulted soak serves every tier and degrades, never drops"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --json > "$A"
PYTHONPATH=src python - "$A" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
tiers = {int(k): v for k, v in report["tiers"].items()}
assert report["requests"] == 120, report["requests"]
assert tiers.get(1, 0) > 0, f"no analytic answers: {tiers}"
assert tiers.get(2, 0) > 0, f"no class-model answers: {tiers}"
assert tiers.get(3, 0) > 0, f"no solves: {tiers}"
assert report["degraded"] > 0, "fault plan never forced a degraded answer"

# The live plane's counters must agree exactly with the report's own
# accounting (they ride the same dispatch path on the same clock).
counters = report["counters"]
for tier, answered in tiers.items():
    key = f"service.tier.{tier}.answers"
    assert counters.get(key, 0) == answered, (key, counters, tiers)
trips = sum(1 for _, s in report["breaker_transitions"] if s == "open")
assert counters.get("service.breaker.trips", 0) == trips, counters
# Mid-fault solves fail outright (LinkFail partitions the fabric), so
# no faulted characterization ever lands: drift events stay at zero —
# deterministically — in the soak.  The drift drill below uses a
# degraded (still solvable) fabric to prove the detector does fire.
assert report["drift"] is not None and report["drift"]["events"] == 0, (
    report["drift"]
)
assert counters.get("service.drift.events", 0) == 0, counters
print(f"OK: tiers {tiers}, degraded {report['degraded']}, "
      f"ok {report['ok']} of {report['requests']}; live counters agree "
      f"(trips {trips}, drift events 0)")
EOF

echo
echo "== drift drill: derated fabric past threshold fires the drift watch"
PYTHONPATH=src python - <<'EOF'
import json

from repro.faults.events import LinkDegrade
from repro.faults.plan import FaultedMachine
from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, PlacementService
from repro.service.soak import LogicalClock
from repro.topology.builders import reference_host

host = reference_host()
backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
service = PlacementService(backend, clock=LogicalClock())
backend.warm((7,))  # the reference characterization


def call(method, params):
    line = json.dumps({"jsonrpc": "2.0", "id": 1,
                       "method": method, "params": params})
    response = json.loads(service.handle_line(line))
    assert "result" in response, response
    return response["result"]


for _ in range(4):  # fast-tier answers served off the healthy model
    call("classify", {"target": 7, "mode": "write"})
assert service.drift.events == 0

# Derate every cable touching the device node (both directions) to
# 40%: solves still succeed, but the class bandwidths collapse far
# past the 10% drift threshold.
cables = sorted({tuple(sorted(ends)) for ends in host.links if 7 in ends})
faults = [LinkDegrade(src, dst, 0.4)
          for a, b in cables for src, dst in ((a, b), (b, a))]
backend.set_machine(FaultedMachine(host, faults))
faulted = call("classify", {"target": 7, "mode": "write"})
assert faulted["tier"] == 3, faulted  # the derated solve itself lands

stats = service.drift.stats()
assert stats["events"] == 1, stats
event = stats["last"]
assert event["target"] == 7 and event["mode"] == "write", event
assert event["deviation"] > 0.10, event
assert event["regime"] in ("bandwidth-bound", "contention-bound",
                           "latency-bound", "reclassified"), event
assert event["served_answers"] == 4, event
assert service.live.counters["service.drift.events"] == 1
flight = [e for e in service.live.flight.events() if e["kind"] == "drift"]
assert len(flight) == 1 and flight[0]["tags"] == event, flight
print(f"OK: drift drill — deviation {event['deviation']:.3f} > 0.10, "
      f"regime {event['regime']}, {event['served_answers']} answers "
      "exposed, flight-recorder event present")
EOF

echo
echo "== convergence soak: derate -> drift -> quarantine -> repair -> promote"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak --converge \
    --requests 120 --runs 3 --json > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak --converge \
    --requests 120 --runs 3 --json > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: convergence soak report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
PYTHONPATH=src python - "$A" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
assert report["answered"] == report["requests"], report
assert report["converged"] is True, report
assert report["converged_during_fault"] is True, report
assert report["reconverged_after_clear"] is True, report
assert report["unlabelled_stale"] == 0, report
assert report["final_quarantined"] == 0, report
repair = report["repair"]
assert repair["jobs"] == 0 and repair["failed"] == 0, repair
assert repair["promoted"] >= 2, repair  # fault window + clearance
counters = report["counters"]
assert counters["service.repair.started"] == repair["started"], counters
assert counters["service.repair.promoted"] == repair["promoted"], counters
assert counters["service.repair.failed"] == 0, counters
assert counters["routing.rerouted_pairs"] > 0, counters
assert report["drift"]["events"] >= 1, report["drift"]
phases = [e["tags"].get("phase") for e in report["flight_events"]
          if e["kind"] == "repair"]
for phase in ("quarantine", "start", "promote"):
    assert phase in phases, phases
print(f"OK: convergence soak — {repair['promoted']} promotions "
      f"({repair['started']} repair solves, 0 failed), "
      f"{report['drift']['events']} drift events, "
      f"0 unlabelled stale answers, byte-identical twins")
EOF
