"""Worker death must not hang ``experiment all --jobs N``."""

from repro.cli.main import main
from repro.experiments import EXPERIMENTS


class TestWorkerDeath:
    def test_sigkilled_worker_yields_crash_rows_and_nonzero_exit(
        self, monkeypatch, capsys
    ):
        # The hook makes the worker for this experiment SIGKILL itself —
        # the real failure mode of an OOM-killed process, which a plain
        # multiprocessing.Pool.map would wait on forever.
        monkeypatch.setenv("REPRO_CHAOS_KILL_EXPERIMENT", EXPERIMENTS[0])
        rc = main(["experiment", "all", "--quick", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 1
        lines = out.splitlines()
        crash_line = next(l for l in lines if l.startswith(EXPERIMENTS[0]))
        assert "CRASH" in crash_line
        assert f'status="crashed": experiment {EXPERIMENTS[0]!r}' in out
        # the merge still reports every experiment exactly once
        reported = [l.split()[0] for l in lines
                    if l.split() and l.split()[0] in EXPERIMENTS]
        assert reported == list(EXPERIMENTS)

    def test_healthy_parallel_run_unaffected(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CHAOS_KILL_EXPERIMENT", raising=False)
        rc = main(["experiment", "all", "--quick", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CRASH" not in out
        assert "crashed" not in out
