"""Fault plans and the static FaultedMachine view."""

import pytest

from repro.errors import FaultError, RoutingError
from repro.faults.events import FaultEvent, LinkFail, MemoryThrottle, NicPortFlap
from repro.faults.plan import FaultedMachine, FaultPlan
from repro.solver.capacity import machine_fingerprint


class TestFaultPlan:
    def test_bare_faults_become_permanent_events(self):
        plan = FaultPlan([LinkFail(a=0, b=7)])
        assert len(plan) == 1
        assert plan.events[0].at_s == 0.0
        assert plan.events[0].until_s is None

    def test_events_sorted_by_activation(self):
        plan = FaultPlan([
            FaultEvent(LinkFail(a=0, b=7), at_s=5.0),
            FaultEvent(MemoryThrottle(node=1, factor=0.5), at_s=1.0),
        ])
        assert [e.at_s for e in plan.events] == [1.0, 5.0]

    def test_non_fault_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(["not-a-fault"])

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().describe() == "no faults"
        assert FaultPlan().capacity_factors_at(0.0) == {}

    def test_boundaries_and_next(self):
        plan = FaultPlan([
            FaultEvent(NicPortFlap(host="h0"), at_s=1.0, until_s=2.0),
            FaultEvent(LinkFail(a=0, b=7), at_s=1.0),
        ])
        assert plan.boundaries() == (1.0, 2.0)
        assert plan.next_boundary(0.0) == 1.0
        assert plan.next_boundary(1.0) == 2.0
        assert plan.next_boundary(2.0) is None

    def test_overlapping_factors_multiply(self):
        plan = FaultPlan([
            MemoryThrottle(node=1, factor=0.5),
            MemoryThrottle(node=1, factor=0.5),
        ])
        assert plan.capacity_factors_at(0.0)["ctrl-dma:1"] == pytest.approx(0.25)

    def test_scaled_capacities_ignore_unknown_resources(self):
        plan = FaultPlan([NicPortFlap(host="elsewhere")])
        healthy = {"ctrl-dma:0": 40.0}
        assert plan.scaled_capacities(healthy, 0.0) == healthy

    def test_scaled_capacities_derate_known_resources(self):
        plan = FaultPlan([MemoryThrottle(node=0, factor=0.5)])
        scaled = plan.scaled_capacities({"ctrl-dma:0": 40.0, "x": 1.0}, 0.0)
        assert scaled == {"ctrl-dma:0": 20.0, "x": 1.0}

    def test_inactive_faults_do_not_derate(self):
        plan = FaultPlan([FaultEvent(MemoryThrottle(node=0, factor=0.5), at_s=10.0)])
        assert plan.scaled_capacities({"ctrl-dma:0": 40.0}, 5.0) == {
            "ctrl-dma:0": 40.0
        }

    def test_apply_uses_only_topology_faults(self, bare_host):
        plan = FaultPlan([LinkFail(a=0, b=7), NicPortFlap(host="h0")])
        view = plan.apply(bare_host)
        assert view.applied_faults == (LinkFail(a=0, b=7),)


class TestFaultedMachine:
    def test_fingerprint_changes(self, bare_host):
        view = FaultedMachine(bare_host, [LinkFail(a=0, b=7)])
        assert machine_fingerprint(view) != machine_fingerprint(bare_host)

    def test_no_faults_still_new_name(self, bare_host):
        view = FaultedMachine(bare_host, [])
        assert view.name.endswith("+faults[none]")

    def test_failed_link_gone(self, bare_host):
        view = FaultedMachine(bare_host, [LinkFail(a=0, b=7)])
        assert (0, 7) not in view.links and (7, 0) not in view.links
        # The machine still routes around the missing cable.
        assert view.dma_path_gbps(0, 7) > 0

    def test_isolation_raises_routing_error(self, bare_host):
        # Node 0's only physical cables on the reference host: 0-1, 0-7.
        view = FaultedMachine(bare_host, [LinkFail(a=0, b=1), LinkFail(a=0, b=7)])
        with pytest.raises(RoutingError):
            view.dma_path_gbps(0, 7)
        # Unaffected pairs still route.
        assert view.dma_path_gbps(2, 7) > 0

    def test_restore_fingerprint_identical(self, bare_host):
        view = FaultedMachine(bare_host, [LinkFail(a=0, b=7)])
        assert machine_fingerprint(view.restore()) == machine_fingerprint(bare_host)

    def test_devices_carried_over(self, host):
        view = FaultedMachine(host, [LinkFail(a=0, b=7)])
        assert sorted(view.devices) == sorted(host.devices)
        assert sorted(view.restore().devices) == sorted(host.devices)

    def test_non_fault_rejected(self, bare_host):
        with pytest.raises(FaultError):
            FaultedMachine(bare_host, ["nope"])

    def test_resource_fault_rejected_statically(self, bare_host):
        with pytest.raises(FaultError):
            FaultedMachine(bare_host, [NicPortFlap()])
