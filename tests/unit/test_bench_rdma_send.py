"""The RDMA SEND/RECEIVE engine (§III-B2 lists it alongside READ/WRITE)."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.rng import RngRegistry


@pytest.fixture()
def runner(host):
    return FioRunner(host, RngRegistry())


class TestRdmaSend:
    def test_send_is_a_write_direction(self):
        job = FioJob(name="s", engine="rdma", rw="send")
        assert job.direction == "write"
        assert job.profile_name == "rdma_send"

    def test_tracks_rdma_write_closely(self, runner, host):
        """SEND adds receiver-side matching overhead but keeps the
        write-direction class structure."""
        for node in (6, 0, 2):
            send = runner.run(
                FioJob(name=f"snd-{node}", engine="rdma", rw="send",
                       numjobs=4, cpunodebind=node)
            ).aggregate_gbps
            write = runner.run(
                FioJob(name=f"wrt-{node}", engine="rdma", rw="write",
                       numjobs=4, cpunodebind=node)
            ).aggregate_gbps
            assert send <= write * 1.02
            assert send == pytest.approx(write, rel=0.05)

    def test_class_structure_preserved(self, runner, host):
        sweep = {
            n: runner.run(
                FioJob(name=f"sc-{n}", engine="rdma", rw="send",
                       numjobs=4, cpunodebind=n)
            ).aggregate_gbps
            for n in host.node_ids
        }
        import numpy as np

        class2 = float(np.mean([sweep[n] for n in (0, 1, 4, 5)]))
        class3 = float(np.mean([sweep[n] for n in (2, 3)]))
        assert class3 < 0.8 * class2
