"""The chaos harness: seeded scenarios and the resilience report."""

import pytest

from repro.errors import FaultError
from repro.faults.chaos import SCENARIOS, run_chaos, run_scenario
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def report():
    return run_chaos(registry=RngRegistry(7), quick=True)


class TestScenarios:
    def test_all_three_run(self, report):
        assert [r.name for r in report.results] == list(SCENARIOS)

    def test_single_link_loss_reroutes(self, report):
        result = report.results[0]
        counts = result.counts()
        assert counts["rerouted"] > 0
        assert counts["failed"] == 0
        assert result.isolated_nodes == ()

    def test_cascading_isolation_fails_structurally(self, report):
        result = next(
            r for r in report.results if r.name == "cascading-node-isolation"
        )
        counts = result.counts()
        assert counts["failed"] > 0
        assert result.isolated_nodes != ()
        # The isolated node left the healthy class structure.
        faulted_members = {n for c in result.faulted_classes for n in c}
        assert not set(result.isolated_nodes) & faulted_members
        failed = [row for row in result.rows if row.status == "failed"]
        assert all(row.reason for row in failed)

    def test_flapping_uplink_recovers(self, report):
        result = next(r for r in report.results if r.name == "flapping-uplink")
        counts = result.counts()
        assert counts["recovered"] > 0
        assert counts["failed"] == 0
        assert sum(row.retries for row in result.rows) > 0
        assert result.degraded_gbps < result.healthy_gbps

    def test_bandwidth_retained_reported(self, report):
        for result in report.results:
            assert result.healthy_gbps > 0
            assert result.retained > 0


class TestDeterminism:
    def test_same_seed_bit_identical(self, report):
        again = run_chaos(registry=RngRegistry(7), quick=True)
        assert again.render() == report.render()
        assert again.to_dict() == report.to_dict()

    def test_different_seed_changes_report(self, report):
        other = run_chaos(registry=RngRegistry(8), quick=True)
        assert other.render() != report.render()


class TestApi:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError):
            run_scenario("meteor-strike")

    def test_single_scenario_selection(self):
        report = run_chaos(
            registry=RngRegistry(7), scenarios=("single-link-loss",), quick=True
        )
        assert len(report.results) == 1

    def test_to_dict_shape(self, report):
        data = report.to_dict()
        assert data["seed"] == 7
        assert len(data["scenarios"]) == 3
        for scenario in data["scenarios"]:
            assert set(scenario) >= {
                "name", "plan", "healthy_gbps", "degraded_gbps",
                "retained", "counts", "outcomes",
            }

    def test_render_mentions_plan_and_classes(self, report):
        text = report.render()
        assert "CHAOS RESILIENCE REPORT" in text
        assert "fault plan:" in text
        assert "classes (healthy):" in text


class TestRetryBudget:
    """--retry-budget/--retry-base thread a RetryPolicy into every scenario."""

    def test_zero_budget_fails_streams_immediately(self):
        from repro.retrying import RetryPolicy

        result = run_scenario(
            "cascading-node-isolation",
            registry=RngRegistry(3),
            quick=True,
            retry=RetryPolicy(max_retries=0, base_delay_s=0.1),
        )
        exhausted = result.retry_exhausted
        assert exhausted, "isolation must exhaust a zero retry budget"
        assert all(r.status == "failed" for r in exhausted)
        assert all(r.retries == 0 for r in exhausted)

    def test_retry_exhausted_in_render_and_dict(self):
        from repro.retrying import RetryPolicy

        result = run_scenario(
            "cascading-node-isolation",
            registry=RngRegistry(3),
            quick=True,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.1),
        )
        payload = result.to_dict()
        names = [r["name"] for r in payload["retry_exhausted"]]
        assert names == [r.name for r in result.retry_exhausted]
        if names:
            assert "retry-exhausted" in result.render()

    def test_default_policy_unchanged(self):
        """No retry argument reproduces the pre-knob report exactly."""
        from repro.retrying import RetryPolicy

        a = run_scenario(
            "cascading-node-isolation", registry=RngRegistry(5), quick=True
        )
        b = run_scenario(
            "cascading-node-isolation",
            registry=RngRegistry(5),
            quick=True,
            retry=RetryPolicy(max_retries=4, base_delay_s=0.25),
        )
        assert a.to_dict() == b.to_dict()
