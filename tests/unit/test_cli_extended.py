"""CLI surface for the extension subcommands."""

import json

from repro.cli.main import main


class TestNumademo:
    def test_grid_rendered(self, capsys):
        assert main(["numademo", "--node", "7"]) == 0
        out = capsys.readouterr().out
        assert "memset" in out
        assert "interleave" in out


class TestExport:
    def test_json_on_stdout(self, capsys):
        assert main(["export"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "hp-dl585-g7"
        assert len(data["nodes"]) == 8

    def test_export_reimportable(self, capsys):
        from repro.topology.serialize import machine_from_dict

        main(["--machine", "intel-4s4n", "export"])
        data = json.loads(capsys.readouterr().out)
        machine = machine_from_dict(data)
        assert machine.n_nodes == 4


class TestConcurrent:
    def test_jobfile_run(self, tmp_path, capsys):
        jobfile = tmp_path / "mixed.fio"
        jobfile.write_text(
            "[nic]\nioengine=rdma\nrw=write\nnumjobs=2\ncpunodebind=2\n"
            "[ssd]\nioengine=libaio\nrw=write\nnumjobs=2\niodepth=16\n"
            "cpunodebind=2\n"
        )
        assert main(["concurrent", str(jobfile)]) == 0
        out = capsys.readouterr().out
        assert "traffic counters" in out
        assert "total:" in out


class TestOnline:
    def test_policy_comparison(self, capsys):
        assert main(["online", "--streams", "12", "--rate", "0.2"]) == 0
        out = capsys.readouterr().out
        for policy in ("local", "random", "class-spread", "class-migrate"):
            assert policy in out
