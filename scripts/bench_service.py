#!/usr/bin/env python
"""Benchmark the service's tiered answer path and pin its contract.

Measures, on the reference host, through the *production* dispatch
path (``PlacementService.handle_line``):

* ``service_solve_baseline`` — the *same* soak trace through a service
  with no warm state: every request is answered from a cold start
  (sessions reset, fresh backend), so every solver-backed request pays
  one genuine Algorithm 1 characterization — the solve-every-request
  world this PR retires;
* ``service_tier1_predict`` — warmed ``predict_eq1`` answered by the
  analytic fit (mean + p99 in ``extra_info``);
* ``service_tier2_advise`` — warmed ``advise`` answered from the
  memoized class snapshot;
* ``service_soak_trace`` — per-request latency sustained over the
  healthy chaos-soak traffic mix (requests/sec in ``extra_info``),
  with the always-on live metrics plane recording (the shipped
  configuration);
* ``service_soak_trace_null`` — the same trace through a twin service
  with a disabled (``NullLivePlane``) plane: the A/B that isolates
  exactly what always-on recording costs per request (``metrics``
  requests are filtered out of the throughput trace — serving an
  exposition call is a feature, not overhead, and is measured on its
  own as ``service_metrics_call``).

Hard acceptance asserts (the ISSUE 8 + ISSUE 9 bar), on every run:

* tiered throughput on the soak trace >= 50x the solve-every-request
  baseline;
* tier-1 p99 latency < 1 ms;
* analytic-tier predictions within the documented 5% error bound of
  the exact tier-3 Eq. 1 answers on the fig10/table4 targets
  (reference host, node 7, write and read);
* live-plane overhead (null-plane rps vs live-plane rps, same
  process, interleaved passes) under ``LIVE_OVERHEAD_TOLERANCE``
  (default 5%);
* live-metrics-enabled throughput within ``BENCH_BASELINE_TOLERANCE``
  (default 25%, the bench_gate tolerance) of the committed
  ``BENCH_service.json`` — the cross-run guard that the metrics plane
  did not regress serving throughput.

Writes a pytest-benchmark-shaped JSON (``benchmarks[].stats``) so
``scripts/bench_gate.py`` can gate regressions; ``bench_smoke.sh``
wires it in as the ``service`` suite.

Usage::

    PYTHONPATH=src python scripts/bench_service.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import sys
import time

from repro.obs.live import NullLivePlane
from repro.rng import RngRegistry
from repro.service import AdvisoryBackend, PlacementService
from repro.service.soak import LogicalClock, build_traffic
from repro.solver.session import reset_sessions
from repro.topology.builders import reference_host

RUNS = 25  # Algorithm 1 copies per probe: the service default
TARGET = 7  # the device node — the fig10/table4 target
ERR_BOUND = 0.05  # the documented tier-1 error bound (docs/service.md)


def _request(req_id, method, params):
    return json.dumps({
        "jsonrpc": "2.0", "id": req_id, "method": method, "params": params,
    }, sort_keys=True, separators=(",", ":"))


def _stats(times: list[float]) -> dict:
    return {
        "mean": statistics.fmean(times),
        "min": min(times),
        "max": max(times),
        "stddev": statistics.pstdev(times) if len(times) > 1 else 0.0,
        "rounds": len(times),
    }


def _p99(times: list[float]) -> float:
    ordered = sorted(times)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def bench_solve_baseline(machine, traffic: list[str]) -> list[float]:
    """The soak trace against a cold service per request — the old world.

    Between requests every warm artefact is discarded (process-wide
    solver sessions reset, fresh backend and breaker), so each
    solver-backed request pays one genuine cold characterization and
    each ``plan`` re-scores the attachment base from scratch.  Cheap
    meta/error requests stay cheap — the mix is identical to the tiered
    measurement, so the ratio is apples-to-apples.
    """
    times = []
    for line in traffic:
        reset_sessions()
        backend = AdvisoryBackend(machine, registry=RngRegistry(), runs=RUNS)
        service = PlacementService(backend, clock=LogicalClock())
        t0 = time.perf_counter()
        service.handle_line(line)
        times.append(time.perf_counter() - t0)
    reset_sessions()
    return times


def bench_handle_line(service, line: str, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        response = service.handle_line(line)
        times.append(time.perf_counter() - t0)
        assert '"error"' not in response.split('"result"')[0], response
    return times


def _trace_pass(service, traffic: list[str]) -> list[float]:
    times = []
    for line in traffic:
        t0 = time.perf_counter()
        service.handle_line(line)
        times.append(time.perf_counter() - t0)
    return times


def _elementwise_min(
    best: "list[float] | None", times: list[float]
) -> list[float]:
    if best is None:
        return times
    return [a if a < b else b for a, b in zip(best, times)]


def bench_soak_trace(service, traffic: list[str], passes: int = 5) -> list[float]:
    """The same soak traffic mix through the warmed tiered service.

    Runs the full trace ``passes`` times and keeps each line's fastest
    observation.  The per-line minimum is the structural cost of that
    request; a per-pass sum is hostage to whichever pass caught a
    scheduler preemption, which on a shared box swings whole passes by
    tens of percent.  (The cold baseline needs no such care: its cost
    is real work, three orders of magnitude above the jitter.)
    """
    best: list[float] | None = None
    for _ in range(passes):
        best = _elementwise_min(best, _trace_pass(service, traffic))
    return best


def bench_soak_trace_ab(
    live_service, null_service, traffic: list[str], passes: int = 9
) -> tuple[list[float], list[float]]:
    """Per-line-fastest soak passes for the live/null twin pair.

    Passes are interleaved (live, null, live, null, ...) so a machine
    load transient cannot systematically favour either side of the
    overhead A/B, and each side keeps its per-line minimum across
    passes — the same noise-rejecting estimator as
    :func:`bench_soak_trace`, applied symmetrically.
    """
    best_live: list[float] | None = None
    best_null: list[float] | None = None
    for _ in range(passes):
        best_live = _elementwise_min(best_live, _trace_pass(live_service, traffic))
        best_null = _elementwise_min(best_null, _trace_pass(null_service, traffic))
    return best_live, best_null


def check_analytic_accuracy(machine) -> dict:
    """Tier-1 vs tier-3 Eq. 1 on the fig10/table4 targets, per mode."""
    report = {}
    for mode in ("write", "read"):
        backend = AdvisoryBackend(
            machine, registry=RngRegistry(), runs=RUNS, clock=LogicalClock()
        )
        exact = backend.predict_eq1(TARGET, mode, [0, 1, 2, 3])
        assert exact["tier"] == 3
        worst = 0.0
        nodes = list(machine.node_ids)
        mixes = [[n] for n in nodes] + [nodes, [0, 1, 2, 3], [4, 5, 6, 7]]
        for streams in mixes:
            fast = backend.predict_eq1(TARGET, mode, streams)
            assert fast["tier"] == 1, fast
            model = backend.model(TARGET, mode)
            avgs = {c.rank: c.avg for c in model.classes}
            ranks = [model.class_of(n).rank for n in streams]
            truth = sum(avgs[r] for r in ranks) / len(ranks)
            worst = max(worst, abs(fast["predicted_gbps"] - truth) / truth)
        fit_bound = backend.tiers.entries[(TARGET, mode)].fit.eq1_rel_err_bound
        if worst > ERR_BOUND or fit_bound > ERR_BOUND:
            raise SystemExit(
                f"FAIL: analytic tier error {worst:.4f} (fit bound "
                f"{fit_bound:.4f}) exceeds the documented {ERR_BOUND} "
                f"bound for {mode}"
            )
        report[mode] = {
            "max_rel_err": round(worst, 6),
            "fit_rel_err_bound": round(fit_bound, 6),
        }
    return report


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_service.json"
    live_tolerance = float(os.environ.get("LIVE_OVERHEAD_TOLERANCE", "0.05"))
    baseline_tolerance = float(
        os.environ.get("BENCH_BASELINE_TOLERANCE", "0.25")
    )
    # The committed baseline this run must not regress; read it before
    # the output write below replaces it.
    committed_rps = None
    if os.path.exists(out_path):
        try:
            with open(out_path, "r", encoding="utf-8") as handle:
                committed_rps = json.load(handle)["extra_info"][
                    "soak_trace_rps"
                ]
        except (ValueError, KeyError):
            committed_rps = None
    machine = reference_host()

    # The soak mix now deals a few `metrics` requests; drop them from
    # the throughput trace so the numbers stay apples-to-apples with
    # the committed (pre-metrics-method) baseline, and so the live/null
    # A/B isolates the per-request *recording* tax — the cost of
    # serving a metrics request is measured separately below.
    traffic = [
        line for line in build_traffic(RngRegistry(42), machine, TARGET, 500)
        if '"method":"metrics"' not in line
    ]
    solve_times = bench_solve_baseline(machine, traffic)
    solve_mean = statistics.fmean(solve_times)
    baseline_rps = len(solve_times) / sum(solve_times)

    backend = AdvisoryBackend(machine, registry=RngRegistry(), runs=RUNS)
    service = PlacementService(backend, clock=LogicalClock())
    backend.warm((TARGET,))

    # The overhead twin: identical warm state, disabled metrics plane.
    null_backend = AdvisoryBackend(machine, registry=RngRegistry(), runs=RUNS)
    null_service = PlacementService(
        null_backend, clock=LogicalClock(), live=NullLivePlane()
    )
    null_backend.warm((TARGET,))

    predict_line = _request(1, "predict_eq1", {
        "target": TARGET, "mode": "read", "streams": [0, 1, 2, 3],
    })
    advise_line = _request(2, "advise", {"target": TARGET, "tasks": 8})
    bench_handle_line(service, predict_line, 200)  # warm the dispatch path
    bench_handle_line(null_service, predict_line, 200)
    tier1_times = bench_handle_line(service, predict_line, 2000)
    tier2_times = bench_handle_line(service, advise_line, 2000)
    metrics_line = _request(3, "metrics", {})
    metrics_times = bench_handle_line(service, metrics_line, 500)
    trace_times, null_trace_times = bench_soak_trace_ab(
        service, null_service, traffic
    )
    trace_rps = len(trace_times) / sum(trace_times)
    null_trace_rps = len(null_trace_times) / sum(null_trace_times)
    overhead_frac = max(0.0, (null_trace_rps - trace_rps) / null_trace_rps)
    tier1_p99 = _p99(tier1_times)

    accuracy = check_analytic_accuracy(machine)

    speedup = trace_rps / baseline_rps
    if speedup < 50.0:
        raise SystemExit(
            f"FAIL: tiered path sustains only {speedup:.1f}x the "
            f"solve-every-request baseline (need >= 50x)"
        )
    if tier1_p99 >= 1e-3:
        raise SystemExit(
            f"FAIL: tier-1 p99 {tier1_p99 * 1e6:.0f} us >= 1 ms"
        )
    if overhead_frac > live_tolerance:
        raise SystemExit(
            f"FAIL: live metrics plane costs {overhead_frac:.1%} of soak "
            f"throughput (null {null_trace_rps:.0f} rps vs live "
            f"{trace_rps:.0f} rps; tolerance {live_tolerance:.0%})"
        )
    if committed_rps and trace_rps < committed_rps * (1.0 - baseline_tolerance):
        raise SystemExit(
            f"FAIL: live-metrics soak throughput {trace_rps:.0f} rps fell "
            f"more than {baseline_tolerance:.0%} below the committed "
            f"baseline {committed_rps:.0f} rps"
        )

    payload = {
        "benchmarks": [
            {"name": "service_solve_baseline", "stats": _stats(solve_times)},
            {"name": "service_tier1_predict", "stats": _stats(tier1_times)},
            {"name": "service_tier2_advise", "stats": _stats(tier2_times)},
            {"name": "service_soak_trace", "stats": _stats(trace_times)},
            {"name": "service_soak_trace_null",
             "stats": _stats(null_trace_times)},
            {"name": "service_metrics_call", "stats": _stats(metrics_times)},
        ],
        "extra_info": {
            "baseline_rps": round(baseline_rps, 2),
            "soak_trace_rps": round(trace_rps, 2),
            "null_soak_trace_rps": round(null_trace_rps, 2),
            "live_overhead_frac": round(overhead_frac, 4),
            "live_overhead_tolerance": live_tolerance,
            "committed_soak_trace_rps": committed_rps,
            "speedup_vs_solve_every_request": round(speedup, 1),
            "tier1_p99_s": tier1_p99,
            "tier2_p99_s": _p99(tier2_times),
            "metrics_call_p99_s": _p99(metrics_times),
            "analytic_accuracy": accuracy,
            "documented_err_bound": ERR_BOUND,
            "runs_per_probe": RUNS,
            "target": TARGET,
        },
        "machine_info": {
            "machine": machine.name,
            "python_version": platform.python_version(),
            "system": platform.system(),
        },
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"service bench -> {out_path}")
    print(f"  solve-every-request : {solve_mean * 1e3:8.2f} ms/req "
          f"({baseline_rps:8.1f} req/s on the trace)")
    print(f"  tier-1 predict      : mean {statistics.fmean(tier1_times) * 1e6:7.1f} us, "
          f"p99 {tier1_p99 * 1e6:7.1f} us")
    print(f"  tier-2 advise       : mean {statistics.fmean(tier2_times) * 1e6:7.1f} us, "
          f"p99 {_p99(tier2_times) * 1e6:7.1f} us")
    print(f"  soak trace          : {trace_rps:8.1f} req/s "
          f"({speedup:.0f}x the solve-every-request baseline)")
    print(f"  live-plane overhead : {overhead_frac:7.2%} "
          f"(null plane {null_trace_rps:8.1f} req/s; "
          f"tolerance {live_tolerance:.0%})")
    print(f"  metrics call        : mean "
          f"{statistics.fmean(metrics_times) * 1e6:7.1f} us, "
          f"p99 {_p99(metrics_times) * 1e6:7.1f} us")
    if committed_rps:
        print(f"  vs committed bench  : {trace_rps / committed_rps:7.2%} "
              f"of {committed_rps:.1f} req/s "
              f"(floor {1.0 - baseline_tolerance:.0%})")
    for mode, acc in accuracy.items():
        print(f"  analytic err ({mode:5s}): max {acc['max_rel_err']:.4f}, "
              f"fit bound {acc['fit_rel_err_bound']:.4f} "
              f"(documented <= {ERR_BOUND})")
    print("OK: >= 50x throughput, tier-1 p99 < 1 ms, analytic within "
          "bound, live metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
