"""F7 — Fig. 7: SSD array bandwidth vs processes and NUMA binding."""


def test_fig7_ssd(run_paper_experiment):
    result = run_paper_experiment("f7")
    assert set(result.data) == {"write", "read"}
