"""``numactl`` front-end: static binding and the ``--hardware`` report."""

from __future__ import annotations

from repro.errors import AffinityError
from repro.memory.allocator import PageAllocator
from repro.memory.policy import MemBinding
from repro.osmodel.process import SimTask, TaskBinding
from repro.topology.distance import distance_matrix
from repro.topology.machine import Machine
from repro.units import MB

__all__ = ["Numactl"]


class Numactl:
    """The command-line affinity tool, as an object.

    ``run()`` mirrors ``numactl --cpunodebind= --membind= --interleave=
    <command>``: it returns a bound :class:`SimTask` the benchmark layer
    executes.  ``hardware()`` renders the ``numactl --hardware`` report
    (including per-node free memory, which on the reference host shows
    the paper's node-0 observation).
    """

    def __init__(self, machine: Machine, allocator: PageAllocator | None = None) -> None:
        self.machine = machine
        self.allocator = allocator or PageAllocator(machine)

    def run(
        self,
        name: str,
        threads: int = 1,
        cpunodebind: int | None = None,
        membind: tuple[int, ...] | None = None,
        interleave: tuple[int, ...] | None = None,
        preferred: int | None = None,
    ) -> SimTask:
        """Build a task with the requested static NUMA policy."""
        chosen = [opt for opt in (membind, interleave, preferred) if opt is not None]
        if len(chosen) > 1:
            raise AffinityError(
                "numactl accepts at most one of --membind/--interleave/--preferred"
            )
        if membind is not None:
            mem = MemBinding.bind(*membind)
        elif interleave is not None:
            mem = MemBinding.interleave(*interleave)
        elif preferred is not None:
            mem = MemBinding.preferred(preferred)
        else:
            mem = MemBinding.local()
        for node in (cpunodebind, *(mem.nodes)):
            if node is not None and node not in self.machine.node_ids:
                raise AffinityError(f"numactl: unknown node {node}")
        return SimTask(name=name, threads=threads, binding=TaskBinding(cpunodebind, mem))

    def hardware(self) -> str:
        """Render ``numactl --hardware`` for this machine."""
        machine = self.machine
        lines = [f"available: {machine.n_nodes} nodes ({machine.node_ids[0]}-{machine.node_ids[-1]})"]
        for nid in machine.node_ids:
            node = machine.node(nid)
            cpus = " ".join(str(c.core_id) for c in node.cores)
            lines.append(f"node {nid} cpus: {cpus}")
            lines.append(f"node {nid} size: {node.memory_bytes // MB} MB")
            lines.append(f"node {nid} free: {self.allocator.free_bytes(nid) // MB} MB")
        lines.append("node distances:")
        dist = distance_matrix(machine)
        header = "node " + " ".join(f"{n:>4}" for n in machine.node_ids)
        lines.append(header)
        for i, nid in enumerate(machine.node_ids):
            row = " ".join(f"{int(d):>4}" for d in dist[i])
            lines.append(f"{nid:>4}: {row}")
        return "\n".join(lines)
