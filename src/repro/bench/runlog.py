"""Persistent benchmark run log with regression detection.

The HPC guide's advice — track performance across time, asv-style —
applied to this library's own measurements: a JSON-lines file of
benchmark results, tagged with machine/seed context, plus a comparator
that flags drifts beyond a tolerance.  Typical uses:

* pin the calibrated reference numbers and fail CI if a refactor moves
  them;
* track a real host's characterisation over firmware updates (the
  library's results are deterministic, so any drift is a real change).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.bench.results import JobResult
from repro.errors import BenchmarkError

__all__ = ["RunRecord", "RunLog", "Regression"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One logged measurement."""

    key: str  # e.g. "rdma:write/node5/numjobs4"
    gbps: float
    machine: str
    seed: int
    tags: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "key": self.key,
                "gbps": self.gbps,
                "machine": self.machine,
                "seed": self.seed,
                "tags": self.tags,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        try:
            data = json.loads(line)
            if data.get("format_version") != _FORMAT_VERSION:
                raise BenchmarkError(
                    f"unsupported run-log format {data.get('format_version')!r}"
                )
            return cls(
                key=data["key"],
                gbps=float(data["gbps"]),
                machine=data["machine"],
                seed=int(data["seed"]),
                tags=data.get("tags", {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchmarkError(f"malformed run-log line: {exc}") from exc


@dataclass(frozen=True)
class Regression:
    """A key whose value moved beyond tolerance between two logs."""

    key: str
    old_gbps: float
    new_gbps: float

    @property
    def relative_change(self) -> float:
        """Signed relative change new vs old."""
        return (self.new_gbps - self.old_gbps) / self.old_gbps

    def render(self) -> str:
        """One-line description."""
        direction = "regressed" if self.relative_change < 0 else "improved"
        return (
            f"{self.key}: {self.old_gbps:.2f} -> {self.new_gbps:.2f} Gbps "
            f"({100 * self.relative_change:+.1f} %, {direction})"
        )


class RunLog:
    """Append-only JSON-lines result store."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def record(self, key: str, gbps: float, machine: str, seed: int,
               tags: Mapping | None = None) -> RunRecord:
        """Append one measurement."""
        if gbps <= 0:
            raise BenchmarkError(f"bandwidth must be positive, got {gbps!r}")
        record = RunRecord(key=key, gbps=float(gbps), machine=machine,
                           seed=seed, tags=dict(tags or {}))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
        return record

    def record_job(self, result: JobResult, machine: str, seed: int) -> RunRecord:
        """Append a fio :class:`JobResult` under a canonical key."""
        nodes = ",".join(str(n) for n, _m in result.streams)
        key = f"{result.engine}/nodes{nodes}/numjobs{result.numjobs}"
        return self.record(key, result.aggregate_gbps, machine, seed)

    def load(self) -> list[RunRecord]:
        """All records, in append order."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_json(line))
        return records

    def latest(self) -> dict[str, RunRecord]:
        """The most recent record per key."""
        out: dict[str, RunRecord] = {}
        for record in self.load():
            out[record.key] = record
        return out

    def compare(
        self, other: "RunLog" | Iterable[RunRecord], tolerance: float = 0.05
    ) -> list[Regression]:
        """Keys whose latest values differ beyond ``tolerance``.

        ``other`` is the *new* log; ``self`` holds the baseline.
        Keys missing on either side are ignored (they are additions or
        removals, not drifts).
        """
        if not 0 < tolerance < 1:
            raise BenchmarkError(f"tolerance must be in (0, 1), got {tolerance}")
        baseline = self.latest()
        if isinstance(other, RunLog):
            fresh = other.latest()
        else:
            fresh = {}
            for record in other:
                fresh[record.key] = record
        drifts = []
        for key, old in baseline.items():
            new = fresh.get(key)
            if new is None:
                continue
            change = abs(new.gbps - old.gbps) / old.gbps
            if change > tolerance:
                drifts.append(
                    Regression(key=key, old_gbps=old.gbps, new_gbps=new.gbps)
                )
        drifts.sort(key=lambda r: abs(r.relative_change), reverse=True)
        return drifts
