"""F3 — Fig. 3: the 8x8 STREAM Copy bandwidth matrix.

Asserted prose facts (§IV-A): the diagonal dominates its row with
node 0's local bandwidth the overall diagonal maximum; the neighbour is
second-best; CPU7->MEM4 = 21.34 Gbps yet CPU4->MEM7 = 18.45 Gbps (and
each sits on the paper's side of the respective {2,3} comparisons); the
matrix is visibly asymmetric.
"""

from __future__ import annotations

from repro.bench.stream import StreamBenchmark
from repro.experiments import paper_values
from repro.experiments.common import check, check_close, default_machine, default_registry
from repro.experiments.registry import ExperimentResult

TITLE = "Fig. 3: STREAM Copy bandwidth matrix (max of 100 runs)"


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Measure every (CPU, MEM) pair and verify the prose facts."""
    m = default_machine(machine)
    bench = StreamBenchmark(m, registry=default_registry(registry),
                            runs=10 if quick else 100)
    matrix = bench.matrix()

    facts = paper_values.STREAM_FACTS
    diag = {n: matrix.at(n, n) for n in m.node_ids}
    row_checks = []
    for cpu in m.node_ids:
        row = matrix.row(cpu)
        best = max(row, key=row.get)
        row_checks.append(best == cpu)

    def neighbour(node: int) -> int:
        pkg = m.node(node).package_id
        return next(n for n in m.packages[pkg].node_ids if n != node)

    neighbour_second = []
    for cpu in m.node_ids:
        row = dict(matrix.row(cpu))
        row.pop(cpu)
        best_remote = max(row, key=row.get)
        neighbour_second.append(best_remote == neighbour(cpu))

    checks = (
        check("local binding wins every row", all(row_checks)),
        check("node 0's local bandwidth is the diagonal maximum",
              max(diag, key=diag.get) == 0,
              f"diag: { {k: round(v, 1) for k, v in diag.items()} }"),
        check("neighbour is second-best in every row", all(neighbour_second)),
        check_close("CPU7->MEM4", matrix.at(7, 4), facts["cpu7_mem4"], 0.05),
        check_close("CPU4->MEM7", matrix.at(4, 7), facts["cpu4_mem7"], 0.05),
        check("CPU7->MEM4 beats CPU7->MEM{2,3}",
              matrix.at(7, 4) > matrix.at(7, 2) and matrix.at(7, 4) > matrix.at(7, 3)),
        check("CPU4->MEM7 loses to CPU{2,3}->MEM7",
              matrix.at(4, 7) < matrix.at(2, 7) and matrix.at(4, 7) < matrix.at(3, 7)),
        check("matrix is asymmetric (>5 %)", matrix.asymmetry() > 0.05,
              f"asymmetry {100 * matrix.asymmetry():.1f} %"),
    )
    return ExperimentResult(
        exp_id="f3",
        title=TITLE,
        text=matrix.render(),
        data={"matrix": {f"{i},{j}": matrix.at(i, j)
                         for i in m.node_ids for j in m.node_ids},
              "asymmetry": matrix.asymmetry()},
        checks=checks,
    )
