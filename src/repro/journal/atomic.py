"""Atomic file writes: temp file + fsync + rename, never a torn artifact.

Every artifact the pipeline byte-compares or re-reads after a crash —
run manifests, JSONL traces, experiment text outputs, bench snapshots,
journal sidecars — goes through these helpers.  The contract: a reader
(or a resumed run) sees either the complete previous content or the
complete new content, never a prefix.  ``kill -9`` between any two
instructions leaves at worst an orphaned ``*.tmp.<pid>`` file beside
the target, which the next atomic write of the same path sweeps up.

POSIX ``rename(2)`` within one filesystem is atomic; the temp file is
created in the target's directory so the rename never crosses a mount.
The file is fsynced before the rename and the directory after it, so
the new name survives power loss, not just process death.
"""

from __future__ import annotations

import json
import os
import pathlib

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def _sweep_stale_temps(target: pathlib.Path) -> None:
    """Remove temp files a crashed writer of ``target`` left behind."""
    prefix = target.name + ".tmp."
    try:
        for entry in target.parent.iterdir():
            if entry.name.startswith(prefix):
                try:
                    entry.unlink()
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
    except OSError:  # pragma: no cover - directory vanished
        pass


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename)."""
    target = pathlib.Path(path)
    _sweep_stale_temps(target)
    temp = target.parent / f"{target.name}.tmp.{os.getpid()}"
    fd = os.open(temp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(temp, target)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    _fsync_dir(target.parent)


def _fsync_dir(directory: pathlib.Path) -> None:
    """Flush a directory entry table (best effort on exotic filesystems)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - O_RDONLY on dirs unsupported
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path, data, *, indent: int | None = 2,
                      sort_keys: bool = True, default=None) -> None:
    """Serialize ``data`` as JSON and write it to ``path`` atomically.

    Serialization happens **before** the temp file is created, so an
    unserializable object can never leave a partial artifact behind.
    """
    text = json.dumps(data, indent=indent, sort_keys=sort_keys, default=default)
    atomic_write_text(path, text + "\n")
