"""Baseline NUMA cost models the paper argues against.

Two families of prior art, each reduced to a per-node score map that
plugs into the same classification / prediction machinery as the
memcpy model, so the comparison is apples to apples:

* :func:`hop_distance_model` — the SLIT/hop-count heuristic behind the
  schedulers of [10]-[12]: fewer hops, better score.
* :func:`stream_cost_model` — the cbench approach of McCormick et al.
  [18]/[27]: build the cost model from STREAM measurements (the
  CPU-centric or memory-centric row/column of the device node).

The a4 ablation classifies nodes under each model, predicts measured
I/O with Eq. 1 on top of each, and shows the memcpy model dominating —
the paper's central claim, quantified.
"""

from __future__ import annotations

from repro.bench.stream import StreamBenchmark
from repro.core.classify import classify_nodes
from repro.core.model import IOPerformanceModel
from repro.errors import ModelError
from repro.rng import RngRegistry
from repro.topology.distance import hop_matrix
from repro.topology.machine import Machine

__all__ = ["hop_distance_model", "stream_cost_model", "model_from_values"]


def hop_distance_model(machine: Machine, target_node: int) -> dict[int, float]:
    """Per-node scores under the hop-distance hypothesis.

    Converted to a pseudo-bandwidth (higher = better) as ``1 / (1 + h)``
    scaled to a nominal 50 Gbps so the numbers sit in the same range as
    real models; only the *ordering* is meaningful, which is all the
    hop-distance heuristic ever claimed.
    """
    if target_node not in machine.node_ids:
        raise ModelError(f"unknown target node {target_node}")
    hops = hop_matrix(machine)
    index = {n: i for i, n in enumerate(machine.node_ids)}
    t = index[target_node]
    return {
        n: 50.0 / (1.0 + float(hops[index[n], t])) for n in machine.node_ids
    }


def stream_cost_model(
    machine: Machine,
    target_node: int,
    mode: str,
    registry: RngRegistry | None = None,
    runs: int = 100,
) -> dict[int, float]:
    """cbench-style STREAM cost model of the device node.

    ``mode="write"`` uses the memory-centric column (every node pushing
    toward the device node's memory); ``mode="read"`` the CPU-centric
    row — the closest STREAM analogue of each I/O direction.
    """
    if mode not in ("write", "read"):
        raise ModelError(f"mode must be 'write' or 'read', got {mode!r}")
    bench = StreamBenchmark(machine, registry=registry or RngRegistry(), runs=runs)
    if mode == "write":
        return bench.memory_centric(target_node)
    return bench.cpu_centric(target_node)


def model_from_values(
    machine: Machine,
    target_node: int,
    mode: str,
    values: dict[int, float],
    label: str,
    rel_gap: float = 0.08,
) -> IOPerformanceModel:
    """Wrap any per-node score map in the standard model object.

    This is what makes baselines directly comparable: they get the same
    local/neighbour rule, the same gap clustering, and work with the
    same :class:`~repro.core.predictor.MixturePredictor`.
    """
    classes = classify_nodes(values, machine, target_node, rel_gap=rel_gap)
    return IOPerformanceModel(
        machine_name=f"{machine.name}[{label}]",
        target_node=target_node,
        mode=mode,
        values=dict(values),
        classes=classes,
        threads=machine.cores_per_node(),
        runs=1,
    )
