"""Route enumeration and plane-specific selection."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.interconnect.link import link_pair
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.routing.table import RoutingTable, enumerate_min_hop_routes, select_route


def _links(*pairs):
    """Build a link map from (a, b, kwargs) tuples."""
    out = {}
    for a, b, kw in pairs:
        fwd, rev = link_pair(a, b, kw.pop("width", 16), kw.pop("gts", 3.2), **kw)
        out[fwd.ends] = fwd
        out[rev.ends] = rev
    return out


@pytest.fixture()
def diamond():
    """0 -> {1, 2} -> 3, with the 1-branch wider for DMA."""
    return _links(
        (0, 1, {"dma_credit": 1.0}),
        (0, 2, {"dma_credit": 0.5}),
        (1, 3, {"dma_credit": 1.0}),
        (2, 3, {"dma_credit": 0.5}),
    )


class TestEnumeration:
    def test_local_route(self, diamond):
        assert enumerate_min_hop_routes(diamond, 1, 1) == [(1,)]

    def test_direct_route(self, diamond):
        assert enumerate_min_hop_routes(diamond, 0, 1) == [(0, 1)]

    def test_all_min_hop_routes_found(self, diamond):
        assert enumerate_min_hop_routes(diamond, 0, 3) == [(0, 1, 3), (0, 2, 3)]

    def test_unreachable_raises(self):
        links = _links((0, 1, {}))
        links_plus_island = dict(links)
        island = _links((5, 6, {}))
        links_plus_island.update(island)
        with pytest.raises(RoutingError):
            enumerate_min_hop_routes(links_plus_island, 0, 6)

    def test_unknown_endpoint_raises(self, diamond):
        with pytest.raises(RoutingError):
            enumerate_min_hop_routes(diamond, 0, 99)


class TestSelection:
    def test_dma_prefers_widest_bottleneck(self, diamond):
        assert select_route(diamond, PLANE_DMA, 0, 3) == (0, 1, 3)

    def test_pio_prefers_higher_pio_cap(self):
        links = _links(
            (0, 1, {"pio_cap_gbps": 25.0}),
            (0, 2, {"pio_cap_gbps": 10.0}),
            (1, 3, {"pio_cap_gbps": 25.0}),
            (2, 3, {"pio_cap_gbps": 10.0}),
        )
        assert select_route(links, PLANE_PIO, 0, 3) == (0, 1, 3)

    def test_min_hop_wins_over_width(self):
        # Direct narrow link vs wide 3-hop detour: hardware routes minimal.
        links = _links(
            (0, 3, {"dma_credit": 0.3}),
            (0, 1, {}),
            (1, 2, {}),
            (2, 3, {}),
        )
        assert select_route(links, PLANE_DMA, 0, 3) == (0, 3)

    def test_lexicographic_tie_break(self):
        links = _links(
            (0, 1, {}),
            (0, 2, {}),
            (1, 3, {}),
            (2, 3, {}),
        )
        assert select_route(links, PLANE_DMA, 0, 3) == (0, 1, 3)


class TestRoutingTable:
    def test_routes_cached_and_consistent(self, diamond):
        table = RoutingTable(diamond)
        assert table.route(PLANE_DMA, 0, 3) == table.route(PLANE_DMA, 0, 3)

    def test_route_links_match_hops(self, diamond):
        table = RoutingTable(diamond)
        hops = table.route(PLANE_DMA, 0, 3)
        links = table.route_links(PLANE_DMA, 0, 3)
        assert [l.ends for l in links] == list(zip(hops, hops[1:]))

    def test_override(self, diamond):
        table = RoutingTable(diamond)
        table.set_route(PLANE_DMA, (0, 2, 3))
        assert table.route(PLANE_DMA, 0, 3) == (0, 2, 3)
        # Other plane unaffected.
        assert table.route(PLANE_PIO, 0, 3) != (0, 2, 3) or True

    def test_override_requires_real_links(self, diamond):
        table = RoutingTable(diamond)
        with pytest.raises(RoutingError):
            table.set_route(PLANE_DMA, (0, 3))

    def test_override_needs_two_hops(self, diamond):
        table = RoutingTable(diamond)
        with pytest.raises(TopologyError):
            table.set_route(PLANE_DMA, (0,))

    def test_route_unknown_endpoint_raises(self, diamond):
        table = RoutingTable(diamond)
        with pytest.raises(RoutingError):
            table.route(PLANE_DMA, 0, 99)


class TestPopulate:
    def test_populate_matches_select_route(self, diamond):
        table = RoutingTable(diamond)
        table.populate(PLANE_DMA)
        table.populate(PLANE_PIO)
        for plane in (PLANE_DMA, PLANE_PIO):
            for src in range(4):
                for dst in range(4):
                    assert table.route(plane, src, dst) == select_route(
                        diamond, plane, src, dst
                    )

    def test_populate_respects_prior_override(self, diamond):
        table = RoutingTable(diamond)
        table.set_route(PLANE_DMA, (0, 2, 3))
        table.populate(PLANE_DMA)
        assert table.route(PLANE_DMA, 0, 3) == (0, 2, 3)

    def test_override_after_populate_wins(self, diamond):
        table = RoutingTable(diamond)
        table.populate(PLANE_DMA)
        table.set_route(PLANE_DMA, (0, 2, 3))
        assert table.route(PLANE_DMA, 0, 3) == (0, 2, 3)

    def test_populate_unknown_node_raises(self, diamond):
        table = RoutingTable(diamond)
        with pytest.raises(RoutingError):
            table.populate(PLANE_DMA, nodes=(0, 1, 2, 3, 99))

    def test_populate_disconnected_names_pair(self):
        links = _links((0, 1, {}))
        links.update(_links((5, 6, {})))
        table = RoutingTable(links)
        with pytest.raises(RoutingError, match="no route from node 0 to node 5"):
            table.populate(PLANE_DMA)

    def test_adjacency_is_cached(self, diamond):
        table = RoutingTable(diamond)
        assert table.adjacency is table.adjacency
        assert table.adjacency[0] == [1, 2]
