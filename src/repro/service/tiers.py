"""The tiered answer path: analytic fast tier, class-model tier, solver tier.

The paper's whole argument is that aggregate I/O bandwidth is
predictable from a *small per-class model* (Eq. 1 over Algorithm 1's
equivalence classes) — so the service should not run a full
:class:`~repro.solver.session.SolverSession` solve for every request.
This module is the explicit answer hierarchy:

* **Tier 1 — analytic fast tier** (:class:`AnalyticFit`).  A closed-form
  bandwidth predictor fitted per ``(target, mode)`` class from the last
  full characterization.  The builder's measurement noise is
  multiplicative log-normal, so the fit is the log-domain least-squares
  coefficient per class (the geometric mean — the maximum-likelihood
  base bandwidth under that noise model, in the spirit of the
  Treibig/Hager bandwidth-limited-kernel model).  Answering is pure
  arithmetic over precomputed coefficients — no solver, no numpy,
  microseconds — and every fit records its own measured error bounds
  against the tier-3 values it was fitted from.
* **Tier 2 — class-model tier** (:class:`TierEntry`).  Memoized
  :class:`~repro.service.backend.ClassSnapshot` Eq. 1 mixtures plus the
  exact per-node values and core counts captured at solve time: enough
  to reproduce ``advise``/``classify`` answers *bit-identically* to the
  slow path without touching a solver.  This is the breaker's last-good
  store promoted to a first-class always-warm cache with staleness
  tracking.
* **Tier 3 — solver tier**.  The existing full characterization
  (in-process or ``--solver-pool``), which refreshes tiers 1–2 on every
  completed solve.

Every tiered answer is stamped ``{"tier": 1|2|3, "staleness_s": ...}``
(:func:`stamp_tier`); staleness is measured on the service clock, so
the chaos soak's logical clock keeps same-seed twins byte-identical.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.model import IOPerformanceModel
from repro.service.protocol import wire_fragments
from repro.topology.machine import Machine

__all__ = [
    "TIER_ANALYTIC",
    "TIER_CLASS",
    "TIER_SOLVE",
    "stamp_tier",
    "wire_gbps",
    "AnalyticFit",
    "TierEntry",
    "TierStore",
    "WireAnswer",
    "wire_answer",
]

#: Tier tags carried on every tiered response.
TIER_ANALYTIC = 1  # closed-form fit, pure arithmetic
TIER_CLASS = 2  # memoized class snapshot / Eq. 1 mixture
TIER_SOLVE = 3  # full Algorithm 1 characterization

#: LRU bound on per-entry answer memos (distinct param combinations).
_MEMO_CAP = 128


def wire_gbps(value: float) -> float:
    """A bandwidth (or ratio) as it appears on the wire: six decimals.

    µGbps / micro-fraction precision — far below the characterization
    noise — keeps responses compact (float serialization dominates the
    warm-path encode cost) and byte-stable across tiers: the fast and
    slow paths round the *same* full-precision number, so bit-identity
    between them is preserved.
    """
    return round(value, 6)


class WireAnswer(dict):
    """A tiered answer that also carries its pre-encoded wire form.

    To every consumer this *is* the result dict; the serving fast path
    additionally splices ``wire_pre``/``wire_post`` — the result
    encoded once at memo time via
    :func:`~repro.service.protocol.wire_fragments` — around the live
    staleness, instead of re-encoding the payload on every request.
    """

    __slots__ = ("wire_pre", "wire_post")


def wire_answer(cached: tuple) -> WireAnswer:
    """A fresh :class:`WireAnswer` from a ``(payload, pre, post)`` memo."""
    payload, pre, post = cached
    answer = WireAnswer(payload)
    answer.wire_pre = pre
    answer.wire_post = post
    return answer


def stamp_tier(payload: dict, tier: int, staleness_s: float) -> dict:
    """Stamp the tier/staleness response contract onto ``payload``.

    ``staleness_s`` is rounded (µs precision) so logical-clock soaks
    stay byte-stable and monotonic-clock responses stay readable.
    """
    payload["tier"] = tier
    payload["staleness_s"] = round(max(0.0, staleness_s), 6)
    return payload


@dataclass(frozen=True)
class AnalyticFit:
    """Tier 1: the closed-form per-class bandwidth predictor.

    Fitted from one :class:`~repro.core.model.IOPerformanceModel`:
    ``beta[rank]`` is the log-domain least-squares coefficient of the
    class (the geometric mean of its node bandwidths — the MLE of the
    base bandwidth under the builder's multiplicative log-normal noise).
    ``node_rank`` maps every node to its class, so an Eq. 1 prediction
    is a dict-lookup weighted sum: pure arithmetic, no solver.

    The fit carries its own honesty metrics, measured at fit time
    against the tier-3 values:

    * ``eq1_rel_err_bound`` — max over classes of the relative
      coefficient error ``|beta_c - avg_c| / avg_c``.  Any Eq. 1
      mixture prediction is a convex combination of class coefficients,
      so its relative error against the tier-3 Eq. 1 answer is bounded
      by this number.
    * ``max_node_rel_err`` — max over nodes of ``|beta_c(i) - b_i| /
      b_i`` (the within-class spread the class model compresses away).
    """

    machine_name: str
    target: int
    mode: str
    beta: dict[int, float]  # class rank -> fitted coefficient (Gbps)
    node_rank: dict[int, int]  # node id -> class rank
    eq1_rel_err_bound: float
    max_node_rel_err: float

    @classmethod
    def fit(cls, model: IOPerformanceModel) -> "AnalyticFit":
        """Fit the closed-form predictor from a full characterization."""
        beta: dict[int, float] = {}
        node_rank: dict[int, int] = {}
        eq1_err = 0.0
        node_err = 0.0
        for perf_class in model.classes:
            values = [model.values[n] for n in perf_class.node_ids]
            coeff = math.exp(sum(math.log(v) for v in values) / len(values))
            beta[perf_class.rank] = coeff
            eq1_err = max(eq1_err, abs(coeff - perf_class.avg) / perf_class.avg)
            for node, value in zip(perf_class.node_ids, values):
                node_rank[node] = perf_class.rank
                node_err = max(node_err, abs(coeff - value) / value)
        return cls(
            machine_name=model.machine_name,
            target=model.target_node,
            mode=model.mode,
            beta=beta,
            node_rank=node_rank,
            eq1_rel_err_bound=eq1_err,
            max_node_rel_err=node_err,
        )

    def predict_eq1(self, streams: "list[int]") -> "dict | None":
        """The analytic Eq. 1 answer payload, or ``None`` off-model.

        Pure arithmetic: class fractions of the stream mix times the
        fitted coefficients.  Returns ``None`` when a stream node is
        outside the fitted node set (the caller falls through a tier).
        """
        alpha: dict[int, float] = {}
        for node in streams:
            rank = self.node_rank.get(node)
            if rank is None:
                return None
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        total = sum(alpha.values())
        predicted = sum(
            (share / total) * self.beta[rank] for rank, share in alpha.items()
        )
        return {
            "degraded": False,
            "source": "analytic-fit",
            "machine": self.machine_name,
            "target": self.target,
            "mode": self.mode,
            "streams": list(streams),
            "predicted_gbps": wire_gbps(predicted),
            "class_fractions": {
                str(rank): wire_gbps(share / total)
                for rank, share in sorted(alpha.items())
            },
            "fit_rel_err_bound": round(self.eq1_rel_err_bound, 6),
        }


@dataclass
class TierEntry:
    """Everything tiers 1–2 need about one ``(target, mode)`` class model.

    Captured from a completed tier-3 solve: the class snapshot, the
    exact per-node values, per-node core counts (for capacity-aware
    placement), the analytic fit, and the freshness bookkeeping.

    Answer payloads are memoized per parameter combination (bounded
    LRU) — an entry is immutable between solves, so a repeat question
    has a repeat answer, and the warm path degenerates to a dict copy.
    A refresh replaces the whole entry, so the memos can never serve
    an answer from a superseded characterization.
    """

    snapshot: "object"  # ClassSnapshot (import cycle: backend imports us)
    fit: AnalyticFit
    values: dict[int, float]
    core_counts: dict[int, int]
    fingerprint: str
    refreshed_at: float
    solves: int = 1
    #: Mean of the class averages (Gbps) — the one-number summary of
    #: the model behind every answer this entry serves, precomputed so
    #: the drift watch can fold a served answer in at dict-update cost.
    model_mean: float = 0.0
    #: The ``(target, mode, model_mean)`` triple the drift watch is
    #: fed per served answer — constant for the entry's lifetime, so
    #: prebuilt here and handed over without a per-answer tuple alloc.
    drift_note: tuple = ()
    _advise_memo: OrderedDict = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _predict_memo: OrderedDict = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _analytic_memo: OrderedDict = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _classify_memo: "tuple | None" = field(
        default=None, repr=False, compare=False
    )

    def staleness(self, now: float) -> float:
        """Seconds since the entry was last refreshed by a solve."""
        return max(0.0, now - self.refreshed_at)

    @staticmethod
    def _memoize(memo: OrderedDict, key, payload: dict, tier: int) -> tuple:
        """Store ``(payload, pre, post)`` — the answer plus its wire form."""
        pre, post = wire_fragments(payload, tier)
        memo[key] = cached = (payload, pre, post)
        while len(memo) > _MEMO_CAP:
            memo.popitem(last=False)
        return cached

    # --- tier-2 answers (exact class-model arithmetic) ---------------------
    def _class_rows(self):
        return self.snapshot.classes  # (rank, node_ids, avg, lo, hi) rows

    def advise_payload(
        self, tasks: int, avoid_irq_node: bool, tolerance: float
    ) -> dict:
        """Class-aware placement, bit-identical to the tier-3 advisor.

        Reproduces :class:`~repro.core.scheduler_advisor.PlacementAdvisor`
        exactly — equivalence within ``tolerance`` of the best class,
        candidate nodes best class first, capacity-aware round-robin
        fill honouring core counts — from the memoized snapshot alone.
        """
        key = (tasks, avoid_irq_node, tolerance)
        cached = self._advise_memo.get(key)
        if cached is not None:
            self._advise_memo.move_to_end(key)
            return wire_answer(cached)
        avgs = self.snapshot.class_avgs()
        ranks = set(self.snapshot.equivalent_classes(tolerance))
        nodes: list[int] = []
        for rank, node_ids, _avg, _lo, _hi in sorted(
            self._class_rows(), key=lambda row: -avgs[row[0]]
        ):
            if rank in ranks:
                nodes.extend(node_ids)
        if avoid_irq_node and len(nodes) > 1:
            nodes = [n for n in nodes if n != self.snapshot.target_node]
        capacity = {n: self.core_counts.get(n, 1) for n in nodes}
        placement = {n: 0 for n in nodes}
        remaining = tasks
        while remaining:
            progressed = False
            for node in nodes:
                if remaining == 0:
                    break
                if placement[node] < capacity[node]:
                    placement[node] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                for node in nodes:
                    if remaining == 0:
                        break
                    placement[node] += 1
                    remaining -= 1
        stream_nodes: list[int] = []
        for node in sorted(placement):
            stream_nodes.extend([node] * placement[node])
        payload = {
            "degraded": False,
            "source": "class-model",
            "machine": self.snapshot.machine_name,
            "target": self.snapshot.target_node,
            "mode": self.snapshot.mode,
            "tasks_per_node": {
                str(n): c for n, c in sorted(placement.items()) if c
            },
            "classes_used": sorted(ranks),
            "stream_nodes": stream_nodes,
        }
        return wire_answer(
            self._memoize(self._advise_memo, key, payload, TIER_CLASS)
        )

    def predict_payload(self, streams: "list[int]") -> "dict | None":
        """Exact Eq. 1 mixture over the snapshot's class averages."""
        key = tuple(streams)
        cached = self._predict_memo.get(key)
        if cached is not None:
            self._predict_memo.move_to_end(key)
            return wire_answer(cached)
        alpha: dict[int, float] = {}
        for node in streams:
            rank = self.snapshot.rank_of(node)
            if rank is None:
                return None
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        avgs = self.snapshot.class_avgs()
        total = sum(alpha.values())
        predicted = sum(
            (share / total) * avgs[rank] for rank, share in alpha.items()
        )
        payload = {
            "degraded": False,
            "source": "class-model",
            "machine": self.snapshot.machine_name,
            "target": self.snapshot.target_node,
            "mode": self.snapshot.mode,
            "streams": list(streams),
            "predicted_gbps": wire_gbps(predicted),
            "class_fractions": {
                str(rank): wire_gbps(share / total)
                for rank, share in sorted(alpha.items())
            },
        }
        return wire_answer(
            self._memoize(self._predict_memo, key, payload, TIER_CLASS)
        )

    def analytic_predict(self, streams: "list[int]") -> "dict | None":
        """Tier 1: the memoized :meth:`AnalyticFit.predict_eq1` payload."""
        key = tuple(streams)
        cached = self._analytic_memo.get(key)
        if cached is not None:
            self._analytic_memo.move_to_end(key)
            return wire_answer(cached)
        payload = self.fit.predict_eq1(streams)
        if payload is None:
            return None
        return wire_answer(
            self._memoize(self._analytic_memo, key, payload, TIER_ANALYTIC)
        )

    def classify_payload(self) -> dict:
        """The full class structure, including the per-node values."""
        if self._classify_memo is None:
            payload = self.snapshot.to_dict()
            payload["values"] = {
                str(n): wire_gbps(v) for n, v in sorted(self.values.items())
            }
            payload["degraded"] = False
            payload["source"] = "class-model"
            pre, post = wire_fragments(payload, TIER_CLASS)
            self._classify_memo = (payload, pre, post)
        return wire_answer(self._classify_memo)


@dataclass
class TierStore:
    """The always-warm tier 1–2 cache, refreshed by completed solves.

    Keyed by ``(target, mode)``.  A *live* lookup (:meth:`fresh`)
    additionally requires the entry's machine fingerprint to match the
    live machine and the entry to be within ``max_staleness_s`` — a
    faulted machine view has a new fingerprint, so fault injection
    naturally bypasses the fast tiers without evicting anything.  The
    *last-good* lookup (:meth:`last_good`) ignores both, which is the
    degraded-mode contract: while the breaker is open, the freshest
    snapshot we ever had is the answer, honestly labelled.
    """

    entries: dict[tuple[int, str], TierEntry] = field(default_factory=dict)
    refreshes: int = 0
    stale_evictions: int = 0
    #: ``(target, mode) -> reason`` — keys the self-healing control
    #: plane pulled out of live serving (fault blast radius or a fired
    #: drift event).  Quarantined keys never serve tiers 1–2; requests
    #: either solve (tier 3) or get a labelled ``repairing`` answer.
    quarantined: dict[tuple[int, str], str] = field(default_factory=dict)

    def refresh(
        self,
        snapshot,
        model: IOPerformanceModel,
        machine: Machine,
        fingerprint: str,
        now: float,
    ) -> TierEntry:
        """Fold one completed tier-3 solve into the store."""
        previous = self.entries.get((model.target_node, model.mode))
        avgs = snapshot.class_avgs()
        mean = sum(avgs.values()) / len(avgs) if avgs else 0.0
        entry = TierEntry(
            snapshot=snapshot,
            fit=AnalyticFit.fit(model),
            values=dict(model.values),
            core_counts={
                n: machine.node(n).n_cores for n in model.values
            },
            fingerprint=fingerprint,
            refreshed_at=now,
            solves=(previous.solves + 1) if previous is not None else 1,
            model_mean=mean,
            drift_note=(model.target_node, model.mode, mean),
        )
        self.entries[(model.target_node, model.mode)] = entry
        self.refreshes += 1
        return entry

    def quarantine(self, target: int, mode: str, reason: str) -> None:
        """Pull ``(target, mode)`` out of live tier-1/2 serving.

        The entry itself stays — it is the honest last-good answer the
        ``repairing`` path serves — but :meth:`fresh` refuses it until
        :meth:`promote` restores the key.
        """
        self.quarantined[(target, mode)] = reason

    def promote(self, target: int, mode: str) -> bool:
        """Lift the quarantine on ``(target, mode)``; True if it was set."""
        return self.quarantined.pop((target, mode), None) is not None

    def quarantine_reason(self, target: int, mode: str) -> "str | None":
        """Why ``(target, mode)`` is quarantined, or ``None`` if live."""
        return self.quarantined.get((target, mode))

    def fresh(
        self,
        target: int,
        mode: str,
        fingerprint: str,
        now: float,
        max_staleness_s: "float | None",
    ) -> "TierEntry | None":
        """The live-answer entry, or ``None`` when tiers 1–2 must defer."""
        key = (target, mode)
        if key in self.quarantined:
            return None
        entry = self.entries.get(key)
        if entry is None or entry.fingerprint != fingerprint:
            return None
        if (
            max_staleness_s is not None
            and entry.staleness(now) > max_staleness_s
        ):
            return None
        return entry

    def last_good(self, target: int, mode: str) -> "TierEntry | None":
        """The degraded-mode entry: freshest ever, fingerprint-blind."""
        return self.entries.get((target, mode))

    def stats(self, now: float) -> dict:
        """JSON-able store health for ``health`` responses."""
        staleness = sorted(
            entry.staleness(now) for entry in self.entries.values()
        )
        return {
            "entries": len(self.entries),
            "refreshes": self.refreshes,
            "stale_evictions": self.stale_evictions,
            "quarantined": len(self.quarantined),
            "staleness_s": {
                "min": round(staleness[0], 6) if staleness else None,
                "max": round(staleness[-1], 6) if staleness else None,
            },
            "max_node_rel_err": round(
                max(
                    (e.fit.max_node_rel_err for e in self.entries.values()),
                    default=0.0,
                ),
                6,
            ),
        }
