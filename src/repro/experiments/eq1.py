"""EQ1 — the Eq. 1 worked example (§V-B).

Two RDMA_READ streams from node 2 (class 2) plus two from node 0
(class 3).  The paper predicts 20.017 Gbps from the class averages,
measures 19.415 Gbps, and reports 3.1 % relative error.  We re-run the
whole pipeline: model -> class averages -> prediction -> mixed fio run.
"""

from __future__ import annotations

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor
from repro.experiments import paper_values
from repro.experiments.common import (
    IO_NODE,
    check,
    check_close,
    default_machine,
    default_registry,
)
from repro.experiments.registry import ExperimentResult
from repro.experiments.sweeps import operation_sweep

TITLE = "Eq. 1: multi-user aggregate bandwidth prediction (RDMA_READ mixture)"

MIX_NODES = (2, 2, 0, 0)


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Predict and measure the paper's 50/50 class mixture."""
    m = default_machine(machine)
    registry = default_registry(registry)
    model = IOModelBuilder(m, registry=registry, runs=10 if quick else 100).build(
        IO_NODE, "read"
    )
    runner = FioRunner(m, registry=registry)
    rdma_read = operation_sweep(runner, "rdma", "read", numjobs=4)
    predictor = MixturePredictor(model, rdma_read)

    mixed = runner.run(
        FioJob(
            name="eq1-mixture",
            engine="rdma",
            rw="read",
            numjobs=len(MIX_NODES),
            stream_nodes=MIX_NODES,
        )
    )
    report = predictor.validate(mixed.aggregate_gbps, MIX_NODES)

    ex = paper_values.EQ1_EXAMPLE
    class2 = predictor.class_avg(model.class_of(2).rank)
    class3 = predictor.class_avg(model.class_of(0).rank)
    checks = (
        check_close("class average of node 2's class", class2, ex["class2_avg"], 0.05),
        check_close("class average of node 0's class", class3, ex["class3_avg"], 0.05),
        check_close("predicted aggregate", report.predicted_gbps, ex["predicted"], 0.05),
        check_close("measured aggregate", report.measured_gbps, ex["measured"], 0.05),
        check(
            "relative error within the paper's ballpark (<= 6 %)",
            report.relative_error <= 0.06,
            f"{100 * report.relative_error:.1f} % (paper: 3.1 %)",
        ),
    )
    text = "\n".join(
        [
            f"streams: {MIX_NODES} (class "
            f"{model.class_of(2).rank} x2 + class {model.class_of(0).rank} x2)",
            f"BW_class2 = {class2:.3f} Gbps, BW_class3 = {class3:.3f} Gbps",
            report.render(),
            f"paper: predicted {ex['predicted']}, measured {ex['measured']}, "
            f"error {100 * ex['relative_error']:.1f} %",
        ]
    )
    return ExperimentResult(
        exp_id="eq1", title=TITLE, text=text,
        data={
            "predicted": report.predicted_gbps,
            "measured": report.measured_gbps,
            "relative_error": report.relative_error,
        },
        checks=checks,
    )
