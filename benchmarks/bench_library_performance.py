"""Library-internals performance benchmarks.

Unlike the paper-artifact benches (single deterministic rounds), these
measure the hot paths of the library itself across rounds — the numbers
a contributor watches when touching the solver, the router, or
Algorithm 1.  Machine sizes scale to a 32-node host (the paper's
largest Table I configuration).
"""

from __future__ import annotations

import pytest

from repro.bench.stream import StreamBenchmark
from repro.core.iomodel import IOModelBuilder
from repro.flows.flow import Flow
from repro.flows.maxmin import maxmin_allocate
from repro.flows.network import FlowNetwork
from repro.rng import RngRegistry
from repro.routing.table import RoutingTable
from repro.topology.builders import hp_blade_32n, reference_host, scaled_host
from repro.units import GB


@pytest.fixture(scope="module")
def blade():
    return hp_blade_32n()


@pytest.fixture(scope="module")
def big_host():
    return scaled_host(16)  # 32 nodes with credit asymmetries


def test_perf_maxmin_200_flows(benchmark):
    """Water-filling with 200 flows over 40 shared resources."""
    resources = {f"r{i}": 10.0 + i for i in range(40)}
    flows = [
        Flow(
            name=f"f{i}",
            resources=tuple(f"r{(i + k) % 40}" for k in range(3)),
            demand_gbps=1.0 + (i % 7),
        )
        for i in range(200)
    ]
    rates = benchmark(maxmin_allocate, flows, resources)
    assert len(rates) == 200


def test_perf_flow_simulation_50_staggered(benchmark):
    """Time-domain simulation: 50 staggered finite flows, one bottleneck."""
    flows = [
        Flow(name=f"f{i}", resources=("dev",), demand_gbps=5.0,
             size_bytes=float((i % 5 + 1) * GB), start_s=0.5 * i)
        for i in range(50)
    ]
    network = FlowNetwork({"dev": 22.0})
    outcomes = benchmark(network.simulate, flows)
    assert len(outcomes) == 50


def test_perf_routing_all_pairs_32_nodes(benchmark, blade):
    """Static route computation for every (pair, plane) of a 32-node host."""

    def route_everything():
        table = RoutingTable(blade.links)
        count = 0
        for plane in ("pio", "dma"):
            for src in blade.node_ids:
                for dst in blade.node_ids:
                    if src != dst:
                        table.route(plane, src, dst)
                        count += 1
        return count

    assert benchmark(route_everything) == 2 * 32 * 31


def test_perf_stream_matrix_reference(benchmark):
    """The Fig. 3 protocol end to end (64 cells x 100 runs)."""
    host = reference_host(with_devices=False)

    def measure():
        return StreamBenchmark(host, registry=RngRegistry(), runs=100).matrix()

    matrix = benchmark(measure)
    assert matrix.values.shape == (8, 8)


def test_perf_iomodel_32_nodes(benchmark, big_host):
    """Algorithm 1 (both modes) on a 32-node asymmetric host."""

    def characterise():
        builder = IOModelBuilder(big_host, registry=RngRegistry(), runs=25)
        return builder.build_both(0)

    write_model, read_model = benchmark(characterise)
    assert write_model.n_classes >= 2
    assert read_model.n_classes >= 2
