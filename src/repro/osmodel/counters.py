"""Traffic counters: the uncore/link event counts of §II-B.

Linux exposes NUMA behaviour through hardware counters; the simulator's
equivalent is exact byte accounting per flow resource (fabric link
directions, memory controllers, device ports).  The concurrent runner
fills one of these per run, so a user can see *where* the bytes went —
e.g. that a mixed NIC+SSD workload from node 2 saturated the 2->7
request direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError

__all__ = ["TrafficCounters"]


@dataclass
class TrafficCounters:
    """Per-resource byte counts with capacity context."""

    #: resource name -> capacity in Gbps (from the flow network).
    capacities: dict[str, float]
    #: resource name -> bytes that crossed it.
    bytes_by_resource: dict[str, float] = field(default_factory=dict)
    #: wall-clock seconds the counters cover.
    window_s: float = 0.0

    def record_flow(self, resources, bytes_moved: float) -> None:
        """Account one completed flow's bytes on every resource it crossed."""
        if bytes_moved < 0:
            raise BenchmarkError(f"negative byte count {bytes_moved!r}")
        for resource in resources:
            if resource not in self.capacities:
                raise BenchmarkError(f"unknown resource {resource!r}")
            self.bytes_by_resource[resource] = (
                self.bytes_by_resource.get(resource, 0.0) + bytes_moved
            )

    def utilization(self, resource: str) -> float:
        """Average utilisation of ``resource`` over the window (0..1+)."""
        if resource not in self.capacities:
            raise BenchmarkError(f"unknown resource {resource!r}")
        if self.window_s <= 0:
            raise BenchmarkError("counter window not set; run a workload first")
        moved = self.bytes_by_resource.get(resource, 0.0)
        capacity_bytes = self.capacities[resource] * 1e9 / 8 * self.window_s
        return moved / capacity_bytes

    def hottest(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` busiest resources as (name, utilisation)."""
        busy = [
            (resource, self.utilization(resource))
            for resource in self.bytes_by_resource
        ]
        busy.sort(key=lambda item: -item[1])
        return busy[:n]

    def render(self, n: int = 8) -> str:
        """Top-N utilisation table."""
        lines = [f"traffic counters over {self.window_s:.1f} s:"]
        for resource, util in self.hottest(n):
            bar = "#" * int(round(40 * min(util, 1.0)))
            lines.append(f"  {resource:>18s} {100 * util:5.1f} % {bar}")
        return "\n".join(lines)
