"""Degraded-mode flow simulation: reroute, retry, structured failure."""

import pytest

from repro.errors import RouteLostError, SimulationError
from repro.faults.degraded import (
    DegradedFlowRunner,
    RetryPolicy,
    machine_rerouter,
    reroute_resources,
)
from repro.faults.events import FaultEvent, LinkFail, NicPortFlap
from repro.faults.plan import FaultedMachine, FaultPlan
from repro.flows.flow import Flow
from repro.flows.network import FlowNetwork
from repro.rng import RngRegistry
from repro.solver.capacity import build_capacities

GB = 1e9


def wire_flow(name="f", size=10 * GB, start=0.0):
    return Flow(name=name, resources=("uplink-tx:h0",), demand_gbps=10.0,
                size_bytes=size, start_s=start)


class TestHealthyEquivalence:
    def test_empty_plan_matches_flow_network(self, bare_host):
        capacities = build_capacities(bare_host)
        flows = [
            Flow(name=f"c{i}", resources=reroute_resources(bare_host, i, 7),
                 demand_gbps=16.0, size_bytes=GB)
            for i in (0, 2, 5)
        ]
        degraded = DegradedFlowRunner(capacities).simulate(flows)
        healthy = FlowNetwork(capacities).simulate(flows)
        for name, outcome in healthy.items():
            assert degraded[name].status == "ok"
            assert degraded[name].retries == 0
            assert degraded[name].finish_s == pytest.approx(outcome.finish_s)
            assert degraded[name].bytes_moved == pytest.approx(outcome.bytes_moved)


class TestRetry:
    def test_flow_recovers_after_flap_window(self):
        plan = FaultPlan([FaultEvent(NicPortFlap(host="h0"), at_s=0.0, until_s=1.0)])
        runner = DegradedFlowRunner({"uplink-tx:h0": 10.0}, plan=plan)
        outcome = runner.simulate([wire_flow()])["f"]
        assert outcome.status == "recovered"
        assert outcome.retries > 0
        assert outcome.bytes_moved == pytest.approx(10 * GB)
        # Blocked for >= the 1 s outage, then 8 s of transfer at 10 Gbps.
        assert outcome.finish_s > 9.0

    def test_budget_exhaustion_fails_structurally(self):
        plan = FaultPlan([NicPortFlap(host="h0")])  # permanent, never recovers
        runner = DegradedFlowRunner(
            {"uplink-tx:h0": 10.0}, plan=plan, retry=RetryPolicy(max_retries=2)
        )
        outcome = runner.simulate([wire_flow()])["f"]
        assert outcome.status == "failed"
        assert not outcome.completed
        assert outcome.retries == 2
        assert outcome.bytes_moved == 0.0
        assert "uplink-tx:h0" in outcome.reason
        assert "2 retries" in outcome.reason

    def test_midstream_failure_keeps_partial_bytes(self):
        plan = FaultPlan([FaultEvent(NicPortFlap(host="h0"), at_s=4.0)])
        runner = DegradedFlowRunner(
            {"uplink-tx:h0": 10.0}, plan=plan, retry=RetryPolicy(max_retries=1)
        )
        outcome = runner.simulate([wire_flow()])["f"]
        assert outcome.status == "failed"
        # 4 s at 10 Gbps = 5 GB of the 10 GB moved before the fault.
        assert outcome.bytes_moved == pytest.approx(5 * GB)

    def test_jitter_is_seeded(self):
        plan = FaultPlan([FaultEvent(NicPortFlap(host="h0"), at_s=0.0, until_s=1.0)])

        def finish(seed):
            runner = DegradedFlowRunner(
                {"uplink-tx:h0": 10.0}, plan=plan,
                rng=RngRegistry(seed).stream("backoff"),
            )
            return runner.simulate([wire_flow()])["f"].finish_s

        assert finish(1) == finish(1)
        assert finish(1) != finish(2)


class TestReroute:
    def test_flow_reroutes_around_failed_link(self, bare_host):
        plan = FaultPlan([FaultEvent(LinkFail(a=2, b=7), at_s=0.05)])
        endpoints = {"f": (2, 7)}
        runner = DegradedFlowRunner(
            build_capacities(bare_host),
            plan=plan,
            rerouter=machine_rerouter(bare_host, plan, endpoints),
        )
        flow = Flow(name="f", resources=reroute_resources(bare_host, 2, 7),
                    demand_gbps=16.0, size_bytes=2 * GB)
        outcome = runner.simulate([flow])["f"]
        assert outcome.status == "rerouted"
        assert outcome.reroutes == 1
        assert outcome.retries == 0
        assert outcome.bytes_moved == pytest.approx(2 * GB)

    def test_no_alternative_falls_back_to_retries(self, bare_host):
        # Fail both of node 0's cables: no route survives.
        plan = FaultPlan([
            FaultEvent(LinkFail(a=0, b=1), at_s=0.05),
            FaultEvent(LinkFail(a=0, b=7), at_s=0.05),
        ])
        runner = DegradedFlowRunner(
            build_capacities(bare_host),
            plan=plan,
            retry=RetryPolicy(max_retries=1),
            rerouter=machine_rerouter(bare_host, plan, {"f": (0, 7)}),
        )
        flow = Flow(name="f", resources=reroute_resources(bare_host, 0, 7),
                    demand_gbps=16.0, size_bytes=8 * GB)
        outcome = runner.simulate([flow])["f"]
        assert outcome.status == "failed"
        assert outcome.retries == 1
        assert 0 < outcome.bytes_moved < 8 * GB


class TestHelpers:
    def test_reroute_resources_spans_path(self, bare_host):
        resources = reroute_resources(bare_host, 2, 7)
        assert resources[0] == "ctrl-dma:2"
        assert resources[1] == "ctrl-dma:7"
        assert "link-dma:2>7" in resources

    def test_reroute_resources_local(self, bare_host):
        assert reroute_resources(bare_host, 3, 3) == ("ctrl-dma:3",)

    def test_route_lost_error(self, bare_host):
        view = FaultedMachine(bare_host, [LinkFail(a=0, b=1), LinkFail(a=0, b=7)])
        with pytest.raises(RouteLostError):
            reroute_resources(view, 0, 7)

    def test_unsized_flow_rejected(self):
        runner = DegradedFlowRunner({"uplink-tx:h0": 10.0})
        with pytest.raises(SimulationError):
            runner.simulate([
                Flow(name="f", resources=("uplink-tx:h0",), demand_gbps=1.0)
            ])

    def test_retry_policy_validation(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows(self):
        policy = RetryPolicy(base_delay_s=0.25, multiplier=2.0, jitter=0.0)
        delays = [policy.delay_s(i, None) for i in range(3)]
        assert delays == [0.25, 0.5, 1.0]
