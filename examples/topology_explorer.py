#!/usr/bin/env python3
"""Explore the machine zoo: NUMA factors, topologies, and why hop
distance misleads.

Walks every built-in machine (the Table I servers, the four published
Fig. 1 Magny-Cours variants, and the calibrated reference host),
printing its structure, SLIT distances, and NUMA factor — then shows
the paper's §IV-A point: the reference host's measured STREAM matrix
matches none of the published topologies, while a clean variant
identifies itself immediately.

Run:  python examples/topology_explorer.py
"""

from repro import (
    amd_4s8n,
    amd_8s8n,
    hp_blade_32n,
    intel_4s4n,
    magny_cours_4p,
    reference_host,
)
from repro.analysis.numa_factor import numa_factor
from repro.analysis.topology_inference import infer_topology
from repro.bench import StreamBenchmark
from repro.topology import distance_matrix, render_machine
from repro.topology.hwloc import render_links

def main() -> None:
    print("=" * 72)
    print("1. The machine zoo and its NUMA factors (Table I)")
    print("=" * 72)
    zoo = [
        intel_4s4n(),
        amd_4s8n(),
        amd_8s8n(),
        hp_blade_32n(),
        reference_host(),
    ]
    for machine in zoo:
        print(
            f"{machine.name:16s} {machine.n_nodes:>3d} nodes, "
            f"{machine.n_cores:>4d} cores, NUMA factor "
            f"{numa_factor(machine):.2f}"
        )

    print()
    print("=" * 72)
    print("2. The four published guesses for the 4P Magny-Cours wiring")
    print("=" * 72)
    for variant in "abcd":
        machine = magny_cours_4p(variant)
        print(f"\n--- variant {variant} ---")
        print(render_machine(machine))
        print("SLIT distances:")
        print(distance_matrix(machine))

    print()
    print("=" * 72)
    print("3. The reference host's fabric (per-direction asymmetries)")
    print("=" * 72)
    host = reference_host()
    print(render_links(host))

    print()
    print("=" * 72)
    print("4. Can we recover the wiring from measurements?  (§IV-A: no)")
    print("=" * 72)
    matrix = StreamBenchmark(host).matrix()
    print(infer_topology(matrix).render())
    print(
        "\ncontrol: a clean variant-b machine identifies itself from the "
        "same procedure:"
    )
    clean = magny_cours_4p("b")
    clean_matrix = StreamBenchmark(clean).matrix()
    print(infer_topology(clean_matrix).render())


if __name__ == "__main__":
    main()
