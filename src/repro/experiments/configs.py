"""T2/T3 — configuration tables (server hardware, network test params)."""

from __future__ import annotations

from repro.analysis.report import render_table2, render_table3
from repro.bench.jobfile import NETWORK_TEST_DEFAULTS
from repro.experiments.common import check, default_machine
from repro.experiments.registry import ExperimentResult
from repro.units import GB, KiB

TITLE = "Tables II/III: testbed and benchmark configuration"
TITLE_RUN_TABLE2 = "Table II: configuration of the AMD 4P server"
TITLE_RUN_TABLE3 = "Table III: parameters for network I/O tests"


def run_table2(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Render Table II and verify the reference host matches it."""
    m = default_machine(machine)
    nic = m.devices.get("nic")
    checks = (
        check("32 cores / 8 NUMA nodes", m.n_cores == 32 and m.n_nodes == 8,
              f"{m.n_cores} cores, {m.n_nodes} nodes"),
        check("32 GB memory total",
              sum(m.node(n).memory_bytes for n in m.node_ids) == 32 * 2**30),
        check("5 MB LLC per die", m.params.llc_bytes == 5_000_000),
        check("NIC on PCIe Gen2 x8 (32 Gbps data)",
              nic is not None and abs(nic.pcie.data_gbps - 32.0) < 1e-9),
        check("two SSD cards attached",
              "ssd" in m.devices and m.devices["ssd"].n_cards == 2),
        check("all PCIe devices on node 7",
              all(d.node_id == 7 for d in m.devices.values())),
    )
    return ExperimentResult(
        exp_id="t2", title="Table II: configuration of the AMD 4P server",
        text=render_table2(m), data={"nodes": m.n_nodes, "cores": m.n_cores},
        checks=checks,
    )


def run_table3(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Render Table III and verify the fio defaults match it."""
    d = NETWORK_TEST_DEFAULTS
    checks = (
        check("400 GB per test process", d["size_bytes"] == 400 * GB),
        check("cubic TCP", d["tcp_variant"] == "cubic"),
        check("128 KiB blocks", d["blocksize"] == 128 * KiB),
        check("9000-byte frames", d["frame_bytes"] == 9000),
    )
    return ExperimentResult(
        exp_id="t3", title="Table III: parameters for network I/O tests",
        text=render_table3(), data=dict(d), checks=checks,
    )
