"""Span recording: hierarchical context-manager timers with a no-op fast path.

Telemetry is **off by default**: :func:`span` hands back a shared
stateless null context manager and :func:`count`/:func:`gauge` return
immediately, so instrumented hot paths pay one module-global read and a
``None`` check.  Installing a :class:`TraceRecorder` (usually via
:func:`recording`) turns every instrumentation point live: spans append
events carrying wall time, nesting depth and tags, and counters land in
the process-wide :data:`~repro.obs.metrics.metrics` registry.

Spans never touch the simulation's random streams or its outputs —
enabling a recorder changes what is *observed*, never what is computed,
which is what keeps EXPERIMENTS.md byte-identical with telemetry on.
"""

from __future__ import annotations

import json
import time
from typing import Mapping

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry, metrics

__all__ = [
    "NullRecorder",
    "TraceRecorder",
    "span",
    "count",
    "gauge",
    "enabled",
    "get_recorder",
    "install",
    "uninstall",
    "recording",
]


class _NullSpan:
    """The shared do-nothing span (stateless, safe to re-enter)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags) -> None:
        """Discard tags (live spans attach them to their event)."""


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Exists so code can hold "a recorder" unconditionally;
    :func:`get_recorder` returns one when nothing is installed.
    """

    __slots__ = ()

    events: tuple = ()

    def span(self, name: str, tags: Mapping | None = None) -> _NullSpan:
        """A span that times nothing."""
        return _NULL_SPAN


class _LiveSpan:
    """One open span of a :class:`TraceRecorder`."""

    __slots__ = ("_recorder", "_event", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str, tags) -> None:
        self._recorder = recorder
        self._event = {"name": name, "tags": dict(tags) if tags else {}}
        self._start = 0.0

    def tag(self, **tags) -> None:
        """Attach tags to this span's event (merged, last write wins)."""
        self._event["tags"].update(tags)

    def __enter__(self) -> "_LiveSpan":
        self._recorder._open(self._event)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start
        if exc_type is not None:
            self._event["tags"]["error"] = exc_type.__name__
        self._recorder._close(self._event, wall)
        return False


class TraceRecorder:
    """Collects span events (and brokers counters) for one run.

    Parameters
    ----------
    registry:
        Metrics registry counters land in; defaults to the process-wide
        :data:`~repro.obs.metrics.metrics`.

    Events are plain dicts ordered by span *open* time::

        {"seq": 3, "name": "solver.allocate", "parent": 1, "depth": 2,
         "start_s": 0.0142, "wall_s": 0.0009, "tags": {}}

    ``start_s`` is relative to recorder creation (monotonic clock — no
    absolute timestamps anywhere, by design).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.metrics = registry if registry is not None else metrics
        self.events: list[dict] = []
        self._stack: list[int] = []
        self._t0 = time.perf_counter()

    def span(self, name: str, tags: Mapping | None = None) -> _LiveSpan:
        """A live span; use as a context manager."""
        return _LiveSpan(self, name, tags)

    def _open(self, event: dict) -> None:
        seq = len(self.events)
        event["seq"] = seq
        event["parent"] = self._stack[-1] if self._stack else None
        event["depth"] = len(self._stack)
        event["start_s"] = time.perf_counter() - self._t0
        self.events.append(event)
        self._stack.append(seq)

    def _close(self, event: dict, wall_s: float) -> None:
        event["wall_s"] = wall_s
        # Spans close strictly LIFO (context managers), but tolerate a
        # leaked span rather than corrupting the stack.
        if self._stack and self._stack[-1] == event["seq"]:
            self._stack.pop()
        elif event["seq"] in self._stack:  # pragma: no cover - leak guard
            self._stack.remove(event["seq"])

    @property
    def max_depth(self) -> int:
        """Deepest nesting level seen (0 for a flat trace)."""
        return max((e["depth"] for e in self.events), default=-1) + 1

    def phase_totals(self) -> dict[str, dict]:
        """Per-span-name aggregates: ``{name: {count, wall_s}}``."""
        totals: dict[str, dict] = {}
        for event in self.events:
            entry = totals.setdefault(event["name"], {"count": 0, "wall_s": 0.0})
            entry["count"] += 1
            entry["wall_s"] += event.get("wall_s", 0.0)
        return {name: totals[name] for name in sorted(totals)}

    def write_trace(self, path) -> None:
        """Write the event list as JSONL (one span per line, seq order).

        Atomic: the full trace is serialized first and lands via
        temp + fsync + rename, so a crash never leaves a torn JSONL.
        """
        from repro.journal.atomic import atomic_write_text

        atomic_write_text(
            path,
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in self.events),
        )


#: The installed recorder, or ``None`` (the off-by-default fast path).
_RECORDER: TraceRecorder | None = None

_NULL_RECORDER = NullRecorder()


def enabled() -> bool:
    """Whether a recorder is installed (telemetry live)."""
    return _RECORDER is not None


def get_recorder() -> TraceRecorder | NullRecorder:
    """The installed recorder, or the shared :class:`NullRecorder`."""
    return _RECORDER if _RECORDER is not None else _NULL_RECORDER


def install(recorder: TraceRecorder) -> None:
    """Install ``recorder`` as the process recorder (one at a time)."""
    global _RECORDER
    if _RECORDER is not None:
        raise ObsError("a telemetry recorder is already installed")
    _RECORDER = recorder


def uninstall() -> TraceRecorder | None:
    """Remove and return the installed recorder (``None`` if none)."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def span(name: str, **tags) -> "_LiveSpan | _NullSpan":
    """A context-manager timer; the shared null span when disabled."""
    recorder = _RECORDER
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, tags or None)


def count(name: str, n: int = 1) -> None:
    """Bump counter ``name`` by ``n`` — no-op unless recording."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.metrics.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` — no-op unless recording."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.metrics.gauge(name, value)


class recording:
    """Record one run into ``obs_dir``: a JSONL trace plus a manifest.

    Context manager used by the CLI's ``--obs-dir`` plumbing (and usable
    directly from library code)::

        with recording("/tmp/obs", command="experiment", argv=["f10"]):
            run_experiment("f10")

    On entry it resets the process metrics registry, snapshots the
    solver-session counter baseline, and installs a fresh
    :class:`TraceRecorder`; on exit (even on error) it folds the solver
    counter deltas into the metrics registry, then writes
    ``trace.jsonl`` and ``manifest.json`` under ``obs_dir``.
    """

    def __init__(
        self,
        obs_dir,
        command: str = "",
        argv: "list[str] | None" = None,
        seed: int | None = None,
        config: Mapping | None = None,
    ) -> None:
        self.obs_dir = obs_dir
        self.command = command
        self.argv = list(argv) if argv is not None else []
        self.seed = seed
        self.config = dict(config) if config else {}
        self.recorder: TraceRecorder | None = None
        self._solver_baseline: dict[str, int] = {}

    def __enter__(self) -> TraceRecorder:
        from repro.obs.stats import solver_totals

        metrics.reset()
        self._solver_baseline = solver_totals()
        self.recorder = TraceRecorder(metrics)
        install(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        import pathlib

        from repro.obs.manifest import build_manifest, write_manifest
        from repro.obs.stats import solver_totals

        uninstall()
        recorder = self.recorder
        assert recorder is not None
        for name, total in solver_totals().items():
            delta = total - self._solver_baseline.get(name, 0)
            if delta:
                metrics.count(f"solver.{name}", delta)
        outdir = pathlib.Path(self.obs_dir)
        outdir.mkdir(parents=True, exist_ok=True)
        recorder.write_trace(outdir / "trace.jsonl")
        manifest = build_manifest(
            recorder,
            command=self.command,
            argv=self.argv,
            seed=self.seed,
            config=self.config,
            error=exc_type.__name__ if exc_type is not None else None,
        )
        write_manifest(manifest, outdir / "manifest.json")
        return False
