"""Shared fixtures.

The reference host is immutable after construction and the RNG registry
is stateless, so both are session-scoped; anything that mutates state
(allocators, schedulers, runners with shared allocators) is built fresh
per test.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.bench.fio import FioRunner
from repro.rng import RngRegistry
from repro.topology.builders import magny_cours_4p, parametric_machine, reference_host

try:  # pragma: no cover - depends on the environment
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ModuleNotFoundError:  # pragma: no cover - depends on the environment
    _HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser):
    # pytest-timeout owns the ``timeout`` ini option when installed; this
    # registers it otherwise so pyproject.toml's ``timeout = 120`` is
    # honoured (by the SIGALRM fallback below) instead of warned about.
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini(
            "timeout",
            "per-test wall-clock budget in seconds (fallback shim)",
            default="0",
        )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        try:
            budget = float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            budget = 0.0
        if budget <= 0 or threading.current_thread() is not threading.main_thread():
            yield
            return

        def _alarm(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {budget:g}s wall-clock budget"
            )

        old = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, budget)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, old)


def _shm_available() -> bool:
    """Probe for usable POSIX shared memory (the ``fabric`` marker)."""
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=16)
        segment.close()
        segment.unlink()
        return True
    except (ImportError, OSError):  # pragma: no cover - sandboxed hosts
        return False


def _sigkill_available() -> bool:
    """Probe for real SIGKILL delivery (the ``recovery`` marker)."""
    return hasattr(signal, "SIGKILL")


def pytest_collection_modifyitems(config, items):
    if any(item.get_closest_marker("fabric") for item in items):
        if not _shm_available():
            skip = pytest.mark.skip(
                reason="POSIX shared memory (/dev/shm) unavailable"
            )
            for item in items:
                if item.get_closest_marker("fabric"):
                    item.add_marker(skip)
    if any(item.get_closest_marker("recovery") for item in items):
        if not _sigkill_available():
            skip = pytest.mark.skip(
                reason="SIGKILL unavailable on this platform"
            )
            for item in items:
                if item.get_closest_marker("recovery"):
                    item.add_marker(skip)


@pytest.fixture(scope="session")
def host():
    """The calibrated reference host with devices attached."""
    return reference_host()


@pytest.fixture(scope="session")
def bare_host():
    """The reference host without devices (pure fabric tests)."""
    return reference_host(with_devices=False)


@pytest.fixture(scope="session")
def variant_a():
    """A clean Fig. 1 variant-a machine (no calibrated asymmetries)."""
    return magny_cours_4p("a")


@pytest.fixture(scope="session")
def small_machine():
    """A small 2-package machine for cheap structural tests."""
    return parametric_machine(2, nodes_per_package=2, cores_per_node=2)


@pytest.fixture()
def registry():
    """A fresh registry with the default seed."""
    return RngRegistry()


@pytest.fixture()
def runner(host):
    """A fio runner against the reference host."""
    return FioRunner(host)
