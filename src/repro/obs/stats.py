"""Solver instrumentation counters, now an obs-backed view.

:class:`SolverStats` predates :mod:`repro.obs` and remains the live
counter surface on every
:class:`~repro.solver.session.SolverSession` (and any stand-alone
:class:`~repro.solver.incremental.AllocationCache` handed one).  It is
*not* a parallel telemetry mechanism:

* :meth:`SolverStats.phase` emits an obs span (``solver.capacity`` /
  ``solver.allocate`` / ``solver.simulate``) whenever a recorder is
  installed, so per-phase timing lands in the trace with full nesting;
* :func:`solver_totals` sums the counters of every live session, which
  is how run manifests fold ``solver.*`` counters into the metrics
  registry without double-counting on the hot path.

Counters are cumulative over the session's lifetime; callers that want
per-run numbers snapshot before and after and subtract, or simply attach
:meth:`snapshot` to their result object as the engines do.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import recorder as _recorder

__all__ = ["SolverStats", "solver_totals"]

#: The integer counters folded into run manifests as ``solver.<name>``.
COUNTER_FIELDS = (
    "solves",
    "cache_hits",
    "cache_misses",
    "events",
    "capacity_builds",
    "capacity_hits",
    "path_hits",
    "path_misses",
)


@dataclass
class SolverStats:
    """Counters for one solver session.

    Attributes
    ----------
    solves:
        Cold max-min solves actually executed.
    cache_hits / cache_misses:
        Allocation-cache lookups served from memory vs solved cold.
    events:
        Piecewise-constant simulation events processed (arrival /
        completion steps of :meth:`repro.flows.network.FlowNetwork.simulate`).
    capacity_builds / capacity_hits:
        Machine capacity-map constructions vs cached reuses.
    path_hits / path_misses:
        Memoized path-bandwidth lookups (``dma_path_gbps`` /
        ``pio_stream_gbps``) served from cache vs computed.
    phase_wall_s:
        Wall-clock seconds per instrumented phase (``"capacity"``,
        ``"allocate"``, ``"simulate"``).
    """

    solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    events: int = 0
    capacity_builds: int = 0
    capacity_hits: int = 0
    path_hits: int = 0
    path_misses: int = 0
    phase_wall_s: dict[str, float] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total allocation-cache lookups."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of allocation lookups served from the cache."""
        lookups = self.lookups
        return self.cache_hits / lookups if lookups else 0.0

    @contextmanager
    def phase(self, name: str):
        """Accumulate wall time spent inside the ``with`` block.

        Doubles as the span instrumentation of the solver layer: when a
        recorder is installed the phase appears in the trace as
        ``solver.<name>`` with correct nesting.
        """
        with _recorder.span("solver." + name):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.phase_wall_s[name] = self.phase_wall_s.get(name, 0.0) + elapsed

    def reset(self) -> None:
        """Zero every counter (the session keeps its caches)."""
        self.solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.events = 0
        self.capacity_builds = 0
        self.capacity_hits = 0
        self.path_hits = 0
        self.path_misses = 0
        self.phase_wall_s = {}

    def snapshot(self) -> dict:
        """A plain-dict copy suitable for result objects / JSON."""
        return {
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "events": self.events,
            "capacity_builds": self.capacity_builds,
            "capacity_hits": self.capacity_hits,
            "path_hits": self.path_hits,
            "path_misses": self.path_misses,
            "phase_wall_s": dict(self.phase_wall_s),
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "solver session stats",
            f"  max-min solves     {self.solves}",
            f"  cache hits/misses  {self.cache_hits}/{self.cache_misses} "
            f"(hit rate {self.hit_rate:.1%})",
            f"  events processed   {self.events}",
            f"  capacity builds    {self.capacity_builds} "
            f"(+{self.capacity_hits} cached reuses)",
            f"  path lookups       {self.path_hits} cached / "
            f"{self.path_misses} computed",
        ]
        for name in sorted(self.phase_wall_s):
            lines.append(f"  wall[{name:8s}]     {self.phase_wall_s[name] * 1e3:.2f} ms")
        return "\n".join(lines)


def solver_totals() -> dict[str, int]:
    """Counter totals summed across every live solver session.

    The manifest writer snapshots this at recording start and end and
    folds the deltas into the metrics registry as ``solver.<counter>``,
    so sessions keep bumping plain attributes on the hot path.
    """
    from repro.solver.session import _SESSIONS

    totals = dict.fromkeys(COUNTER_FIELDS, 0)
    for session in _SESSIONS.values():
        stats = session.stats
        for name in COUNTER_FIELDS:
            totals[name] += getattr(stats, name)
    return totals
