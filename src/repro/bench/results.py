"""Benchmark result containers and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BenchmarkError

__all__ = ["Measurement", "BandwidthMatrix", "JobResult"]


@dataclass(frozen=True)
class Measurement:
    """One benchmarked bandwidth figure with its sampling protocol.

    ``protocol`` records how ``gbps`` was derived from ``samples``:
    ``"max"`` (STREAM's max-of-N) or ``"mean"`` (fio's long-transfer
    average).
    """

    gbps: float
    samples: tuple[float, ...]
    protocol: str = "max"

    def __post_init__(self) -> None:
        if not self.samples:
            raise BenchmarkError("a measurement needs at least one sample")
        if self.protocol not in ("max", "mean"):
            raise BenchmarkError(f"unknown protocol {self.protocol!r}")

    @property
    def value(self) -> float:
        """Unit-agnostic alias for :attr:`gbps` (latency benchmarks store
        nanoseconds in the same protocol container)."""
        return self.gbps

    @property
    def runs(self) -> int:
        """Number of repetitions behind this figure."""
        return len(self.samples)

    @property
    def spread(self) -> float:
        """max - min over the samples (run-to-run dispersion)."""
        return max(self.samples) - min(self.samples)

    @classmethod
    def from_samples(cls, samples, protocol: str = "max") -> "Measurement":
        """Apply ``protocol`` to raw samples."""
        seq = tuple(float(s) for s in samples)
        if not seq:
            raise BenchmarkError("no samples")
        value = max(seq) if protocol == "max" else float(np.mean(seq))
        return cls(gbps=value, samples=seq, protocol=protocol)


@dataclass(frozen=True)
class BandwidthMatrix:
    """An N x N bandwidth matrix (rows: CPU node, columns: MEM node).

    This is the object behind the paper's Fig. 3; ``row(n)`` is the
    CPU-centric model of node ``n`` and ``col(n)`` the memory-centric one
    (Fig. 4).
    """

    node_ids: tuple[int, ...]
    values: np.ndarray
    label: str = "bandwidth (Gbps)"

    def __post_init__(self) -> None:
        n = len(self.node_ids)
        if self.values.shape != (n, n):
            raise BenchmarkError(
                f"matrix shape {self.values.shape} does not match {n} nodes"
            )

    def _index(self, node: int) -> int:
        try:
            return self.node_ids.index(node)
        except ValueError as exc:
            raise BenchmarkError(f"node {node} not in matrix") from exc

    def at(self, cpu_node: int, mem_node: int) -> float:
        """Value for (CPU node, MEM node)."""
        return float(self.values[self._index(cpu_node), self._index(mem_node)])

    def row(self, cpu_node: int) -> dict[int, float]:
        """CPU-centric model: this CPU node against every memory node."""
        i = self._index(cpu_node)
        return {n: float(self.values[i, j]) for j, n in enumerate(self.node_ids)}

    def col(self, mem_node: int) -> dict[int, float]:
        """Memory-centric model: every CPU node against this memory node."""
        j = self._index(mem_node)
        return {n: float(self.values[i, j]) for i, n in enumerate(self.node_ids)}

    def asymmetry(self) -> float:
        """Largest relative |BW(i,j) - BW(j,i)| / max — the paper's
        evidence that the matrix cannot come from an undirected metric."""
        v = self.values
        diff = np.abs(v - v.T)
        scale = np.maximum(v, v.T)
        with np.errstate(invalid="ignore", divide="ignore"):
            rel = np.where(scale > 0, diff / scale, 0.0)
        return float(rel.max())

    def render(self, digits: int = 2) -> str:
        """Fixed-width text table (CPUn rows, MEMn columns)."""
        width = max(8, digits + 6)
        header = "".join(f"MEM{n}".rjust(width) for n in self.node_ids)
        lines = [f"{self.label}", " " * 6 + header]
        for i, n in enumerate(self.node_ids):
            cells = "".join(f"{self.values[i, j]:.{digits}f}".rjust(width)
                            for j in range(len(self.node_ids)))
            lines.append(f"CPU{n}".ljust(6) + cells)
        return "\n".join(lines)


@dataclass(frozen=True)
class JobResult:
    """Outcome of one fio job.

    ``solver_stats`` is a cumulative snapshot of the executing engine's
    :class:`~repro.solver.stats.SolverStats` taken when the result was
    produced (solve count, cache hit rate, events processed).
    """

    job_name: str
    engine: str
    streams: tuple[tuple[int, int], ...]  # (cpu_node, mem_node) per stream
    per_stream_gbps: dict[str, float]
    aggregate_gbps: float
    duration_s: float
    tags: dict = field(default_factory=dict)
    solver_stats: dict = field(default_factory=dict)

    @property
    def numjobs(self) -> int:
        """Concurrent streams in this job."""
        return len(self.streams)

    def render(self) -> str:
        """One-job summary line plus per-stream detail."""
        lines = [
            f"{self.job_name} ({self.engine}, {self.numjobs} streams): "
            f"{self.aggregate_gbps:.2f} Gbps aggregate over {self.duration_s:.1f} s"
        ]
        for name in sorted(self.per_stream_gbps):
            lines.append(f"  {name}: {self.per_stream_gbps[name]:.2f} Gbps")
        return "\n".join(lines)
