"""Directed HyperTransport link model.

Each physical cable is represented as **two** :class:`DirectedLink`
objects, because every asymmetry the paper observes (\"the number of
request and response buffers, and link width configuration for cache
coherent traffic\" — §IV-A) is per direction:

* ``dma_credit`` scales the raw width x rate capacity for bulk/DMA
  traffic in this direction (buffer-credit starvation shows up here);
* ``pio_cap_gbps`` caps streaming PIO throughput in this direction;
* ``pio_latency_s`` is the one-way latency contribution for coherent
  requests/responses crossing this direction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.units import NS, ht_raw_gbps

__all__ = ["LinkKind", "DirectedLink", "link_pair"]


class LinkKind(enum.Enum):
    """What a link physically is; used for reporting and sanity checks."""

    #: On-package die-to-die connection (AMD "SRI"/internal HT).
    SRI = "sri"
    #: Inter-package HyperTransport cable.
    HT = "ht"
    #: Node-to-I/O-hub connection (non-coherent HT).
    IO = "io"


@dataclass(frozen=True)
class DirectedLink:
    """One direction of a fabric link.

    Parameters
    ----------
    src, dst:
        NUMA node ids (or ``-1`` for an I/O hub endpoint).
    width_bits:
        HT link width in this direction (8 or 16 on the modelled parts).
    gts:
        Transfer rate in GT/s (HT 3.0: up to 3.2).
    kind:
        Physical role of the link.
    dma_credit:
        Fraction of raw capacity available to bulk/DMA traffic in this
        direction, in ``(0, 1]``.  Models request/response buffer-credit
        allocation.
    pio_cap_gbps:
        Streaming PIO throughput cap in this direction.  ``None`` derives
        a default of 60 % of raw capacity (coherent traffic never reaches
        wire speed because of probe/response overhead).
    pio_latency_s:
        One-way latency added by crossing this direction.
    """

    src: int
    dst: int
    width_bits: int
    gts: float
    kind: LinkKind = LinkKind.HT
    dma_credit: float = 1.0
    pio_cap_gbps: float | None = None
    pio_latency_s: float = field(default=12.5 * NS)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"link endpoints must differ, got {self.src}->{self.dst}")
        if self.width_bits not in (2, 4, 8, 16, 32):
            raise TopologyError(f"implausible HT width {self.width_bits!r} bits")
        if not 0.0 < self.dma_credit <= 1.0:
            raise TopologyError(f"dma_credit must be in (0, 1], got {self.dma_credit!r}")
        if self.gts <= 0:
            raise TopologyError(f"gts must be positive, got {self.gts!r}")
        if self.pio_latency_s < 0:
            raise TopologyError(f"negative link latency: {self.pio_latency_s!r}")
        if self.pio_cap_gbps is not None and self.pio_cap_gbps <= 0:
            raise TopologyError(f"pio_cap_gbps must be positive, got {self.pio_cap_gbps!r}")

    # --- capacities ------------------------------------------------------
    @property
    def raw_gbps(self) -> float:
        """Wire capacity of this direction (width x rate)."""
        return ht_raw_gbps(self.width_bits, self.gts)

    @property
    def dma_gbps(self) -> float:
        """Bulk/DMA capacity of this direction after credit derating."""
        return self.raw_gbps * self.dma_credit

    @property
    def pio_gbps(self) -> float:
        """Streaming PIO throughput cap of this direction."""
        if self.pio_cap_gbps is not None:
            return self.pio_cap_gbps
        return 0.6 * self.raw_gbps

    @property
    def ends(self) -> tuple[int, int]:
        """The ``(src, dst)`` pair identifying this direction."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - repr aid
        return (
            f"{self.src}->{self.dst} x{self.width_bits}@{self.gts}GT/s "
            f"({self.kind.value}, dma {self.dma_gbps:.1f} Gbps)"
        )


def link_pair(
    a: int,
    b: int,
    width_bits: int,
    gts: float,
    kind: LinkKind = LinkKind.HT,
    *,
    dma_credit: float = 1.0,
    dma_credit_rev: float | None = None,
    pio_cap_gbps: float | None = None,
    pio_cap_rev_gbps: float | None = None,
    pio_latency_s: float = 12.5 * NS,
) -> tuple[DirectedLink, DirectedLink]:
    """Build the two directions of one physical link.

    The ``*_rev`` parameters configure the ``b -> a`` direction; they
    default to the forward values.  This is the convenience constructor
    used by every machine builder — symmetric links are one call, and the
    deliberately asymmetric links of the reference host set the ``_rev``
    fields explicitly.
    """
    forward = DirectedLink(
        src=a,
        dst=b,
        width_bits=width_bits,
        gts=gts,
        kind=kind,
        dma_credit=dma_credit,
        pio_cap_gbps=pio_cap_gbps,
        pio_latency_s=pio_latency_s,
    )
    reverse = DirectedLink(
        src=b,
        dst=a,
        width_bits=width_bits,
        gts=gts,
        kind=kind,
        dma_credit=dma_credit if dma_credit_rev is None else dma_credit_rev,
        pio_cap_gbps=pio_cap_gbps if pio_cap_rev_gbps is None else pio_cap_rev_gbps,
        pio_latency_s=pio_latency_s,
    )
    return forward, reverse
