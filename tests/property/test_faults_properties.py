"""Property-based tests for the fault-injection layer.

Invariants:

* a fault plan can only *derate*: per-resource scaled capacity never
  exceeds the healthy value, at any time, for any plan;
* a statically faulted machine's capacity map is dominated by the
  healthy machine's (absent resources excepted — a failed link has no
  capacity at all);
* applying and reverting faults is lossless: ``restore()`` yields the
  healthy fingerprint byte-identically;
* the process-wide session registry never serves stale capacities
  across an apply/revert cycle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.events import (
    FaultEvent,
    IrqStorm,
    LinkDegrade,
    LinkFail,
    MemoryThrottle,
    NicPortFlap,
    SsdWearThrottle,
)
from repro.faults.plan import FaultedMachine, FaultPlan
from repro.solver.capacity import build_capacities, machine_fingerprint
from repro.solver.session import get_session, reset_sessions
from repro.topology.builders import reference_host

_HOST = reference_host(with_devices=False)
_LINKS = sorted(_HOST.links)
_CABLES = sorted({tuple(sorted(ends)) for ends in _HOST.links})
_HEALTHY = build_capacities(_HOST)

factors = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
nodes = st.sampled_from(_HOST.node_ids)


@st.composite
def any_fault(draw):
    kind = draw(st.sampled_from(
        ["degrade", "fail", "throttle", "irq", "nic", "ssd"]
    ))
    if kind == "degrade":
        src, dst = draw(st.sampled_from(_LINKS))
        return LinkDegrade(src=src, dst=dst, factor=draw(factors))
    if kind == "fail":
        a, b = draw(st.sampled_from(_CABLES))
        return LinkFail(a=a, b=b)
    if kind == "throttle":
        return MemoryThrottle(node=draw(nodes), factor=draw(factors))
    if kind == "irq":
        return IrqStorm(node=draw(nodes), factor=draw(factors))
    if kind == "nic":
        return NicPortFlap(host=draw(st.sampled_from(["h0", "h1", None])))
    return SsdWearThrottle(factor=draw(factors), read_factor=draw(factors))


@st.composite
def timed_plan(draw):
    events = []
    for fault in draw(st.lists(any_fault(), min_size=0, max_size=6)):
        at_s = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
        if draw(st.booleans()):
            until_s = at_s + draw(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
            )
        else:
            until_s = None
        events.append(FaultEvent(fault, at_s=at_s, until_s=until_s))
    return FaultPlan(events)


@st.composite
def topology_faults(draw):
    faults = draw(st.lists(
        any_fault().filter(lambda f: f.topological), min_size=0, max_size=4
    ))
    # Degrading a cable that another fault in the set fails is ill-formed
    # when the fail applies first (the link is gone); keep the sets clean.
    failed = {
        tuple(sorted((f.a, f.b))) for f in faults if isinstance(f, LinkFail)
    }
    return [
        f for f in faults
        if not (isinstance(f, LinkDegrade)
                and tuple(sorted((f.src, f.dst))) in failed)
    ]


@given(timed_plan(), st.floats(min_value=0.0, max_value=25.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_scaled_capacities_never_exceed_healthy(plan, t):
    scaled = plan.scaled_capacities(_HEALTHY, t)
    assert scaled.keys() == _HEALTHY.keys()
    for resource, healthy in _HEALTHY.items():
        assert 0.0 <= scaled[resource] <= healthy + 1e-12


@given(topology_faults())
@settings(max_examples=60, deadline=None)
def test_faulted_capacities_dominated_by_healthy(faults):
    view = FaultedMachine(_HOST, faults)
    for resource, value in build_capacities(view).items():
        assert value <= _HEALTHY[resource] + 1e-9


@given(topology_faults())
@settings(max_examples=60, deadline=None)
def test_restore_roundtrips_fingerprint(faults):
    view = FaultedMachine(_HOST, faults)
    restored = view.restore()
    assert machine_fingerprint(restored) == machine_fingerprint(_HOST)
    assert build_capacities(restored) == _HEALTHY


@given(topology_faults().filter(lambda fs: fs))
@settings(max_examples=40, deadline=None)
def test_sessions_never_serve_stale_capacities(faults):
    reset_sessions()
    try:
        healthy_session = get_session(_HOST)
        before = healthy_session.capacities()
        view = FaultedMachine(_HOST, faults)
        faulted_session = get_session(view)
        assert faulted_session is not healthy_session
        faulted_caps = faulted_session.capacities()
        for resource, value in faulted_caps.items():
            assert value <= before[resource] + 1e-9
        # Reverting routes back to the healthy session and map.
        restored_session = get_session(view.restore())
        assert restored_session is healthy_session
        assert restored_session.capacities() == before
    finally:
        reset_sessions()
