"""``repro-numa obs report``: render and diff recorded runs.

Given one ``--obs-dir`` the report summarizes the trace (span
aggregates by name, slowest spans, nesting) and the manifest (identity,
seed state, metrics).  Given two it diffs the manifests: identical
counters and config mean the runs were deterministic twins; wall-time
deltas are reported per phase.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ObsError
from repro.obs.manifest import diff_manifests, load_manifest

__all__ = [
    "load_trace",
    "render_report",
    "render_diff",
    "report_json",
    "phase_regressions",
    "render_phase_triage",
]


def load_trace(obs_dir) -> list[dict]:
    """The span events of ``obs_dir``'s trace, in seq order."""
    path = pathlib.Path(obs_dir) / "trace.jsonl"
    if not path.exists():
        raise ObsError(f"no trace at {path}")
    events = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObsError(f"{path}:{lineno}: invalid trace line: {exc}") from exc
    return events


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.2f}"


def render_report(obs_dir, top: int = 10) -> str:
    """Human-readable summary of one recorded run."""
    obs_dir = pathlib.Path(obs_dir)
    manifest = load_manifest(obs_dir / "manifest.json")
    events = load_trace(obs_dir)

    lines = [f"OBS RUN REPORT — {obs_dir}"]
    argv = " ".join(manifest["argv"])
    invocation = argv if argv else manifest["command"]
    lines.append(f"command: repro-numa {invocation}  (git {manifest['git_sha'][:12]})")
    seed = manifest["seed"]
    lines.append(
        f"seed: root {seed['root_seed']}, {len(seed['streams'])} RNG streams, "
        f"{sum(seed['streams'].values())} draws"
    )
    if manifest.get("error"):
        lines.append(f"error: run aborted with {manifest['error']}")
    spans = manifest["spans"]
    lines.append(f"spans: {spans['total']} total, max depth {spans['max_depth']}")

    if manifest["phases"]:
        lines.append("")
        lines.append(f"{'span':40s} {'count':>7s} {'total ms':>10s} {'mean ms':>10s}")
        ordered = sorted(
            manifest["phases"].items(), key=lambda kv: -kv[1]["wall_s"]
        )
        for name, entry in ordered:
            mean = entry["wall_s"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"{name:40s} {entry['count']:7d} "
                f"{_fmt_ms(entry['wall_s'])} {_fmt_ms(mean)}"
            )

    slowest = sorted(
        (e for e in events if "wall_s" in e), key=lambda e: -e["wall_s"]
    )[:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest spans (top {len(slowest)}):")
        for event in slowest:
            tags = (
                " ".join(f"{k}={v}" for k, v in sorted(event["tags"].items()))
                if event.get("tags")
                else ""
            )
            indent = "  " * event["depth"]
            lines.append(
                f"  {_fmt_ms(event['wall_s'])} ms  {indent}{event['name']}"
                + (f"  [{tags}]" if tags else "")
            )

    counters = manifest["metrics"]["counters"]
    gauges = manifest["metrics"]["gauges"]
    lines.append("")
    lines.append(f"counters ({len(counters)}):")
    for name, value in counters.items():
        lines.append(f"  {name:56s} {value:>12d}")
    if gauges:
        lines.append(f"gauges ({len(gauges)}):")
        for name, value in gauges.items():
            lines.append(f"  {name:56s} {value:>12g}")
    return "\n".join(lines)


def render_diff(dir_a, dir_b) -> str:
    """Human-readable manifest diff of two recorded runs."""
    a = load_manifest(pathlib.Path(dir_a) / "manifest.json")
    b = load_manifest(pathlib.Path(dir_b) / "manifest.json")
    diff = diff_manifests(a, b)

    lines = [f"OBS MANIFEST DIFF — A={dir_a}  B={dir_b}"]
    if diff["identity"]:
        for key, (va, vb) in diff["identity"].items():
            lines.append(f"identity: {key}: {va!r} -> {vb!r}")
    else:
        lines.append("identity: same command, git revision and root seed")
    if diff["config"]:
        lines.append("config:")
        for key, (va, vb) in diff["config"].items():
            lines.append(f"  {key}: {va!r} -> {vb!r}")
    else:
        lines.append("config: identical")
    if diff["counters"]:
        lines.append(f"counters: {len(diff['counters'])} differ")
        for name, (va, vb) in diff["counters"].items():
            lines.append(f"  {name:56s} {va!r} -> {vb!r}")
    else:
        lines.append(
            f"counters: identical ({len(a['metrics']['counters'])} counters)"
        )
    if diff["gauges"]:
        lines.append(f"gauges: {len(diff['gauges'])} differ")
        for name, (va, vb) in diff["gauges"].items():
            lines.append(f"  {name:56s} {va!r} -> {vb!r}")
    lines.append("phases (wall ms, A -> B):")
    for name, entry in diff["phases"].items():
        wall_a, wall_b = entry["wall_s"]
        note = ""
        if "count" in entry:
            note = f"  (count {entry['count'][0]} -> {entry['count'][1]})"
        lines.append(
            f"  {name:40s} {_fmt_ms(wall_a)} -> {_fmt_ms(wall_b)}{note}"
        )
    lines.append(
        "verdict: deterministic twins (counters+config identical)"
        if diff["deterministic"]
        else "verdict: runs differ beyond wall time"
    )
    return "\n".join(lines)


def phase_regressions(a: dict, b: dict, tolerance: float = 0.5,
                      min_wall_s: float = 0.005) -> "dict[str, dict]":
    """Per-phase wall-time shifts beyond a noise band, A -> B.

    A phase is flagged when its wall time in either manifest reaches
    ``min_wall_s`` (ignoring spans too short to measure) and the B/A
    ratio leaves ``[1 - tolerance, 1 + tolerance]``.  A phase present
    only in B reports ``ratio == inf``; only in A, ``ratio == 0``.
    This is span-driven triage: the bench gate says *that* a run got
    slower, this says *which* span did it.
    """
    shifts: dict[str, dict] = {}
    phases_a = a.get("phases") or {}
    phases_b = b.get("phases") or {}
    for name in sorted(set(phases_a) | set(phases_b)):
        wall_a = float(phases_a.get(name, {}).get("wall_s", 0.0))
        wall_b = float(phases_b.get(name, {}).get("wall_s", 0.0))
        if max(wall_a, wall_b) < min_wall_s:
            continue
        ratio = wall_b / wall_a if wall_a > 0.0 else float("inf")
        if abs(ratio - 1.0) > tolerance:
            shifts[name] = {"wall_s": (wall_a, wall_b), "ratio": ratio}
    return shifts


def render_phase_triage(dir_a, dir_b, tolerance: float = 0.5,
                        min_wall_s: float = 0.005) -> str:
    """Human-readable :func:`phase_regressions` for two obs dirs."""
    a = load_manifest(pathlib.Path(dir_a) / "manifest.json")
    b = load_manifest(pathlib.Path(dir_b) / "manifest.json")
    shifts = phase_regressions(a, b, tolerance=tolerance, min_wall_s=min_wall_s)
    band = f"±{tolerance * 100:g}%"
    floor = f"{min_wall_s * 1e3:g} ms"
    if not shifts:
        return (
            f"phase triage: no span shifted beyond the {band} noise band "
            f"(spans under {floor} ignored)"
        )
    lines = [
        f"phase triage ({band} noise band, spans under {floor} ignored): "
        f"{len(shifts)} span(s) shifted"
    ]
    for name, entry in shifts.items():
        wall_a, wall_b = entry["wall_s"]
        ratio = entry["ratio"]
        tag = "new" if ratio == float("inf") else f"x{ratio:.2f}"
        lines.append(
            f"  {name:40s} {_fmt_ms(wall_a)} -> {_fmt_ms(wall_b)} ms  ({tag})"
        )
    return "\n".join(lines)


def report_json(obs_dir, other=None) -> dict:
    """The machine-readable form of the report (or diff, with ``other``)."""
    if other is not None:
        a = load_manifest(pathlib.Path(obs_dir) / "manifest.json")
        b = load_manifest(pathlib.Path(other) / "manifest.json")
        return diff_manifests(a, b)
    manifest = load_manifest(pathlib.Path(obs_dir) / "manifest.json")
    return manifest
