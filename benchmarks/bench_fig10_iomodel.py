"""F10 — Fig. 10: the proposed memcpy I/O performance model (Algorithm 1)."""


def test_fig10_iomodel(run_paper_experiment):
    result = run_paper_experiment("f10")
    assert set(result.data) == {"write", "read"}
