"""numastat counter accounting."""

from repro.memory.numastat import NumaStat


class TestRecording:
    def test_hit_counted(self):
        stats = NumaStat(node_ids=(0, 1))
        stats.record(placed_node=0, intended_node=0, cpu_node=0, pages=10)
        assert stats.numa_hit[0] == 10
        assert stats.numa_miss[0] == 0
        assert stats.local_node[0] == 10

    def test_miss_and_foreign(self):
        stats = NumaStat(node_ids=(0, 1))
        stats.record(placed_node=1, intended_node=0, cpu_node=0, pages=4)
        assert stats.numa_miss[1] == 4
        assert stats.numa_foreign[0] == 4
        assert stats.other_node[1] == 4

    def test_interleave_hit(self):
        stats = NumaStat(node_ids=(0, 1))
        stats.record(placed_node=1, intended_node=1, cpu_node=0, pages=2,
                     interleaved=True)
        assert stats.interleave_hit[1] == 2
        assert stats.numa_hit[1] == 2

    def test_counters_initialised_to_zero(self):
        stats = NumaStat(node_ids=(0, 1, 2))
        assert all(v == 0 for v in stats.numa_hit.values())
        assert set(stats.numa_hit) == {0, 1, 2}


class TestRender:
    def test_render_contains_all_fields(self):
        stats = NumaStat(node_ids=(0, 1))
        text = stats.render()
        for field in ("numa_hit", "numa_miss", "numa_foreign",
                      "interleave_hit", "local_node", "other_node"):
            assert field in text
        assert "node0" in text and "node1" in text
