#!/usr/bin/env sh
# Solver-layer benchmark smoke: run the library-performance suite under
# pytest-benchmark and snapshot the results to BENCH_solver.json at the
# repo root.  Compare against a previous snapshot with
#   PYTHONPATH=src python -m pytest benchmarks/bench_library_performance.py \
#       --benchmark-compare
# or just diff the min/mean fields of two json files.
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH=src python -m pytest benchmarks/bench_library_performance.py \
    -q --benchmark-only --benchmark-json=BENCH_solver.json "$@"

PYTHONPATH=src python - <<'EOF'
import json

with open("BENCH_solver.json") as fh:
    data = json.load(fh)
print("\nBENCH_solver.json snapshot:")
for bench in sorted(data["benchmarks"], key=lambda b: b["name"]):
    stats = bench["stats"]
    print(f"  {bench['name']:45s} mean {stats['mean'] * 1e3:8.2f} ms  "
          f"min {stats['min'] * 1e3:8.2f} ms")
EOF
