"""Unified telemetry: spans, counters and run manifests.

``repro.obs`` is the observability seam of the reproduction — zero
external dependencies, off by default, and deterministic-safe (enabling
it never changes a computed number, only what gets recorded about the
computation).  Three pieces:

* **spans** — :func:`span` context-manager timers with nesting and
  tags, recorded by a :class:`TraceRecorder` (a shared no-op when no
  recorder is installed);
* **metrics** — the process-wide :class:`MetricsRegistry`
  (:data:`metrics`) of named counters and gauges, written through
  :func:`count` / :func:`gauge`;
* **manifests** — :class:`recording` wraps a run, then writes a JSONL
  span trace plus a validated ``manifest.json`` (git SHA, config, seed
  registry state, per-phase timings, metric snapshot) that
  ``repro-numa obs report`` renders and diffs.

The *online* complement lives in :mod:`repro.obs.live`: always-on
streaming histograms (:class:`Hist`), the bounded
:class:`FlightRecorder`, the per-process :class:`LivePlane` registry,
the :class:`DriftWatch` model-drift detector, and
:func:`render_scrape` — the Prometheus-style exposition behind
``repro-numa obs scrape`` / ``obs top`` / ``obs tail``.

:class:`SolverStats` lives here too: the solver layer's counter surface
is an obs-backed view (its phases emit spans), re-exported from
:mod:`repro.solver.stats` for compatibility.
"""

from repro.obs.live import (
    DriftWatch,
    FlightRecorder,
    Hist,
    LivePlane,
    NullLivePlane,
    classify_regime,
    render_scrape,
)
from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.recorder import (
    NullRecorder,
    TraceRecorder,
    count,
    enabled,
    gauge,
    get_recorder,
    install,
    recording,
    span,
    uninstall,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    diff_manifests,
    git_sha,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.stats import SolverStats, solver_totals
from repro.obs.report import (
    load_trace,
    phase_regressions,
    render_diff,
    render_phase_triage,
    render_report,
    report_json,
)

__all__ = [
    "Hist",
    "FlightRecorder",
    "LivePlane",
    "NullLivePlane",
    "DriftWatch",
    "classify_regime",
    "render_scrape",
    "MetricsRegistry",
    "metrics",
    "NullRecorder",
    "TraceRecorder",
    "span",
    "count",
    "gauge",
    "enabled",
    "get_recorder",
    "install",
    "uninstall",
    "recording",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "validate_manifest",
    "write_manifest",
    "load_manifest",
    "diff_manifests",
    "git_sha",
    "load_trace",
    "render_report",
    "render_diff",
    "report_json",
    "phase_regressions",
    "render_phase_triage",
    "SolverStats",
    "solver_totals",
]
