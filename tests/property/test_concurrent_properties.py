"""Property-based invariants of concurrent multi-device runs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.concurrent import ConcurrentRunner
from repro.bench.jobfile import FioJob
from repro.rng import RngRegistry
from repro.topology.builders import reference_host

_HOST = reference_host()

job_specs = st.lists(
    st.tuples(
        st.sampled_from([("rdma", "write"), ("rdma", "read"),
                         ("libaio", "write"), ("libaio", "read")]),
        st.sampled_from(_HOST.node_ids),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=3,
)


def _jobs(specs):
    jobs = []
    for i, ((engine, rw), node, numjobs) in enumerate(specs):
        jobs.append(
            FioJob(name=f"cj{i}-{engine}-{rw}-{node}", engine=engine, rw=rw,
                   numjobs=numjobs, cpunodebind=node, iodepth=16)
        )
    return jobs


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_counters_respect_capacities(specs):
    result = ConcurrentRunner(_HOST, RngRegistry()).run(_jobs(specs))
    for resource in result.counters.bytes_by_resource:
        assert result.counters.utilization(resource) <= 1.01, resource


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_per_job_never_beats_solo(specs):
    """Adding concurrent jobs can only slow each job down (or tie)."""
    runner = ConcurrentRunner(_HOST, RngRegistry())
    together = runner.run(_jobs(specs))
    for job in _jobs(specs):
        solo = ConcurrentRunner(_HOST, RngRegistry()).run([job])
        assert (together.per_job[job.name].aggregate_gbps
                <= solo.per_job[job.name].aggregate_gbps * 1.02), job.name


@given(job_specs)
@settings(max_examples=40, deadline=None)
def test_total_is_sum_of_jobs(specs):
    result = ConcurrentRunner(_HOST, RngRegistry()).run(_jobs(specs))
    assert result.total_gbps == sum(
        r.aggregate_gbps for r in result.per_job.values()
    )
    # Every stream accounted for.
    expected_streams = sum(spec[2] for spec in specs)
    actual_streams = sum(len(r.per_stream_gbps) for r in result.per_job.values())
    assert actual_streams == expected_streams
