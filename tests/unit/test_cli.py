"""CLI surface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["hardware"],
            ["stream", "--cpu", "7", "--mem", "4"],
            ["fio", "--engine", "tcp", "--rw", "send"],
            ["iomodel", "--target", "7"],
            ["predict", "--streams", "2,0"],
            ["advise", "--tasks", "8"],
            ["experiment"],
            ["numastat"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--machine", "cray", "hardware"])


class TestCommands:
    def test_hardware(self, capsys):
        assert main(["hardware", "--links"]) == 0
        out = capsys.readouterr().out
        assert "available: 8 nodes" in out
        assert "x16" in out

    def test_stream_pair(self, capsys):
        assert main(["stream", "--cpu", "7", "--mem", "4", "--runs", "5"]) == 0
        assert "CPU7->MEM4" in capsys.readouterr().out

    def test_stream_requires_mem_with_cpu(self, capsys):
        assert main(["stream", "--cpu", "7", "--runs", "5"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stream_matrix_on_small_machine(self, capsys):
        assert main(["--machine", "intel-4s4n", "stream", "--runs", "2"]) == 0
        assert "MEM3" in capsys.readouterr().out

    def test_fio_single_job(self, capsys):
        assert main(["fio", "--engine", "rdma", "--rw", "write",
                     "--numjobs", "2", "--node", "6"]) == 0
        assert "Gbps aggregate" in capsys.readouterr().out

    def test_fio_memcpy(self, capsys):
        assert main(["fio", "--engine", "memcpy", "--rw", "read",
                     "--numjobs", "4", "--node", "2", "--target", "7"]) == 0
        assert "memcpy" in capsys.readouterr().out

    def test_fio_requires_engine_or_jobfile(self, capsys):
        assert main(["fio"]) == 2

    def test_fio_jobfile(self, tmp_path, capsys):
        jobfile = tmp_path / "jobs.fio"
        jobfile.write_text("[j]\nioengine=rdma\nrw=write\nnumjobs=2\ncpunodebind=6\n")
        assert main(["fio", "--jobfile", str(jobfile)]) == 0
        assert "j (" in capsys.readouterr().out

    def test_iomodel_single_mode(self, capsys):
        assert main(["iomodel", "--mode", "write", "--runs", "5"]) == 0
        assert "device write" in capsys.readouterr().out

    def test_experiment_listing(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "t1" in out and "f10" in out

    def test_experiment_quick_run(self, capsys):
        assert main(["experiment", "t3", "--quick"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "zz"]) == 2

    def test_numastat(self, capsys):
        assert main(["numastat"]) == 0
        assert "numa_hit" in capsys.readouterr().out

    def test_chaos_report(self, capsys):
        assert main(["--seed", "7", "chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CHAOS RESILIENCE REPORT" in out
        assert "seed 7" in out
        assert "rerouted" in out
        assert "failed" in out

    def test_chaos_deterministic(self, capsys):
        assert main(["--seed", "7", "chaos", "--quick"]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "7", "chaos", "--quick"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_single_scenario_json(self, capsys):
        import json

        assert main(["--seed", "7", "chaos", "--scenario", "flapping-uplink",
                     "--quick", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["seed"] == 7
        assert [s["name"] for s in data["scenarios"]] == ["flapping-uplink"]

    def test_seed_changes_noise(self, capsys):
        main(["--seed", "1", "stream", "--cpu", "7", "--mem", "4", "--runs", "3"])
        first = capsys.readouterr().out
        main(["--seed", "2", "stream", "--cpu", "7", "--mem", "4", "--runs", "3"])
        second = capsys.readouterr().out
        assert first != second
