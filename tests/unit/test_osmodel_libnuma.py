"""libnuma-shaped API."""

import pytest

from repro.errors import AffinityError, AllocationError
from repro.memory.allocator import PageAllocator
from repro.osmodel import libnuma
from repro.units import MiB


class TestIntrospection:
    def test_node_and_cpu_counts(self, host):
        assert libnuma.numa_num_configured_nodes(host) == 8
        assert libnuma.numa_num_configured_cpus(host) == 32

    def test_node_of_cpu(self, host):
        assert libnuma.numa_node_of_cpu(host, 0) == 0
        assert libnuma.numa_node_of_cpu(host, 31) == 7

    def test_node_of_unknown_cpu(self, host):
        with pytest.raises(AffinityError):
            libnuma.numa_node_of_cpu(host, 999)


class TestAllocation:
    def test_alloc_onnode_and_free(self, host):
        allocator = PageAllocator(host)
        before = allocator.free_bytes(5)
        allocation = libnuma.numa_alloc_onnode(allocator, 64 * MiB, 5)
        assert allocation.nodes == (5,)
        libnuma.numa_free(allocator, allocation)
        assert allocator.free_bytes(5) == before

    def test_alloc_onnode_strict(self, host):
        allocator = PageAllocator(host)
        with pytest.raises(AllocationError):
            libnuma.numa_alloc_onnode(allocator, 100 * 1024**3, 5)


class TestRunOnNode:
    def test_valid(self, host):
        assert libnuma.numa_run_on_node(host, 7) == 7

    def test_invalid(self, host):
        with pytest.raises(AffinityError):
            libnuma.numa_run_on_node(host, 42)

    def test_distance_ok(self, host):
        assert libnuma.numa_distance_ok(host, 0, 7)
        assert not libnuma.numa_distance_ok(host, 0, 42)
