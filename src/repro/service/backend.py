"""The advisory backend: tiers, warm sessions, and coalesced solves.

The backend owns everything behind the wire protocol:

* a **warm session pool** — placement queries are solver-cache-bound,
  so the pool pins one :class:`~repro.solver.session.SolverSession` per
  machine fingerprint (on top of the process-wide registry) and accounts
  hits/misses for ``health``;
* a **model cache** — Algorithm 1 characterizations keyed by
  ``(fingerprint, target, mode)``; a faulted machine view has a new
  fingerprint, so fault injection naturally invalidates models without
  touching the healthy entries;
* the **tier store** (:class:`~repro.service.tiers.TierStore`) — every
  successful characterization refreshes an always-warm cache holding
  the class snapshot, the exact per-node values, and the tier-1
  analytic fit.  Live answers come from the fastest tier that can
  serve them honestly:

  - **tier 1** — ``predict_eq1`` from the analytic per-class fit
    (pure arithmetic, microseconds);
  - **tier 2** — ``advise``/``classify`` from the memoized snapshot
    (bit-identical to the solver path, no solver touched) and ``plan``
    from the per-weight memo;
  - **tier 3** — a full Algorithm 1 solve, which refreshes tiers 1–2.

  When the circuit breaker is open the *same* store serves last-good
  answers (fingerprint- and staleness-blind, marked ``degraded:
  true``).  That is the Dynamo-style contract: always answerable,
  possibly degraded — and every answer carries ``{"tier", "staleness_s"}``
  so callers can see which contract they got.

* **single-flight coalescing** — identical in-flight
  ``(fingerprint, target, mode)`` solves collapse onto one pending
  build: one leader solves, every waiter blocks on the same flight and
  receives the same model (or re-raises the same typed failure).
  ``coalesced`` counts the waiters (obs: ``service.coalesced``).

Backend calls raise :class:`~repro.errors.ServiceError` for caller
mistakes (unknown node, bad stream list) and let solver-layer errors
(:data:`SOLVER_FAILURES`) propagate for the breaker to count.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.planner import DeviceAttachmentPlanner
from repro.core.iomodel import IOModelBuilder
from repro.core.model import IOPerformanceModel
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.errors import (
    FaultError,
    ModelError,
    RoutingError,
    ServiceError,
    SimulationError,
    TopologyError,
)
from repro.obs import recorder as _obs
from repro.obs.live import NullLivePlane
from repro.rng import RngRegistry
from repro.service.protocol import encode_wire
from repro.service.tiers import (
    TIER_CLASS,
    TIER_SOLVE,
    TIER_ANALYTIC,
    TierStore,
    WireAnswer,
    stamp_tier,
    wire_gbps,
)
from repro.solver.capacity import machine_fingerprint
from repro.solver.session import SolverSession, get_session
from repro.topology.machine import Machine

__all__ = [
    "SOLVER_FAILURES",
    "SessionPool",
    "ClassSnapshot",
    "AdvisoryBackend",
]

#: Exception classes the circuit breaker counts as solver failures.
#: (:class:`~repro.errors.RouteLostError` is a :class:`FaultError`.)
SOLVER_FAILURES = (RoutingError, TopologyError, SimulationError, FaultError)

#: The shared no-op plane a standalone backend writes into; the serving
#: transport overwrites :attr:`AdvisoryBackend.live` (and ``drift``)
#: with its own, exactly like it overwrites the clock.
_NULL_PLANE = NullLivePlane()


class SessionPool:
    """Warm solver sessions, pinned per machine fingerprint (LRU).

    A thin accounting layer over the process-wide session registry:
    ``acquire`` returns the shared session for a machine's topology and
    holds a strong reference so the global LRU cannot evict a session
    the service is amortising caches through.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"session pool maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._sessions: OrderedDict[str, SolverSession] = OrderedDict()

    def acquire(self, machine: Machine) -> SolverSession:
        """The warm session for ``machine``'s topology."""
        fingerprint = machine_fingerprint(machine)
        session = self._sessions.get(fingerprint)
        if session is None:
            self.misses += 1
            session = get_session(machine)
            self._sessions[fingerprint] = session
            while len(self._sessions) > self.maxsize:
                self._sessions.popitem(last=False)
        else:
            self.hits += 1
            self._sessions.move_to_end(fingerprint)
        return session

    def __len__(self) -> int:
        return len(self._sessions)

    def stats(self) -> dict:
        """JSON-able pool state for ``health`` responses."""
        return {"size": len(self), "hits": self.hits, "misses": self.misses}


@dataclass(frozen=True)
class ClassSnapshot:
    """Class-level summary of one characterization — the tier-2 answer.

    ``classes`` rows are ``(rank, node_ids, avg, lo, hi)`` in rank
    order: everything a class-level placement, classification or Eq. 1
    prediction needs, nothing that requires a live solver.
    """

    machine_name: str
    target_node: int
    mode: str
    classes: tuple[tuple[int, tuple[int, ...], float, float, float], ...]

    @classmethod
    def from_model(cls, model: IOPerformanceModel) -> "ClassSnapshot":
        """Snapshot the class structure of a freshly built model."""
        return cls(
            machine_name=model.machine_name,
            target_node=model.target_node,
            mode=model.mode,
            classes=tuple(
                (c.rank, tuple(c.node_ids), c.avg, c.lo, c.hi)
                for c in model.classes
            ),
        )

    def rank_of(self, node: int) -> "int | None":
        """The class rank holding ``node``, or ``None`` if unknown."""
        for rank, node_ids, _avg, _lo, _hi in self.classes:
            if node in node_ids:
                return rank
        return None

    def class_avgs(self) -> dict[int, float]:
        """``rank -> avg Gbps`` for every class."""
        return {rank: avg for rank, _nodes, avg, _lo, _hi in self.classes}

    def equivalent_classes(self, tolerance: float) -> tuple[int, ...]:
        """Ranks within ``tolerance`` (relative) of the best class."""
        avgs = self.class_avgs()
        best = max(avgs.values())
        return tuple(
            rank for rank, avg in sorted(avgs.items())
            if (best - avg) / best <= tolerance
        )

    def to_dict(self) -> dict:
        """JSON-able form (the ``classify`` payload body)."""
        return {
            "machine": self.machine_name,
            "target": self.target_node,
            "mode": self.mode,
            "classes": [
                {
                    "rank": rank,
                    "node_ids": list(node_ids),
                    "avg_gbps": wire_gbps(avg),
                    "lo_gbps": wire_gbps(lo),
                    "hi_gbps": wire_gbps(hi),
                }
                for rank, node_ids, avg, lo, hi in self.classes
            ],
        }


class _Flight:
    """One in-flight solve: a leader builds, waiters share the outcome."""

    __slots__ = ("event", "model", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.model: IOPerformanceModel | None = None
        self.error: BaseException | None = None


class AdvisoryBackend:
    """Placement answers over one host, tiered, fault-swappable, degradable.

    Parameters
    ----------
    machine:
        The healthy host the service advises for.
    registry:
        Seeded RNG registry; characterization streams restart per name,
        so rebuilding a model is bit-deterministic.
    runs:
        Algorithm 1 copies per probe (trade accuracy for latency).
    pool:
        Warm session pool (defaults to a fresh one).
    model_cache:
        LRU bound on cached characterizations.
    solver_pool:
        Optional :class:`~repro.fabric.FabricPool`: cold model builds
        run in its worker processes (shared-memory arenas, no event-loop
        stalls) instead of in-process.  Results are bit-identical either
        way, so the tier is a latency knob, not a semantics knob; solver
        failures keep their types so the breaker counts them unchanged.
    clock:
        Monotonic seconds for staleness accounting.  The service
        transport overwrites this with its own clock, so the chaos
        soak's logical clock flows through with no extra plumbing.
    tier_max_staleness_s:
        Entries older than this stop serving tiers 1–2 and the next
        request re-characterizes (tier 3).  ``None`` (the default)
        means entries never go stale — only a fingerprint change
        (fault injection) bypasses the fast tiers.
    """

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        runs: int = 25,
        pool: SessionPool | None = None,
        model_cache: int = 32,
        solver_pool=None,
        clock=time.monotonic,
        tier_max_staleness_s: "float | None" = None,
    ) -> None:
        self.healthy_machine = machine
        self.machine = machine
        self._node_set = frozenset(machine.node_ids)
        self.registry = registry if registry is not None else RngRegistry()
        self.runs = runs
        self.pool = pool if pool is not None else SessionPool()
        self.solver_pool = solver_pool
        self.clock = clock
        self.tier_max_staleness_s = tier_max_staleness_s
        self._model_cache_size = model_cache
        self._models: OrderedDict[tuple[str, int, str], IOPerformanceModel]
        self._models = OrderedDict()
        self.tiers = TierStore()
        # fingerprint -> (per-node AttachmentScores, refreshed_at): the
        # weight-independent base every plan answer is arithmetic over.
        self._plan_base_memo: OrderedDict[str, tuple[tuple, float]]
        self._plan_base_memo = OrderedDict()
        self._plan_base_size = 8
        self._last_good_plans: OrderedDict[float, tuple[dict, float]]
        self._last_good_plans = OrderedDict()
        self._last_good_plans_size = 64
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple[str, int, str], _Flight] = {}
        self.solves = 0
        self.coalesced = 0
        self.warmed = False
        self.warm_targets: tuple[int, ...] = ()
        # Live metrics plane + drift watch: no-op/absent until a
        # PlacementService adopts this backend and assigns its own.
        self.live = _NULL_PLANE
        self.drift = None
        # Pre-bound DriftWatch.note_fast (None while no watch is
        # attached): the fast-tier serving paths call this once per
        # answer with one (target, mode, model_mean) triple, so the
        # attribute walk and the Python call frame are paid at attach
        # time, not per answer.
        self._drift_note = None
        # Self-healing hooks, assigned by a RepairSupervisor when one
        # adopts this backend (None otherwise): ``on_machine_change``
        # fires after every machine swap with the new view;
        # ``on_repair_drift`` fires with the event dict whenever a
        # landed solve trips the drift watch.
        self.on_machine_change = None
        self.on_repair_drift = None

    # --- machine lifecycle -------------------------------------------------
    def set_machine(self, machine: Machine) -> None:
        """Swap the live machine view (fault injection / recovery).

        Model and session caches are fingerprint-keyed so nothing is
        dropped; tier-store entries survive by design — they are the
        degraded answers served while the new view is unsolvable.
        """
        self.machine = machine
        if self.on_machine_change is not None:
            self.on_machine_change(machine)

    def restore_machine(self) -> None:
        """Swap back to the healthy host."""
        self.machine = self.healthy_machine
        if self.on_machine_change is not None:
            self.on_machine_change(self.healthy_machine)

    # --- characterization --------------------------------------------------
    def _check_node(self, node: int, what: str) -> None:
        if node not in self._node_set:
            raise ServiceError(
                "invalid_params",
                f"{what} {node} is not a node of "
                f"{self.healthy_machine.name!r} "
                f"(nodes {list(self.healthy_machine.node_ids)})",
                data={"param": what},
            )

    def _solve_model(self, target: int, mode: str) -> IOPerformanceModel:
        """One genuine tier-3 solve (in-process or via the fabric pool)."""
        self.solves += 1
        session = self.pool.acquire(self.machine)  # warm the capacity cache
        started = self.clock()
        if self.solver_pool is not None:
            model = self.solver_pool.build_model(
                self.machine, target, mode,
                registry=self.registry, runs=self.runs,
            )
        else:
            builder = IOModelBuilder(
                self.machine, registry=self.registry, runs=self.runs
            )
            builder.session = session  # reuse the pinned warm session
            model = builder.build(target, mode)
        # Service-clock solve time: 0.0 on the soak's logical clock, so
        # the histogram stays a pure function of the request stream.
        self.live.record("service.solve", self.clock() - started)
        return model

    def _refresh_tiers(self, model: IOPerformanceModel, fingerprint: str) -> None:
        """Fold a completed solve into the tier store (tiers 1–2 warm).

        Also the drift watch's observation point: every landed solve is
        compared against what the fast tiers served since the last one.
        A landed solve under the live fingerprint *is* tier-3 truth, so
        it lifts any quarantine on its key; a fired drift event is
        handed to the repair supervisor (when one is attached) so the
        sibling keys it implicates get re-characterized too.
        """
        snapshot = ClassSnapshot.from_model(model)
        self.tiers.refresh(
            snapshot, model, self.machine, fingerprint, self.clock(),
        )
        self.tiers.promote(model.target_node, model.mode)
        if self.drift is not None:
            event = self.drift.note_solve(
                model.target_node, model.mode,
                snapshot.class_avgs(), self.clock(),
            )
            if event is not None and self.on_repair_drift is not None:
                self.on_repair_drift(event)

    def _stale(self, target: int, mode: str, fingerprint: str) -> bool:
        if self.tier_max_staleness_s is None:
            return False
        entry = self.tiers.entries.get((target, mode))
        return (
            entry is not None
            and entry.fingerprint == fingerprint
            and entry.staleness(self.clock()) > self.tier_max_staleness_s
        )

    def model(self, target: int, mode: str) -> IOPerformanceModel:
        """The (cached) Algorithm 1 model for ``(target, mode)``.

        Single-flight: identical concurrent builds collapse onto one
        pending solve — the leader builds and refreshes tiers 1–2,
        waiters share the model (or re-raise the same typed failure,
        which the breaker counts per request, honestly).  A stale tier
        entry evicts the cached model first, so ``tier_max_staleness_s``
        forces a genuine re-characterization.
        """
        self._check_node(target, "target")
        fingerprint = machine_fingerprint(self.machine)
        key = (fingerprint, target, mode)
        with self._flight_lock:
            model = self._models.get(key)
            if model is not None:
                if self._stale(target, mode, fingerprint):
                    del self._models[key]
                    self.tiers.stale_evictions += 1
                else:
                    self._models.move_to_end(key)
                    return model
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
        if not leader:
            self.coalesced += 1
            _obs.count("service.coalesced")
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.model is not None
            return flight.model
        try:
            model = self._solve_model(target, mode)
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.model = model
            with self._flight_lock:
                self._models[key] = model
                while len(self._models) > self._model_cache_size:
                    self._models.popitem(last=False)
            self._refresh_tiers(model, fingerprint)
            return model
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.event.set()

    def recharacterize(self, target: int, mode: str):
        """The repair loop's solve: model + tier refresh, returns the entry.

        Same single-flight tier-3 path as :meth:`model`, with one extra
        guarantee: the resulting :class:`~repro.service.tiers.TierEntry`
        is refreshed under the *live* fingerprint even when the model
        came from the cache — after a fault clears, the healthy model
        is usually still cached, so the repair is a re-fit and a
        promotion, not a genuine re-solve.
        """
        model = self.model(target, mode)
        fingerprint = machine_fingerprint(self.machine)
        entry = self.tiers.entries.get((target, mode))
        if entry is None or entry.fingerprint != fingerprint:
            self._refresh_tiers(model, fingerprint)
            entry = self.tiers.entries.get((target, mode))
        return entry

    def warm(self, targets: "tuple[int, ...] | None" = None) -> None:
        """Pre-build both models for ``targets`` (device nodes by default)."""
        if targets is None:
            device_nodes = tuple(
                sorted({d.node_id for d in self.healthy_machine.devices.values()})
            )
            targets = device_nodes or (self.healthy_machine.node_ids[-1],)
        for target in targets:
            for mode in ("write", "read"):
                self.model(target, mode)
        self.warm_targets = tuple(targets)
        self.warmed = True

    # --- live answers ------------------------------------------------------
    def _entry(self, target: int, mode: str):
        """The fresh tier entry for live answers, or ``None``."""
        return self.tiers.fresh(
            target, mode, machine_fingerprint(self.machine),
            self.clock(), self.tier_max_staleness_s,
        )

    def advise(
        self,
        target: int,
        mode: str,
        tasks: int,
        avoid_irq_node: bool = False,
        tolerance: float = 0.05,
    ) -> dict:
        """Class-aware placement: tier 2 from the snapshot, else tier 3.

        A quarantined ``(target, mode)`` serves the labelled
        ``repairing`` last-good answer instead — requests never
        stampede the solver while the repair supervisor is already
        re-characterizing the key, and never get an unlabelled stale
        answer.  With no last-good cover it falls through to tier 3
        (whose landed solve lifts the quarantine).
        """
        self._check_node(target, "target")
        if self.tiers.quarantine_reason(target, mode) is not None:
            payload = self.repairing_answer("advise", {
                "target": target, "mode": mode, "tasks": tasks,
                "avoid_irq_node": avoid_irq_node, "tolerance": tolerance,
            })
            if payload is not None:
                return payload
        entry = self._entry(target, mode)
        if entry is not None:
            note = self._drift_note
            if note is not None:
                note(entry.drift_note)
            return stamp_tier(
                entry.advise_payload(tasks, avoid_irq_node, tolerance),
                TIER_CLASS, entry.staleness(self.clock()),
            )
        model = self.model(target, mode)
        advisor = PlacementAdvisor(self.machine, model, tolerance=tolerance)
        plan = advisor.advise(tasks, avoid_irq_node=avoid_irq_node)
        return stamp_tier({
            "degraded": False,
            "source": "characterization",
            "machine": self.machine.name,
            "target": target,
            "mode": mode,
            "tasks_per_node": {
                str(n): c for n, c in sorted(plan.tasks_per_node.items()) if c
            },
            "classes_used": list(plan.classes_used),
            "stream_nodes": plan.stream_nodes(),
        }, TIER_SOLVE, 0.0)

    def _plan_base(self) -> tuple[tuple, float, bool, str]:
        """The weight-independent per-node plan scores for the live machine.

        Returns ``(rows, staleness_s, fresh, header)`` where each row is
        ``(node, write_mean, read_mean, wire_template, wire_tail)`` —
        full-precision means for the weight blend, a pre-rounded wire
        dict, and that dict's encoding minus its leading brace (ranking
        rows on the wire lead with the weight-blended ``combined_gbps``,
        the one varying value, so a warm answer is spliced from these
        constant tails).  ``header`` is the constant result prefix up to
        the ranking list.  Memoized per fingerprint (the per-node
        DMA-path means are pure topology, no weight in them), so every
        plan answer after the first is arithmetic over precomputed
        coefficients — tier 1.
        """
        fingerprint = machine_fingerprint(self.machine)
        now = self.clock()
        memo = self._plan_base_memo.get(fingerprint)
        if memo is not None:
            rows, at, header = memo
            if (
                self.tier_max_staleness_s is None
                or now - at <= self.tier_max_staleness_s
            ):
                self._plan_base_memo.move_to_end(fingerprint)
                return rows, now - at, False, header
        planner = DeviceAttachmentPlanner(self.machine)
        rows = []
        for s in (planner.score(n) for n in self.machine.node_ids):
            template = {
                "node": s.node,
                "write_mean_gbps": wire_gbps(s.write_mean_gbps),
                "read_mean_gbps": wire_gbps(s.read_mean_gbps),
            }
            rows.append((
                s.node,
                s.write_mean_gbps,
                s.read_mean_gbps,
                template,
                # '{"combined_gbps":<v>' + this tail = one ranking row.
                "," + encode_wire(template)[1:],
            ))
        rows = tuple(rows)
        header = (
            ',"degraded":false,"machine":'
            + encode_wire(self.machine.name) + ',"ranking":['
        )
        self._plan_base_memo[fingerprint] = (rows, now, header)
        while len(self._plan_base_memo) > self._plan_base_size:
            self._plan_base_memo.popitem(last=False)
        return rows, 0.0, True, header

    def plan(self, write_weight: float = 0.5) -> dict:
        """Analytic device-attachment ranking: tier 1 once the base is warm."""
        weight = float(write_weight)
        if not 0 <= weight <= 1:
            raise ModelError(f"write_weight must be in [0, 1], got {write_weight}")
        base, staleness, fresh, header = self._plan_base()
        scored = [
            (weight * write + (1.0 - weight) * read, node, template, tail)
            for node, write, read, template, tail in base
        ]
        scored.sort(key=lambda row: (-row[0], row[1]))
        ranking = [
            (wire_gbps(combined), template, tail)
            for combined, _node, template, tail in scored
        ]
        result = {
            "degraded": False,
            "source": "characterization" if fresh else "analytic-base",
            "machine": self.machine.name,
            "write_weight": write_weight,
            "best_node": scored[0][1],
            "ranking": [
                dict(template, combined_gbps=combined)
                for combined, template, _tail in ranking
            ],
        }
        self._last_good_plans[round(weight, 9)] = (result, self.clock())
        while len(self._last_good_plans) > self._last_good_plans_size:
            self._last_good_plans.popitem(last=False)
        if fresh:
            return stamp_tier(dict(result), TIER_SOLVE, staleness)
        # Warm answers splice pre-encoded fragments: the only varying
        # bytes are best_node, the blended combined_gbps per row, the
        # echoed weight and the staleness the server splices in.
        answer = WireAnswer(result)
        answer.wire_pre = (
            '{"best_node":' + str(scored[0][1]) + header
            + ",".join(
                '{"combined_gbps":' + repr(combined) + tail
                for combined, _template, tail in ranking
            )
            + '],"source":"analytic-base","staleness_s":'
        )
        answer.wire_post = (
            ',"tier":1,"write_weight":' + repr(write_weight) + "}"
        )
        return stamp_tier(answer, TIER_ANALYTIC, staleness)

    def predict_eq1(self, target: int, mode: str, streams: list[int]) -> dict:
        """Eq. 1 aggregate prediction: tier 1 analytic, else tier 3 exact.

        The analytic answer carries ``fit_rel_err_bound`` — the fit's
        measured worst-case relative deviation from the exact Eq. 1
        class coefficients it was fitted from.
        """
        for node in streams:
            self._check_node(node, "stream node")
        self._check_node(target, "target")
        if self.tiers.quarantine_reason(target, mode) is not None:
            payload = self.repairing_answer(
                "predict_eq1",
                {"target": target, "mode": mode, "streams": streams},
            )
            if payload is not None:
                return payload
        entry = self._entry(target, mode)
        if entry is not None:
            payload = entry.analytic_predict(streams)
            if payload is not None:
                note = self._drift_note
                if note is not None:
                    note(entry.drift_note)
                return stamp_tier(
                    payload, TIER_ANALYTIC, entry.staleness(self.clock())
                )
        model = self.model(target, mode)
        alpha: dict[int, float] = {}
        for node in streams:
            rank = model.class_of(node).rank
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        avgs = {c.rank: c.avg for c in model.classes}
        total = sum(alpha.values())
        predicted = sum(
            (share / total) * avgs[rank] for rank, share in alpha.items()
        )
        return stamp_tier({
            "degraded": False,
            "source": "characterization",
            "machine": self.machine.name,
            "target": target,
            "mode": mode,
            "streams": list(streams),
            "predicted_gbps": wire_gbps(predicted),
            "class_fractions": {
                str(rank): wire_gbps(share / total)
                for rank, share in sorted(alpha.items())
            },
        }, TIER_SOLVE, 0.0)

    def classify(self, target: int, mode: str) -> dict:
        """The class structure for ``(target, mode)``: tier 2, else tier 3."""
        self._check_node(target, "target")
        if self.tiers.quarantine_reason(target, mode) is not None:
            payload = self.repairing_answer(
                "classify", {"target": target, "mode": mode}
            )
            if payload is not None:
                return payload
        entry = self._entry(target, mode)
        if entry is not None:
            note = self._drift_note
            if note is not None:
                note(entry.drift_note)
            return stamp_tier(
                entry.classify_payload(), TIER_CLASS,
                entry.staleness(self.clock()),
            )
        model = self.model(target, mode)
        payload = ClassSnapshot.from_model(model).to_dict()
        payload["values"] = {
            str(n): wire_gbps(v) for n, v in sorted(model.values.items())
        }
        payload["degraded"] = False
        payload["source"] = "characterization"
        return stamp_tier(payload, TIER_SOLVE, 0.0)

    # --- degraded answers --------------------------------------------------
    def snapshot(self, target: int, mode: str) -> "ClassSnapshot | None":
        """The last-good snapshot for ``(target, mode)``, if any."""
        entry = self.tiers.last_good(target, mode)
        return entry.snapshot if entry is not None else None

    def degraded_answer(self, method: str, params: dict) -> "dict | None":
        """A class-level answer from the last-good tier entry.

        Returns ``None`` when no entry covers the request — the
        dispatcher then refuses with a typed ``unavailable`` error.
        Every answer is marked ``degraded: true`` with its provenance,
        tagged tier 2 with its true (possibly large) staleness; the
        lookup is fingerprint- and staleness-blind on purpose — while
        the breaker is open, the freshest snapshot we ever had *is*
        the answer.
        """
        now = self.clock()
        if method == "plan":
            cached = self._last_good_plans.get(
                round(float(params["write_weight"]), 9)
            )
            if cached is None:
                return None
            payload, at = cached
            return stamp_tier(
                dict(payload, degraded=True,
                     source="last-good-characterization"),
                TIER_CLASS, now - at,
            )
        return self._last_good_answer(
            method, params, "last-good-characterization"
        )

    def repairing_answer(self, method: str, params: dict) -> "dict | None":
        """The answer for a quarantined ``(target, mode)`` under repair.

        Same last-good store as :meth:`degraded_answer`, but labelled
        ``repairing: true`` with ``source: "last-good-repairing"`` —
        the key was pulled from live serving by the self-healing plane
        (fault blast radius or a drift event) and the supervisor has
        not yet promoted a fresh characterization back.  Never silently
        stale: the true staleness and the repair label ride on every
        response.  Returns ``None`` when no entry covers the request
        (the caller then falls through to a genuine tier-3 solve).
        """
        return self._last_good_answer(
            method, params, "last-good-repairing", repairing=True
        )

    def _last_good_answer(
        self, method: str, params: dict, source: str, repairing: bool = False
    ) -> "dict | None":
        if method not in ("advise", "predict_eq1", "classify"):
            return None
        entry = self.tiers.last_good(params["target"], params["mode"])
        if entry is None:
            return None
        if self._drift_note is not None:
            # Degraded answers are served off the last-good model too:
            # the drift watch must account them against the next solve.
            self._drift_note(entry.drift_note)
        if method == "classify":
            payload = entry.classify_payload()
        elif method == "advise":
            payload = entry.advise_payload(
                params["tasks"], params["avoid_irq_node"], params["tolerance"]
            )
        else:  # predict_eq1: the exact snapshot mixture, not the fit
            payload = entry.predict_payload(params["streams"])
            if payload is None:
                return None
        # Plain-dict copy: the degraded markers invalidate the entry's
        # pre-encoded wire form, so this must take the full-encode path.
        payload = dict(payload)
        payload["degraded"] = True
        payload["source"] = source
        if repairing:
            payload["repairing"] = True
        return stamp_tier(payload, TIER_CLASS, entry.staleness(self.clock()))
