"""Machine (de)serialisation."""

import json

import pytest

from repro.errors import TopologyError
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO
from repro.topology.serialize import machine_from_dict, machine_to_dict


class TestRoundTrip:
    def test_reference_host_roundtrips(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        assert rebuilt.name == bare_host.name
        assert rebuilt.node_ids == bare_host.node_ids
        assert rebuilt.links.keys() == bare_host.links.keys()
        assert rebuilt.params == bare_host.params

    def test_capacity_models_survive(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        for src in bare_host.node_ids:
            for dst in bare_host.node_ids:
                assert rebuilt.dma_path_gbps(src, dst) == pytest.approx(
                    bare_host.dma_path_gbps(src, dst)
                )
                assert rebuilt.pio_stream_gbps(src, dst) == pytest.approx(
                    bare_host.pio_stream_gbps(src, dst)
                )

    def test_routing_survives(self, bare_host):
        rebuilt = machine_from_dict(machine_to_dict(bare_host))
        for plane in (PLANE_PIO, PLANE_DMA):
            for src in bare_host.node_ids:
                for dst in bare_host.node_ids:
                    assert (rebuilt.routing.route(plane, src, dst)
                            == bare_host.routing.route(plane, src, dst))

    def test_json_compatible(self, bare_host):
        text = json.dumps(machine_to_dict(bare_host))
        rebuilt = machine_from_dict(json.loads(text))
        assert rebuilt.n_nodes == bare_host.n_nodes

    def test_devices_not_serialised(self, host):
        rebuilt = machine_from_dict(machine_to_dict(host))
        assert rebuilt.devices == {}


class TestValidation:
    def test_version_checked(self, bare_host):
        data = machine_to_dict(bare_host)
        data["format_version"] = 99
        with pytest.raises(TopologyError):
            machine_from_dict(data)

    def test_missing_fields_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        del data["nodes"][0]["dram_gbps"]
        with pytest.raises(TopologyError):
            machine_from_dict(data)

    def test_malformed_links_rejected(self, bare_host):
        data = machine_to_dict(bare_host)
        data["links"][0].pop("width_bits")
        with pytest.raises(TopologyError):
            machine_from_dict(data)
