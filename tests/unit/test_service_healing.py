"""The self-healing control plane: quarantine, repair loop, labelling.

Pins the PR-10 robustness contract:

* quarantined ``(target, mode)`` keys never serve an *unlabelled* stale
  answer — every response still carries ``tier``/``staleness_s`` and,
  when served from the last-good store under quarantine, ``repairing``;
* the supervisor closes the loop end to end: fault → quarantine →
  labelled serving → background re-characterization → verify → promote
  → tier-1/2 serving again, and the same again when the fault clears;
* with solves genuinely failing the retry budget is honoured and the
  key *stays* quarantined (honest) instead of flapping.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import RoutingError, TopologyError
from repro.faults import FaultedMachine, LinkDegrade, LinkFail
from repro.healing import RepairJob, RepairSupervisor
from repro.interconnect.planes import ALL_PLANES
from repro.retrying import RetryPolicy
from repro.rng import RngRegistry
from repro.service.backend import AdvisoryBackend
from repro.service.breaker import CircuitBreaker
from repro.service.server import PlacementService
from repro.service.soak import LogicalClock
from repro.service.tiers import TierStore
from repro.solver.capacity import machine_fingerprint
from repro.topology.builders import reference_host

TARGET = 7


def _cables_of(machine, node):
    return sorted({tuple(sorted(ends)) for ends in machine.links if node in ends})


@pytest.fixture()
def rig():
    """A supervised service over a routed reference host, warm on node 7."""
    machine = reference_host()
    for plane in ALL_PLANES:
        machine.routing.populate(plane, strict=False)
    registry = RngRegistry(11)
    clock = LogicalClock()
    backend = AdvisoryBackend(machine, registry=registry, runs=3)
    breaker = CircuitBreaker(
        failure_threshold=2,
        rng=registry.stream("test/breaker"),
        clock=clock,
    )
    service = PlacementService(backend, breaker=breaker, clock=clock)
    supervisor = RepairSupervisor(
        backend,
        retry=RetryPolicy(max_retries=2, base_delay_s=0.1, jitter=0.0),
    ).attach(service)
    backend.warm((TARGET,))
    clock.advance()
    return machine, backend, service, supervisor, clock


class TestTierStoreQuarantine:
    def test_quarantine_blocks_fresh_and_promote_restores(self, rig):
        machine, backend, _service, _sup, clock = rig
        store = backend.tiers
        fingerprint = machine_fingerprint(machine)
        assert store.fresh(TARGET, "write", fingerprint, clock(), None)
        store.quarantine(TARGET, "write", "test")
        assert store.quarantine_reason(TARGET, "write") == "test"
        assert store.fresh(TARGET, "write", fingerprint, clock(), None) is None
        assert store.stats(clock())["quarantined"] == 1
        assert store.promote(TARGET, "write") is True
        assert store.promote(TARGET, "write") is False  # idempotent
        assert store.fresh(TARGET, "write", fingerprint, clock(), None)

    def test_empty_store_stats_count_zero(self):
        assert TierStore().stats(0.0)["quarantined"] == 0


class TestQuarantinedServing:
    def test_quarantined_answers_are_labelled_repairing(self, rig):
        _machine, backend, _service, _sup, _clock = rig
        backend.tiers.quarantine(TARGET, "write", "test")
        for method, result in [
            ("advise", backend.advise(TARGET, "write", tasks=4)),
            ("predict_eq1", backend.predict_eq1(TARGET, "write", [0, 1])),
            ("classify", backend.classify(TARGET, "write")),
        ]:
            assert result["repairing"] is True, method
            assert result["degraded"] is True, method
            assert result["source"] == "last-good-repairing", method
            assert result["tier"] == 2, method
            assert result["staleness_s"] >= 0.0, method

    def test_uncovered_quarantine_falls_through_and_promotes(self, rig):
        _machine, backend, _service, _sup, _clock = rig
        # No last-good entry for (read at node 3): the quarantined key
        # falls through to a genuine tier-3 solve, which promotes it.
        backend.tiers.quarantine(3, "read", "test")
        result = backend.classify(3, "read")
        assert result["tier"] == 3
        assert "repairing" not in result
        assert backend.tiers.quarantine_reason(3, "read") is None

    def test_zero_staleness_plus_quarantine_never_unlabelled(self, rig):
        """--tier-max-staleness 0 + active quarantine: every wire
        response carries tier/staleness_s; stale answers carry their
        degraded/repairing labels — never a silently stale answer."""
        _machine, backend, service, _sup, clock = rig
        backend.tier_max_staleness_s = 0.0
        backend.tiers.quarantine(TARGET, "write", "test")
        lines = [
            json.dumps({"jsonrpc": "2.0", "id": i, "method": method,
                        "params": params})
            for i, (method, params) in enumerate([
                ("advise", {"target": TARGET, "mode": "write", "tasks": 4}),
                ("predict_eq1",
                 {"target": TARGET, "mode": "write", "streams": [0, 1]}),
                ("classify", {"target": TARGET, "mode": "write"}),
                ("classify", {"target": TARGET, "mode": "read"}),
                ("plan", {"write_weight": 0.5}),
            ])
        ]
        for line in lines:
            payload = json.loads(service.handle_line(line))
            result = payload["result"]
            assert "tier" in result and "staleness_s" in result, line
            if result.get("degraded"):
                # Labelled: provenance plus the repairing marker when
                # the self-healing plane pulled the key.
                assert result["source"].startswith("last-good")
                assert result["repairing"] is True
            elif result["staleness_s"] > 0.0:
                pytest.fail(f"unlabelled stale answer: {result}")
            clock.advance()


class TestRepairCycle:
    def test_derate_quarantines_only_the_blast_radius(self, rig):
        machine, backend, _service, sup, _clock = rig
        # Characterize a second target so the store holds keys outside
        # the blast radius of a fault that never touches them.
        backend.model(0, "write")
        a, b = _cables_of(machine, TARGET)[0]
        faulted = FaultedMachine(machine, [LinkDegrade(a, b, 0.4)])
        touched = set()
        for stats in faulted.routing.last_reroute.values():
            touched.update(stats.touched_nodes)
        backend.set_machine(faulted)
        for (target, mode) in backend.tiers.quarantined:
            assert target in touched
        assert (TARGET, "write") in backend.tiers.quarantined
        if 0 not in touched:
            assert (0, "write") not in backend.tiers.quarantined

    def test_fault_repair_restore_rerepair_converges(self, rig):
        machine, backend, service, sup, clock = rig
        faulted = FaultedMachine(
            machine,
            [LinkDegrade(a, b, 0.4) for a, b in _cables_of(machine, TARGET)],
        )
        backend.set_machine(faulted)
        assert backend.tiers.quarantined
        assert backend.advise(TARGET, "write", tasks=4)["repairing"] is True
        for _ in range(6):
            clock.advance()
            sup.pump()
            if not sup.jobs:
                break
        assert not backend.tiers.quarantined
        repaired = backend.advise(TARGET, "write", tasks=4)
        assert repaired["tier"] == 2 and "repairing" not in repaired

        backend.restore_machine()  # fault clears: faulted-era entries suspect
        assert backend.tiers.quarantined
        for _ in range(6):
            clock.advance()
            sup.pump()
            if not sup.jobs:
                break
        assert not backend.tiers.quarantined
        assert sup.failed == 0
        healthy = backend.predict_eq1(TARGET, "write", [0, 1, 2])
        assert healthy["tier"] == 1 and "repairing" not in healthy
        assert sup.stats()["promoted"] == service.health_payload()[
            "repair"]["promoted"] >= 2
        counters = service.live.counters
        assert counters["service.repair.started"] >= 2
        assert counters["service.repair.promoted"] == sup.promoted
        kinds = [e["kind"] for e in service.live.flight.dump()["events"]]
        assert "repair" in kinds

    def test_unsolvable_fault_exhausts_budget_and_stays_quarantined(self, rig):
        machine, backend, _service, sup, clock = rig
        faulted = FaultedMachine(
            machine,
            [LinkFail(a, b) for a, b in _cables_of(machine, TARGET)],
        )
        backend.set_machine(faulted)
        assert (TARGET, "write") in backend.tiers.quarantined
        with pytest.raises((RoutingError, TopologyError)):
            backend.model(TARGET, "write")
        for _ in range(12):
            clock.advance()
            sup.pump()
        assert sup.failed >= 1
        assert not sup.jobs  # budget exhausted, no flapping
        # Still quarantined and still honestly labelled.
        assert backend.tiers.quarantine_reason(TARGET, "write")
        assert backend.advise(TARGET, "write", tasks=2)["repairing"] is True
        # Fault clearance revalidates the untouched healthy entries.
        backend.restore_machine()
        assert backend.tiers.quarantine_reason(TARGET, "write") is None
        assert backend.advise(TARGET, "write", tasks=2)["tier"] == 2

    def test_drift_event_quarantines_stale_siblings(self, rig):
        _machine, backend, _service, sup, clock = rig
        sup.on_drift({"target": TARGET, "mode": "write", "deviation": 0.2})
        # The fired key itself is skipped; the sibling (read) entry was
        # characterized a tick ago, so it is quarantined and queued.
        assert (TARGET, "write") not in backend.tiers.quarantined
        assert (TARGET, "read") in backend.tiers.quarantined
        assert sup.jobs[(TARGET, "read")].reason == f"drift:{TARGET}/write"
        clock.advance()
        sup.pump()
        assert not backend.tiers.quarantined
        assert sup.promoted >= 1


class TestRepairJob:
    def test_key_property(self):
        assert RepairJob(3, "read", "test").key == (3, "read")
