"""Core-granting CPU scheduler.

Enforces the machine's physical core capacity: a node's cores can be
oversubscribed only explicitly (``allow_oversubscribe``), because the
paper's experiments always pin at most one worker per core and the
interesting contention happens in the fabric, not in timeslicing.
"""

from __future__ import annotations

from repro.errors import AffinityError
from repro.osmodel.process import SimTask
from repro.topology.machine import Machine

__all__ = ["CpuScheduler"]


class CpuScheduler:
    """Tracks core occupancy and places tasks."""

    def __init__(self, machine: Machine, allow_oversubscribe: bool = False) -> None:
        self.machine = machine
        self.allow_oversubscribe = allow_oversubscribe
        self._busy: dict[int, str] = {}  # core_id -> task name
        self._tasks: dict[str, SimTask] = {}

    def _free_cores(self, node: int) -> list[int]:
        return [
            core.core_id
            for core in self.machine.node(node).cores
            if core.core_id not in self._busy
        ]

    def load(self, node: int) -> int:
        """Number of busy cores on ``node``."""
        return sum(
            1 for core in self.machine.node(node).cores if core.core_id in self._busy
        )

    def place(self, task: SimTask) -> SimTask:
        """Grant cores to ``task`` according to its binding.

        Unbound tasks go to the least-loaded node (ties to the lowest
        id), which is a fair model of the Linux load balancer at this
        granularity.
        """
        if task.name in self._tasks:
            raise AffinityError(f"task {task.name!r} is already scheduled")
        node = task.binding.cpu_node
        if node is None:
            node = min(self.machine.node_ids, key=lambda n: (self.load(n), n))
        if node not in self.machine.node_ids:
            raise AffinityError(f"task {task.name!r}: unknown CPU node {node}")
        free = self._free_cores(node)
        if len(free) < task.threads:
            if not self.allow_oversubscribe:
                raise AffinityError(
                    f"task {task.name!r} needs {task.threads} cores on node {node}, "
                    f"only {len(free)} free"
                )
            # Oversubscribe round-robin over the node's cores.
            cores = [c.core_id for c in self.machine.node(node).cores]
            chosen = [cores[i % len(cores)] for i in range(task.threads)]
        else:
            chosen = free[: task.threads]
        for core in chosen:
            self._busy.setdefault(core, task.name)
        task.cores = tuple(chosen)
        self._tasks[task.name] = task
        return task

    def remove(self, name: str) -> None:
        """Release a task's cores."""
        task = self._tasks.pop(name, None)
        if task is None:
            raise AffinityError(f"no scheduled task named {name!r}")
        for core in task.cores:
            if self._busy.get(core) == name:
                del self._busy[core]
        task.cores = ()

    def node_of(self, name: str) -> int:
        """The node a scheduled task landed on."""
        task = self._tasks.get(name)
        if task is None or not task.cores:
            raise AffinityError(f"task {name!r} is not scheduled")
        core_id = task.cores[0]
        for nid in self.machine.node_ids:
            if any(c.core_id == core_id for c in self.machine.node(nid).cores):
                return nid
        raise AffinityError(f"core {core_id} belongs to no node")  # pragma: no cover
