"""What-if machine modifications.

Machines are immutable; what-if studies (the a6 sensitivity ablation,
failure drills, upgrade planning) build a *modified copy* through the
serialisation layer.  These helpers name the common edits:

* :func:`with_link_credit` — re-provision one direction's DMA credits
  (the knob behind every class anomaly on the reference host);
* :func:`with_link_removed` — fail a cable (both directions), refusing
  to disconnect the fabric;
* :func:`with_dram_gbps` — swap a node's memory for faster/slower parts.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.machine import Machine
from repro.topology.serialize import machine_from_dict, machine_to_dict

__all__ = ["with_link_credit", "with_link_removed", "with_dram_gbps"]


def with_link_credit(
    machine: Machine, src: int, dst: int, dma_credit: float, rename: bool = True
) -> Machine:
    """A copy of ``machine`` with the ``src -> dst`` DMA credit replaced."""
    machine.link(src, dst)  # raises TopologyError if absent
    data = machine_to_dict(machine)
    for entry in data["links"]:
        if entry["src"] == src and entry["dst"] == dst:
            entry["dma_credit"] = dma_credit
    if rename:
        data["name"] = f"{machine.name}+credit{src}>{dst}={dma_credit:g}"
    return machine_from_dict(data)


def with_link_removed(machine: Machine, a: int, b: int, rename: bool = True) -> Machine:
    """A copy of ``machine`` with the ``a <-> b`` cable failed.

    Raises
    ------
    TopologyError
        If the link does not exist or removing it disconnects the fabric.
    """
    machine.link(a, b)
    machine.link(b, a)
    data = machine_to_dict(machine)
    data["links"] = [
        entry
        for entry in data["links"]
        if {entry["src"], entry["dst"]} != {a, b}
    ]
    if rename:
        data["name"] = f"{machine.name}-link{a}<>{b}"
    modified = machine_from_dict(data)
    # Fail fast on disconnection (hop_matrix raises on partitions).
    from repro.topology.distance import hop_matrix

    try:
        hop_matrix(modified)
    except TopologyError as exc:
        raise TopologyError(
            f"removing link {a}<->{b} disconnects {machine.name!r}: {exc}"
        ) from exc
    return modified


def with_dram_gbps(machine: Machine, node: int, dram_gbps: float,
                   rename: bool = True) -> Machine:
    """A copy of ``machine`` with ``node``'s controller bandwidth replaced."""
    if dram_gbps <= 0:
        raise TopologyError(f"dram_gbps must be positive, got {dram_gbps!r}")
    machine.node(node)
    data = machine_to_dict(machine)
    for entry in data["nodes"]:
        if entry["node_id"] == node:
            entry["dram_gbps"] = dram_gbps
    if rename:
        data["name"] = f"{machine.name}+dram{node}={dram_gbps:g}"
    return machine_from_dict(data)
