"""Generator-based simulated processes."""

import pytest

from repro.errors import SimulationError
from repro.simtime import SimProcess, Simulator, Timeout


class TestProcess:
    def test_process_advances_clock(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(sim.now)
            yield Timeout(1.5)
            log.append(sim.now)
            yield Timeout(0.5)
            log.append(sim.now)

        SimProcess(sim, worker())
        sim.run()
        assert log == [0.0, 1.5, 2.0]

    def test_return_value_captured(self):
        sim = Simulator()

        def worker():
            yield Timeout(1.0)
            return "done"

        proc = SimProcess(sim, worker())
        sim.run()
        assert proc.finished
        assert proc.result == "done"

    def test_on_done_callback(self):
        sim = Simulator()
        results = []

        def worker():
            yield Timeout(1.0)
            return 42

        SimProcess(sim, worker(), on_done=results.append)
        sim.run()
        assert results == [42]

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def make(name, delay):
            def worker():
                yield Timeout(delay)
                log.append((name, sim.now))

            return worker()

        SimProcess(sim, make("slow", 2.0))
        SimProcess(sim, make("fast", 1.0))
        sim.run()
        assert log == [("fast", 1.0), ("slow", 2.0)]

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def worker():
            yield "not a timeout"

        SimProcess(sim, worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)
