"""Deterministic timestamped event queue.

A thin wrapper over :mod:`heapq` that guarantees a *stable* order for
events scheduled at the same instant (insertion order wins).  Determinism
matters here: the whole reproduction pipeline is seeded, and a queue that
tie-broke on object identity would make runs irreproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``; ``sequence`` is a monotonically
    increasing insertion counter, giving FIFO order among simultaneous
    events.  ``cancelled`` events stay in the heap but are skipped on pop
    (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
