"""Batched all-pairs route computation.

:func:`select_route` answers one ``(plane, src, dst)`` query by
enumerating *every* minimal-hop route and scoring each — correct, but
the enumeration is worst-case exponential in path diversity and each
query re-runs a BFS over a freshly rebuilt adjacency map.  Dense
characterization sweeps (the Fig. 3 matrix, Algorithm 1 over every
node, hop-distance analysis) ask for all pairs at once, so this module
computes them that way: **one BFS per source node**, then route
selection by dynamic programming over the BFS layer DAG.

Per source the DP carries, for every node, a small Pareto frontier of
labels ``(bottleneck, latency, hops)`` over minimal-hop prefixes.  A
label is dropped only when another one is at least as good in *all
three* components (wider-or-equal bottleneck, lower-or-equal latency,
lexicographically smaller-or-equal hop sequence); extending both labels
by any common suffix preserves that ordering, so the pruned label can
never win the final ``(-bottleneck, latency, hops)`` comparison at any
destination.  The surviving best label per destination is therefore
**bit-identical** to ``min(enumerate_min_hop_routes(...), key=score)``
— the property suite asserts exactly that against randomized
asymmetric topologies.

Cost: ``O(N * E * F)`` for all pairs of one plane, where the frontier
size ``F`` is bounded by the number of distinct link widths/latencies a
machine actually has (single digits in practice), instead of per-pair
BFS plus exponential route enumeration.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import RoutingError
from repro.interconnect.planes import PLANE_DMA, Plane, validate_plane
from repro.obs import recorder as _obs

__all__ = ["bfs_layers", "plane_weights", "routes_from_source", "batch_routes"]

#: A DP label: (bottleneck so far, latency so far, hop sequence).
Label = tuple[float, float, tuple[int, ...]]


def plane_weights(
    links: Mapping[tuple[int, int], object], plane: Plane
) -> dict[tuple[int, int], tuple[float, float]]:
    """Per-link ``(bottleneck, latency)`` contributions for one plane.

    The DMA plane scores routes on bulk bottleneck only, so its latency
    contribution is zero — which collapses the DP's tie-break to the
    same ``(-bottleneck, hops)`` key :func:`select_route` uses there.
    """
    validate_plane(plane)
    if plane == PLANE_DMA:
        return {ends: (link.dma_gbps, 0.0) for ends, link in links.items()}
    return {ends: (link.pio_gbps, link.pio_latency_s) for ends, link in links.items()}


def bfs_layers(
    adj: Mapping[int, Sequence[int]], src: int
) -> tuple[dict[int, int], list[list[int]]]:
    """BFS distance labels and per-layer node lists from ``src``."""
    dist = {src: 0}
    layers = [[src]]
    frontier = [src]
    while frontier:
        nxt = []
        for here in frontier:
            for there in adj[here]:
                if there not in dist:
                    dist[there] = dist[here] + 1
                    nxt.append(there)
        if nxt:
            layers.append(nxt)
        frontier = nxt
    return dist, layers


def _prune(candidates: list[Label]) -> list[Label]:
    """Pareto-prune labels; result sorted by the selection key."""
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))
    kept: list[Label] = []
    for b, lat, hops in candidates:
        if not any(kb >= b and kl <= lat and kh <= hops for kb, kl, kh in kept):
            kept.append((b, lat, hops))
    return kept


def routes_from_source(
    adj: Mapping[int, Sequence[int]],
    weights: Mapping[tuple[int, int], tuple[float, float]],
    src: int,
    bfs: "tuple[dict[int, int], list[list[int]]] | None" = None,
) -> dict[int, tuple[int, ...]]:
    """Selected minimal-hop route from ``src`` to every reachable node.

    Callers that already ran :func:`bfs_layers` for ``src`` (the
    incremental re-router probes reachability first) pass its result as
    ``bfs`` to skip the second sweep.
    """
    dist, layers = bfs_layers(adj, src) if bfs is None else bfs
    labels: dict[int, list[Label]] = {src: [(float("inf"), 0.0, (src,))]}
    for d in range(len(layers) - 1):
        candidates: dict[int, list[Label]] = {}
        for here in layers[d]:
            here_labels = labels[here]
            for there in adj[here]:
                if dist[there] != d + 1:
                    continue
                width, latency = weights[(here, there)]
                extended = candidates.setdefault(there, [])
                for b, lat, hops in here_labels:
                    extended.append(
                        (width if width < b else b, lat + latency, hops + (there,))
                    )
        for there, cand in candidates.items():
            labels[there] = _prune(cand)
    # _prune sorts by (-bottleneck, latency, hops) — the route selection
    # key — so the first surviving label is the selected route.
    return {node: node_labels[0][2] for node, node_labels in labels.items()}


def batch_routes(
    links: Mapping[tuple[int, int], object],
    plane: Plane,
    nodes: Iterable[int] | None = None,
    adj: Mapping[int, Sequence[int]] | None = None,
    strict: bool = True,
) -> dict[tuple[int, int], tuple[int, ...]]:
    """All-pairs selected routes for one plane.

    Parameters
    ----------
    links:
        Directed link map, ``(src, dst) -> DirectedLink``.
    plane:
        Traffic plane the selection scores on.
    nodes:
        Endpoints to cover (default: every node appearing in ``links``).
    adj:
        Pre-built adjacency map (callers with a cached one avoid the
        rebuild; see :meth:`RoutingTable.adjacency`).
    strict:
        When true, raise :class:`~repro.errors.RoutingError` naming the
        first pair with no route (a partitioned or incomplete fabric);
        when false, silently omit unreachable pairs.
    """
    validate_plane(plane)
    if adj is None:
        from repro.routing.table import _adjacency

        adj = _adjacency(links)
    node_list = tuple(sorted(adj)) if nodes is None else tuple(nodes)
    weights = plane_weights(links, plane)
    out: dict[tuple[int, int], tuple[int, ...]] = {}
    with _obs.span("routing.batch", plane=plane, nodes=len(node_list)):
        for src in node_list:
            if src not in adj:
                others = [d for d in node_list if d != src]
                if strict and others:
                    raise RoutingError(
                        f"no route from node {src} to node {others[0]}: "
                        f"node {src} has no fabric links"
                    )
                out[(src, src)] = (src,)
                continue
            routes = routes_from_source(adj, weights, src)
            _obs.count("routing.batch.bfs")
            for dst in node_list:
                hops = routes.get(dst)
                if hops is None:
                    if strict:
                        raise RoutingError(
                            f"no route from node {src} to node {dst}"
                        )
                    continue
                out[(src, dst)] = hops
    return out
