"""Property-based tests for the page allocator.

Invariant: free-memory conservation under arbitrary interleavings of
allocate/release, no node ever below zero, allocations page-aligned.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.memory.allocator import PAGE_BYTES, PageAllocator
from repro.memory.policy import MemBinding
from repro.topology.builders import reference_host
from repro.units import MiB

_HOST = reference_host(with_devices=False)


@st.composite
def operations(draw):
    ops = []
    n = draw(st.integers(min_value=1, max_value=20))
    for _ in range(n):
        kind = draw(st.sampled_from(["local", "bind", "interleave", "release"]))
        node = draw(st.sampled_from(_HOST.node_ids))
        size = draw(st.integers(min_value=1, max_value=256 * MiB))
        ops.append((kind, node, size))
    return ops


@given(operations())
@settings(max_examples=100, deadline=None)
def test_conservation_and_bounds(ops):
    allocator = PageAllocator(_HOST)
    initial = {n: allocator.free_bytes(n) for n in _HOST.node_ids}
    live = []
    for kind, node, size in ops:
        try:
            if kind == "local":
                live.append(allocator.allocate(size, cpu_node=node))
            elif kind == "bind":
                live.append(
                    allocator.allocate(size, cpu_node=node,
                                       binding=MemBinding.bind(node))
                )
            elif kind == "interleave":
                live.append(
                    allocator.allocate(
                        size, cpu_node=node,
                        binding=MemBinding.interleave(*_HOST.node_ids),
                    )
                )
            elif kind == "release" and live:
                allocator.release(live.pop())
        except AllocationError:
            pass  # legitimate exhaustion; invariants still checked below

        held = {n: 0 for n in _HOST.node_ids}
        for allocation in live:
            for n, b in allocation.bytes_by_node.items():
                held[n] += b
        for n in _HOST.node_ids:
            free = allocator.free_bytes(n)
            assert free >= 0
            assert free + held[n] == initial[n]

    for allocation in live:
        for b in allocation.bytes_by_node.values():
            assert b % PAGE_BYTES == 0


@given(st.integers(min_value=1, max_value=64 * MiB),
       st.sampled_from(_HOST.node_ids))
@settings(max_examples=100, deadline=None)
def test_allocation_covers_request(size, node):
    allocator = PageAllocator(_HOST)
    allocation = allocator.allocate(size, cpu_node=node)
    assert allocation.total_bytes >= size
    assert allocation.total_bytes < size + PAGE_BYTES
