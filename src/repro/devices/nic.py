"""Network interface card model (TCP onload + RDMA offload engines)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.dma import DmaEngine
from repro.devices.interrupts import IrqModel
from repro.devices.pcie import PcieLink
from repro.devices.response import EngineProfile
from repro.errors import DeviceError

__all__ = ["Nic"]


@dataclass(frozen=True)
class Nic:
    """A high-speed RoCE-capable Ethernet adapter.

    Parameters
    ----------
    name:
        Device name (e.g. ``"mlx-connectx3"``).
    node_id:
        NUMA node whose I/O hub the adapter hangs off.
    pcie:
        PCIe attachment (Gen 2 x8 on the reference host -> 32 Gbps).
    engines:
        Direction profiles keyed by engine name: ``tcp_send``,
        ``tcp_recv``, ``rdma_write``, ``rdma_read``, ``rdma_send``.
    irq:
        Interrupt placement (device-local per the paper's tuning).
    """

    name: str
    node_id: int
    pcie: PcieLink
    engines: dict[str, EngineProfile]
    irq: IrqModel = field(default=None)  # type: ignore[assignment]
    dma: DmaEngine = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.irq is None:
            object.__setattr__(self, "irq", IrqModel(irq_node=self.node_id))
        if self.dma is None:
            object.__setattr__(self, "dma", DmaEngine(max_gbps=self.pcie.data_gbps))
        if not self.engines:
            raise DeviceError(f"NIC {self.name!r} has no engine profiles")
        for engine_name, profile in self.engines.items():
            if profile.curve.cap_gbps > self.pcie.data_gbps + 1e-9:
                raise DeviceError(
                    f"NIC {self.name!r} engine {engine_name!r} caps at "
                    f"{profile.curve.cap_gbps} Gbps, above its PCIe limit "
                    f"{self.pcie.data_gbps} Gbps"
                )

    def engine(self, name: str) -> EngineProfile:
        """The profile for engine ``name``; raises on unknown engines."""
        try:
            return self.engines[name]
        except KeyError as exc:
            raise DeviceError(
                f"NIC {self.name!r} has no engine {name!r}; "
                f"available: {sorted(self.engines)}"
            ) from exc

    #: Direction of each engine relative to the device: ``write`` moves
    #: host memory -> device (Table IV), ``read`` moves device -> host
    #: memory (Table V).
    ENGINE_DIRECTION = {
        "tcp_send": "write",
        "tcp_recv": "read",
        "rdma_write": "write",
        "rdma_read": "read",
        "rdma_send": "write",
    }

    def __str__(self) -> str:
        return f"NIC {self.name} on node {self.node_id}, {self.pcie}"
