"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.rng
import repro.simtime.engine
import repro.simtime.process
import repro.units


@pytest.mark.parametrize(
    "module",
    [repro.units, repro.rng, repro.simtime.engine, repro.simtime.process],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    failures, tried = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tried > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
