"""In-process checkpointed execution: capture, journal, graft, resume.

The worker fabric already captures each task's telemetry in the worker
and grafts it back into the parent recorder deterministically
(:mod:`repro.fabric.telemetry`).  Journaled runs need the same
discipline for units that execute *in the parent process* (the chaos
scenarios): each unit's spans and counters are captured into a private
recorder while it runs, persisted in the journal record, and grafted —
whether fresh or replayed from the journal — in unit order.  That is
what makes a resumed run's ``--obs-dir`` manifest a deterministic twin
of an uninterrupted one: both see the exact same sequence of grafted
payloads.
"""

from __future__ import annotations

from repro.fabric import telemetry as _telemetry
from repro.obs import recorder as _obs

__all__ = ["unit_capture", "graft_unit", "journaled_chaos"]


class unit_capture:
    """Capture one in-process unit's telemetry like a fabric worker's.

    While the block runs, spans and counters land in a private recorder
    (the parent recorder is set aside and restored on exit).  The
    captured plain-data payload — or ``None`` when telemetry is off —
    is left in :attr:`payload` for journaling; pass it to
    :func:`graft_unit` to fold it back into the parent trace.
    """

    def __init__(self) -> None:
        self.payload: dict | None = None
        self._parent: "_obs.TraceRecorder | None" = None
        self._recorder: "_obs.TraceRecorder | None" = None
        self._baseline: "dict[str, int] | None" = None

    def __enter__(self) -> "unit_capture":
        self._parent = _obs.uninstall()
        if self._parent is not None:
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.stats import solver_totals

            self._baseline = solver_totals()
            self._recorder = _obs.TraceRecorder(MetricsRegistry())
            _obs.install(self._recorder)
        return self

    def __exit__(self, *exc) -> bool:
        self.payload = _telemetry.end_capture(self._recorder, self._baseline)
        if self._parent is not None:
            _obs.install(self._parent)
        return False


def graft_unit(payload: "dict | None", label: str, **tags) -> None:
    """Graft one captured unit payload into the live parent recorder."""
    if payload is not None and _obs.enabled():
        _telemetry.graft(_obs.get_recorder(), payload, label=label, **tags)


def _draw_delta(before: "dict[str, int]", after: "dict[str, int]") -> dict:
    return {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }


def journaled_chaos(machine, registry, scenarios: "tuple[str, ...]",
                    quick: bool, journal, retry=None):
    """``run_chaos`` with scenario-granular checkpoint/resume.

    Each scenario is one journal unit: its :class:`ScenarioResult`, the
    RNG draw-ledger delta it produced, and its captured telemetry.
    Journaled scenarios are replayed (draws absorbed, telemetry
    grafted) instead of re-run; the assembled report — and, under
    ``--obs-dir``, the manifest's counters — is bit-identical to an
    uninterrupted journaled run.  Scenario streams are name-keyed and
    restart per request, so skipping completed scenarios cannot perturb
    the ones that still have to run.
    """
    from repro.faults.chaos import ChaosReport, run_scenario

    results = []
    for index, name in enumerate(scenarios):
        key = ("scenario", name)
        record = journal.get(key)
        if record is not None:
            registry.absorb(record["draws"])
            graft_unit(record["telemetry"], "journal.scenario",
                       shard=index, scenario=name)
            results.append(record["result"])
            continue
        before = registry.draw_counts
        with unit_capture() as capture:
            result = run_scenario(
                name, machine=machine, registry=registry, quick=quick,
                retry=retry,
            )
        journal.append(
            key,
            result=result,
            draws=_draw_delta(before, registry.draw_counts),
            telemetry=capture.payload,
        )
        graft_unit(capture.payload, "journal.scenario",
                   shard=index, scenario=name)
        results.append(result)
    return ChaosReport(
        machine_name=machine.name, seed=registry.seed, results=tuple(results)
    )
