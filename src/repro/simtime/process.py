"""Generator-based cooperative processes on top of :class:`Simulator`.

A :class:`SimProcess` wraps a generator that ``yield``\\ s :class:`Timeout`
objects; the process resumes after the requested simulated delay.  This is
the simpy-style idiom, kept deliberately minimal: the flow network solves
bandwidth sharing analytically and only needs processes for sequenced
behaviours (benchmark warm-up phases, device interrupt loops, noise
injection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import SimulationError
from repro.simtime.engine import Simulator

__all__ = ["Timeout", "SimProcess"]


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process generator to sleep for ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay!r}")


class SimProcess:
    """Drive a generator as a simulated process.

    Parameters
    ----------
    sim:
        The simulator supplying the clock.
    generator:
        A generator yielding :class:`Timeout` instances.
    on_done:
        Optional callback invoked with the generator's return value when it
        finishes.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker():
    ...     log.append(sim.now)
    ...     yield Timeout(1.5)
    ...     log.append(sim.now)
    >>> _ = SimProcess(sim, worker())
    >>> sim.run()
    >>> log
    [0.0, 1.5]
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Timeout, None, object],
        on_done: Callable[[object], None] | None = None,
    ) -> None:
        self._sim = sim
        self._gen = generator
        self._on_done = on_done
        self.finished = False
        self.result: object = None
        sim.schedule(0.0, self._resume)

    def _resume(self) -> None:
        try:
            item = next(self._gen)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._on_done is not None:
                self._on_done(stop.value)
            return
        if not isinstance(item, Timeout):
            raise SimulationError(f"process yielded {item!r}; expected a Timeout")
        self._sim.schedule(item.delay, self._resume)
