#!/usr/bin/env python3
"""Full host characterisation: the paper's §IV pipeline end to end.

Produces, for the reference host:

* the ``numactl --hardware`` view (note node 0's missing ~2.5 GB — the
  OS lives there);
* the 8x8 STREAM bandwidth matrix (Fig. 3) and why it *cannot* be
  explained by hop distance (the §IV-A negative result);
* the memcpy write/read models of node 7 (Fig. 10);
* validation of those models against TCP/RDMA/SSD node sweeps
  (Tables IV/V), including the flagship RDMA_READ rank reversal.

Run:  python examples/characterize_host.py
"""

from repro import reference_host
from repro.analysis.topology_inference import infer_topology
from repro.bench import FioJob, FioRunner, StreamBenchmark
from repro.core import HostCharacterizer, ModelTable
from repro.core.validation import validate_model
from repro.osmodel import Numactl

def main() -> None:
    host = reference_host()

    print("=" * 72)
    print("1. What the OS tools show")
    print("=" * 72)
    print(Numactl(host).hardware())

    print()
    print("=" * 72)
    print("2. STREAM characterisation (and its failure as an I/O model)")
    print("=" * 72)
    stream = StreamBenchmark(host)
    matrix = stream.matrix()
    print(matrix.render())
    print()
    print(infer_topology(matrix).render())

    print()
    print("=" * 72)
    print("3. Algorithm 1: the memcpy I/O models of node 7")
    print("=" * 72)
    characterization = HostCharacterizer(host).characterize(7)
    print(characterization.render())

    print()
    print("=" * 72)
    print("4. Validation against real I/O (simulated fio)")
    print("=" * 72)
    runner = FioRunner(host)

    def sweep(engine: str, rw: str) -> dict[int, float]:
        job = FioJob(name=f"char-{engine}-{rw}", engine=engine, rw=rw, numjobs=4)
        return {
            node: runner.run(job.with_node(node)).aggregate_gbps
            for node in host.node_ids
        }

    read_ops = {
        "TCP receiver": sweep("tcp", "recv"),
        "RDMA_READ": sweep("rdma", "read"),
        "SSD read": sweep("libaio", "read"),
    }
    table = ModelTable.from_measurements(characterization.read_model, read_ops)
    print(table.render())
    print()
    for report in validate_model(characterization.read_model, read_ops).values():
        print(report.render())

    rdma = read_ops["RDMA_READ"]
    mean01 = (rdma[0] + rdma[1]) / 2
    mean23 = (rdma[2] + rdma[3]) / 2
    print(
        f"\nflagship reversal: STREAM ranks nodes {{0,1}} far above {{2,3}}, "
        f"but RDMA_READ measures {{0,1}} = {mean01:.1f} Gbps vs "
        f"{{2,3}} = {mean23:.1f} Gbps "
        f"({100 * (1 - mean01 / mean23):.1f} % lower — paper: 15-18.4 %)"
    )


if __name__ == "__main__":
    main()
