#!/usr/bin/env sh
# Telemetry smoke: record one experiment run with --obs-dir, validate
# the emitted manifest against the schema, prove the command's stdout is
# byte-identical with telemetry on and off (the determinism contract),
# and render the report both as text and as JSON.  Also records the same
# experiment a second time and asserts the manifest diff calls the two
# runs deterministic twins (identical counters and config).
set -eu

cd "$(dirname "$0")/.."

TMPDIR="${TMPDIR:-/tmp}"
WORK="$TMPDIR/obs_smoke.$$"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK"

EXP="${OBS_SMOKE_EXPERIMENT:-fig10}"

echo "== record: experiment $EXP with --obs-dir"
PYTHONPATH=src python -m repro.cli.main experiment "$EXP" --quick \
    --obs-dir "$WORK/run_a" > "$WORK/stdout_obs.txt"

echo "== determinism: same experiment without telemetry"
PYTHONPATH=src python -m repro.cli.main experiment "$EXP" --quick \
    > "$WORK/stdout_plain.txt"
if ! cmp -s "$WORK/stdout_obs.txt" "$WORK/stdout_plain.txt"; then
    echo "FAIL: enabling --obs-dir changed the experiment's stdout" >&2
    diff "$WORK/stdout_plain.txt" "$WORK/stdout_obs.txt" >&2 || true
    exit 1
fi
echo "stdout byte-identical with telemetry on and off"

echo "== validate: manifest schema + trace parse"
PYTHONPATH=src OBS_SMOKE_DIR="$WORK/run_a" python - <<'EOF'
import os

from repro.obs import load_manifest, load_trace

obs_dir = os.environ["OBS_SMOKE_DIR"]
manifest = load_manifest(os.path.join(obs_dir, "manifest.json"))  # validates
events = load_trace(obs_dir)
assert manifest["spans"]["total"] == len(events), (
    manifest["spans"]["total"], len(events))
assert manifest["seed"]["streams"], "no RNG stream draws recorded"
assert manifest["metrics"]["counters"], "no counters recorded"
print(f"manifest valid: {len(events)} spans, "
      f"{len(manifest['metrics']['counters'])} counters, "
      f"{len(manifest['seed']['streams'])} RNG streams")
EOF

echo "== report: text and JSON"
PYTHONPATH=src python -m repro.cli.main obs report "$WORK/run_a"
PYTHONPATH=src python -m repro.cli.main obs report "$WORK/run_a" --json \
    > "$WORK/report.json"

echo "== diff: a second recording must be a deterministic twin"
PYTHONPATH=src python -m repro.cli.main experiment "$EXP" --quick \
    --obs-dir "$WORK/run_b" > /dev/null
PYTHONPATH=src python -m repro.cli.main obs report "$WORK/run_a" "$WORK/run_b" \
    | tee "$WORK/diff.txt"
if ! grep -q "deterministic twins" "$WORK/diff.txt"; then
    echo "FAIL: repeated recording was not a deterministic twin" >&2
    exit 1
fi

echo "== scrape: deterministic session's exposition matches the golden copy"
# A scripted stdio session on the logical clock ends with a `metrics`
# request; its result payload is a pure function of the request stream,
# so the rendered scrape must be byte-identical to the committed golden.
TRACE='{"jsonrpc":"2.0","id":1,"method":"classify","params":{"target":7}}
{"jsonrpc":"2.0","id":2,"method":"advise","params":{"target":7,"tasks":4}}
{"jsonrpc":"2.0","id":3,"method":"classify","params":{"target":7,"mode":"read"}}
{"jsonrpc":"2.0","id":4,"method":"advise","params":{"target":99,"tasks":1}}
{"jsonrpc":"2.0","id":5,"method":"health"}
{"jsonrpc":"2.0","id":6,"method":"metrics"}'
printf '%s\n' "$TRACE" | PYTHONPATH=src python -m repro.cli.main --seed 7 \
    serve --stdio --runs 3 | tail -1 \
    | PYTHONPATH=src python -c \
        'import json,sys; print(json.dumps(json.loads(sys.stdin.read())["result"]))' \
    > "$WORK/metrics.json"
PYTHONPATH=src python -m repro.cli.main obs scrape \
    --from-json "$WORK/metrics.json" > "$WORK/scrape.txt"
if ! cmp -s "$WORK/scrape.txt" scripts/golden/obs_scrape.golden; then
    echo "FAIL: obs scrape output diverged from scripts/golden/obs_scrape.golden" >&2
    diff scripts/golden/obs_scrape.golden "$WORK/scrape.txt" >&2 || true
    exit 1
fi
echo "scrape exposition byte-identical to the golden copy"

echo
echo "obs smoke passed"
