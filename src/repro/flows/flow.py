"""Flow records for the max-min solver."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["Flow"]


@dataclass
class Flow:
    """A bulk transfer demanding bandwidth through a set of resources.

    Parameters
    ----------
    name:
        Unique identifier within one allocation problem.
    resources:
        Names of the capacitated resources this flow traverses (links,
        controllers, device ports, CPU budgets).  Order is irrelevant.
    demand_gbps:
        Per-flow rate ceiling (``inf`` for elastic flows).  Use this for
        per-stream caps such as a TCP stack's per-connection limit or a
        DMA engine's per-context service share.
    size_bytes:
        Remaining bytes for time-domain simulation (``None`` for pure
        rate allocation).
    weight:
        Max-min weight (2.0 receives twice the fair share of 1.0).
    """

    name: str
    resources: tuple[str, ...]
    demand_gbps: float = float("inf")
    size_bytes: float | None = None
    weight: float = 1.0
    start_s: float = 0.0
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.demand_gbps <= 0:
            raise SimulationError(f"flow {self.name!r}: demand must be positive")
        if self.weight <= 0:
            raise SimulationError(f"flow {self.name!r}: weight must be positive")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise SimulationError(f"flow {self.name!r}: size must be positive")
        if len(set(self.resources)) != len(self.resources):
            raise SimulationError(f"flow {self.name!r} lists a resource twice")
