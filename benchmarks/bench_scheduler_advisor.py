"""S1 — scheduler application: spread vs all-local placement."""


def test_scheduler_advisor(run_paper_experiment):
    result = run_paper_experiment("s1")
    assert result.data["gain"] > 0.05
