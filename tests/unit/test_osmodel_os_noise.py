"""OS noise daemons on the event engine."""

import pytest

from repro.errors import SimulationError
from repro.osmodel.noise import OsNoiseDaemons


@pytest.fixture()
def daemons(host, registry):
    return OsNoiseDaemons(host, registry.stream("osnoise"),
                          period_s=1.0, busy_s=0.02)


class TestSimulate:
    def test_every_node_gets_bursts(self, daemons, host):
        traces = daemons.simulate(window_s=30.0)
        assert set(traces) == set(host.node_ids)
        for node, intervals in traces.items():
            # ~1 burst per second, jittered.
            assert 20 <= len(intervals) <= 40, node

    def test_intervals_ordered_and_bounded(self, daemons):
        traces = daemons.simulate(window_s=10.0)
        for intervals in traces.values():
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert s1 < e1 <= s2
            assert all(0 <= s and e <= 10.0 for s, e in intervals)

    def test_burst_lengths_near_nominal(self, daemons):
        traces = daemons.simulate(window_s=30.0)
        lengths = [e - s for iv in traces.values() for s, e in iv]
        assert 0.01 - 1e-9 <= min(lengths)
        assert max(lengths) <= 0.03 + 1e-9


class TestAvailability:
    def test_availability_near_one(self, daemons):
        avail = daemons.availability(window_s=60.0)
        for node, a in avail.items():
            # 2 % of one core out of four: ~0.5 % steal.
            assert 0.99 < a < 1.0, node

    def test_heavier_noise_lowers_availability(self, host, registry):
        light = OsNoiseDaemons(host, registry.stream("l"), busy_s=0.01)
        heavy = OsNoiseDaemons(host, registry.stream("h"), busy_s=0.2)
        assert (sum(heavy.availability(30.0).values())
                < sum(light.availability(30.0).values()))

    def test_deterministic(self, host, registry):
        from repro.rng import RngRegistry

        a = OsNoiseDaemons(host, RngRegistry().stream("d")).availability(10.0)
        b = OsNoiseDaemons(host, RngRegistry().stream("d")).availability(10.0)
        assert a == b


class TestValidation:
    def test_bad_parameters(self, host, registry):
        rng = registry.stream("bad")
        with pytest.raises(SimulationError):
            OsNoiseDaemons(host, rng, period_s=0)
        with pytest.raises(SimulationError):
            OsNoiseDaemons(host, rng, period_s=1.0, busy_s=2.0)

    def test_bad_window(self, daemons):
        with pytest.raises(SimulationError):
            daemons.simulate(0)
