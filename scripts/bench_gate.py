#!/usr/bin/env python
"""Gate a fresh pytest-benchmark run against a committed baseline.

Usage::

    python scripts/bench_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]

Benchmarks are matched by name.  A benchmark whose current mean exceeds
the baseline mean by more than ``tolerance`` (relative) is a regression
and fails the gate (exit 1).  Improvements and new benchmarks pass;
benchmarks present only in the baseline are reported as missing but do
not fail (suites grow and shrink deliberately, via commits).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"] for bench in data["benchmarks"]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json snapshot")
    parser.add_argument("current", help="freshly recorded benchmark JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative mean increase before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)

    regressions = []
    print(f"benchmark gate: {args.current} vs {args.baseline} "
          f"(tolerance +{args.tolerance:.0%})")
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  {name:50s} MISSING from current run")
            continue
        if name not in baseline:
            print(f"  {name:50s} NEW {current[name] * 1e3:8.2f} ms")
            continue
        old, new = baseline[name], current[name]
        delta = (new - old) / old
        status = "FAIL" if delta > args.tolerance else "ok"
        print(f"  {name:50s} {old * 1e3:8.2f} -> {new * 1e3:8.2f} ms "
              f"({delta:+7.1%}) {status}")
        if delta > args.tolerance:
            regressions.append((name, delta))

    if regressions:
        names = ", ".join(f"{n} ({d:+.0%})" for n, d in regressions)
        print(f"FAIL: benchmark regression beyond tolerance: {names}")
        return 1
    print("OK: no benchmark regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
