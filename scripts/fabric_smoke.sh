#!/usr/bin/env sh
# Worker-fabric smoke: the determinism and hygiene contracts, end to end.
#
# Gates, in order:
#   1. `iomodel --targets ... --jobs N` stdout is byte-identical to the
#      serial run (the sharded-sweep contract).
#   2. `experiment all --quick --jobs 2` writes byte-identical artifacts
#      to the serial run, and the jobs run survives a SIGKILLed worker
#      with every experiment still reported exactly once.
#   3. With --obs-dir, the sharded run's manifest carries the same RNG
#      draw ledger as the serial run (worker telemetry grafting).
#   4. No arena segment is leaked in /dev/shm after: a normal run, a
#      session-LRU eviction storm, a worker SIGKILL, and a
#      `serve --stdio --solver-pool` drain.
#   5. BENCH_fabric.json is re-recorded and gated against the committed
#      baseline (tolerance +50% — process fork times are noisy).
set -eu

cd "$(dirname "$0")/.."

TMPDIR="${TMPDIR:-/tmp}"
WORK="$TMPDIR/fabric_smoke.$$"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK"

TOLERANCE="${BENCH_TOLERANCE:-0.50}"

leak_check() {
    leaked="$(ls /dev/shm 2>/dev/null | grep '^repro_fab_' || true)"
    if [ -n "$leaked" ]; then
        echo "FAIL: leaked arena segments after $1: $leaked" >&2
        exit 1
    fi
    echo "no leaked /dev/shm segments after $1"
}

echo "== 1. sharded iomodel sweep: stdout byte-identity"
PYTHONPATH=src python -m repro.cli.main iomodel --targets all --mode both \
    --runs 10 > "$WORK/io_serial.txt"
PYTHONPATH=src python -m repro.cli.main iomodel --targets all --mode both \
    --runs 10 --jobs 3 > "$WORK/io_jobs.txt"
if ! cmp -s "$WORK/io_serial.txt" "$WORK/io_jobs.txt"; then
    echo "FAIL: --jobs 3 changed the iomodel sweep's stdout" >&2
    diff "$WORK/io_serial.txt" "$WORK/io_jobs.txt" >&2 || true
    exit 1
fi
echo "iomodel sweep byte-identical at --jobs 3"
leak_check "the iomodel sweep"

echo "== 2. experiment artifacts: serial vs --jobs 2"
PYTHONPATH=src python -m repro.cli.main experiment all --quick \
    --outdir "$WORK/exp_serial" > /dev/null
PYTHONPATH=src python -m repro.cli.main experiment all --quick --jobs 2 \
    --outdir "$WORK/exp_jobs" > "$WORK/exp_jobs_stdout.txt"
if ! diff -r "$WORK/exp_serial" "$WORK/exp_jobs" > /dev/null; then
    echo "FAIL: --jobs 2 changed the experiment artifacts" >&2
    diff -r "$WORK/exp_serial" "$WORK/exp_jobs" >&2 || true
    exit 1
fi
if grep -q "CRASH" "$WORK/exp_jobs_stdout.txt"; then
    echo "FAIL: healthy jobs run reported a crash" >&2
    exit 1
fi
echo "experiment artifacts byte-identical at --jobs 2"
leak_check "the experiment batch"

echo "== 2b. chaos: SIGKILLed experiment worker degrades, never hangs"
if PYTHONPATH=src REPRO_CHAOS_KILL_EXPERIMENT=t1 timeout 120 \
    python -m repro.cli.main experiment all --quick --jobs 2 \
    > "$WORK/exp_crash.txt" 2>&1; then
    echo "FAIL: a killed worker should produce a nonzero exit" >&2
    exit 1
fi
grep -q 'status="crashed"' "$WORK/exp_crash.txt"
count="$(grep -c '^t1 ' "$WORK/exp_crash.txt" || true)"
if [ "$count" != "1" ]; then
    echo "FAIL: crashed experiment t1 reported $count times" >&2
    exit 1
fi
echo "worker SIGKILL degraded to a structured crash row"
leak_check "the worker crash"

echo "== 3. telemetry grafting: manifest draw ledgers match"
PYTHONPATH=src python -m repro.cli.main iomodel --targets 0,3,7 \
    --mode write --runs 10 --obs-dir "$WORK/obs_serial" > /dev/null
PYTHONPATH=src python -m repro.cli.main iomodel --targets 0,3,7 \
    --mode write --runs 10 --jobs 3 --obs-dir "$WORK/obs_jobs" > /dev/null
PYTHONPATH=src FABRIC_SMOKE_WORK="$WORK" python - <<'EOF'
import json
import os

work = os.environ["FABRIC_SMOKE_WORK"]
manifests = {}
for tag in ("obs_serial", "obs_jobs"):
    with open(os.path.join(work, tag, "manifest.json"), encoding="utf-8") as fh:
        manifests[tag] = json.load(fh)
serial = manifests["obs_serial"]["seed"]["streams"]
jobs = manifests["obs_jobs"]["seed"]["streams"]
assert serial, "serial manifest recorded no RNG streams"
assert serial == jobs, "worker draws were lost or double-counted"
with open(os.path.join(work, "obs_jobs", "trace.jsonl"), encoding="utf-8") as fh:
    names = [json.loads(line)["name"] for line in fh]
assert names.count("fabric.build_many") == 3, names
print(f"draw ledgers identical ({len(serial)} streams); "
      f"worker spans grafted into the parent trace")
EOF
leak_check "the telemetry runs"

echo "== 4. session eviction + serve drain release their arenas"
PYTHONPATH=src python - <<'EOF'
from repro.fabric import get_arena, live_segments
from repro.solver import session as session_mod
from repro.solver.session import get_session, reset_sessions
from repro.topology.builders import scaled_host

machine = scaled_host(3, seed=5)
arena = get_arena(machine)
session = get_session(machine)
session.attach_arena(arena)
arena.release()
for seed in range(session_mod._MAX_SESSIONS + 1):
    get_session(scaled_host(2, seed=seed))
assert arena.closed, "LRU eviction left the arena attached"
assert live_segments() == [], live_segments()
reset_sessions()
print("session-LRU eviction released its arena")
EOF
leak_check "the eviction storm"

printf '%s\n' \
  '{"jsonrpc":"2.0","id":1,"method":"classify","params":{"target":7,"mode":"write"}}' \
  '{"jsonrpc":"2.0","id":2,"method":"health","params":{}}' \
  | PYTHONPATH=src python -m repro.cli.main serve --stdio --solver-pool 2 \
      --runs 10 > "$WORK/serve_pool.txt" 2>/dev/null
PYTHONPATH=src FABRIC_SMOKE_WORK="$WORK" python - <<'EOF'
import json
import os

with open(os.path.join(os.environ["FABRIC_SMOKE_WORK"], "serve_pool.txt"),
          encoding="utf-8") as fh:
    replies = [json.loads(line) for line in fh if line.strip()]
health = next(r for r in replies if r.get("id") == 2)
stats = health["result"]["solver_pool"]
assert stats["completed"] >= 2, stats
print(f"solver-pool tier served {stats['completed']} builds "
      f"({stats['jobs']} workers)")
EOF
leak_check "the serve --solver-pool drain"

echo "== 5. record + gate BENCH_fabric.json"
PYTHONPATH=src python scripts/bench_fabric.py "$WORK/fabric.json"
if [ -f BENCH_fabric.json ]; then
    PYTHONPATH=src python scripts/bench_gate.py BENCH_fabric.json \
        "$WORK/fabric.json" --tolerance "$TOLERANCE"
else
    echo "no committed BENCH_fabric.json baseline; recording a first snapshot"
fi
cp "$WORK/fabric.json" BENCH_fabric.json
leak_check "the fabric benchmarks"

echo "fabric smoke passed"
