"""Time-domain flow simulation.

Long benchmarks (fio's 400-GB-per-stream transfers) are simulated by
recomputing the max-min allocation at every *rate-change event* — a flow
arriving or completing — and integrating bytes between events.  With
identical, simultaneous streams the allocation is constant and the loop
converges in one step; with staggered or mixed workloads the piecewise-
constant rate profile is captured exactly.  Allocations go through an
:class:`~repro.solver.incremental.AllocationCache`, so the loop only
solves cold when the active-flow *multiset* is one it has not seen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SimulationError
from repro.flows.flow import Flow
from repro.solver.incremental import AllocationCache
from repro.units import gbps, gbps_to_bytes_per_s

__all__ = ["FlowOutcome", "FlowNetwork"]

_TIME_EPS = 1e-15


@dataclass(frozen=True)
class FlowOutcome:
    """Result of one flow's transfer."""

    name: str
    bytes_moved: float
    start_s: float
    finish_s: float

    @property
    def duration_s(self) -> float:
        """Transfer duration in seconds."""
        return self.finish_s - self.start_s

    @property
    def avg_gbps(self) -> float:
        """Average bandwidth over the flow's lifetime."""
        return gbps(self.bytes_moved, self.duration_s)


class FlowNetwork:
    """A set of capacitated resources shared by finite flows.

    Parameters
    ----------
    capacities:
        Resource name -> capacity in Gbps.
    allocator:
        Optional shared :class:`~repro.solver.incremental.AllocationCache`
        (a :class:`~repro.solver.session.SolverSession` passes its own so
        every network it hands out shares one memo).  By default each
        network owns a private cache, which already collapses the
        repeated solves of a ``simulate`` event loop.
    stats:
        Optional :class:`~repro.solver.stats.SolverStats` that simulation
        events are counted into.
    """

    def __init__(
        self,
        capacities: dict[str, float],
        allocator: AllocationCache | None = None,
        stats=None,
    ) -> None:
        self.capacities = dict(capacities)
        self._allocator = allocator if allocator is not None else AllocationCache()
        self._stats = stats

    def rates(self, flows: Iterable[Flow]) -> dict[str, float]:
        """Instantaneous max-min rates for a set of concurrent flows."""
        return self._allocator.rates(flows, self.capacities)

    def simulate(self, flows: Iterable[Flow]) -> dict[str, FlowOutcome]:
        """Run finite flows to completion; returns per-flow outcomes.

        Every flow must carry ``size_bytes``.  Arrival times come from
        ``flow.start_s``.
        """
        pending = sorted(flows, key=lambda f: (f.start_s, f.name))
        for f in pending:
            if f.size_bytes is None:
                raise SimulationError(f"flow {f.name!r} has no size; use rates() instead")
        remaining = {f.name: float(f.size_bytes) for f in pending}  # type: ignore[arg-type]
        outcomes: dict[str, FlowOutcome] = {}
        active: dict[str, Flow] = {}
        now = 0.0
        if pending:
            now = pending[0].start_s

        guard = 0
        while pending or active:
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - safety valve
                raise SimulationError("flow simulation failed to converge")
            if self._stats is not None:
                self._stats.events += 1
            while pending and pending[0].start_s <= now + _TIME_EPS:
                f = pending.pop(0)
                active[f.name] = f
            if not active:
                now = pending[0].start_s
                continue

            current = self._allocator.rates(active.values(), self.capacities)
            # Horizon: next arrival or earliest completion at current rates.
            horizon = pending[0].start_s - now if pending else math.inf
            for name, f in active.items():
                rate_bps = gbps_to_bytes_per_s(current[name])
                if rate_bps <= 0:
                    raise SimulationError(
                        f"flow {name!r} starved (rate 0); resource set "
                        f"{f.resources} cannot progress"
                    )
                horizon = min(horizon, remaining[name] / rate_bps)
            if horizon is math.inf or horizon < 0:
                raise SimulationError("no progress horizon in flow simulation")

            for name in list(active):
                moved = gbps_to_bytes_per_s(current[name]) * horizon
                remaining[name] -= moved
            now += horizon
            for name in list(active):
                if remaining[name] <= max(1.0, 1e-9 * active[name].size_bytes):  # type: ignore[operator]
                    f = active.pop(name)
                    outcomes[name] = FlowOutcome(
                        name=name,
                        bytes_moved=float(f.size_bytes),  # type: ignore[arg-type]
                        start_s=f.start_s,
                        finish_s=now,
                    )
        return outcomes

    def aggregate_gbps(self, outcomes: dict[str, FlowOutcome]) -> float:
        """Aggregate average bandwidth: total bytes over the busy interval.

        This matches how the paper reports multi-stream results ("the
        average aggregate performance" over the whole transfer).
        """
        if not outcomes:
            raise SimulationError("no outcomes to aggregate")
        total = sum(o.bytes_moved for o in outcomes.values())
        start = min(o.start_s for o in outcomes.values())
        finish = max(o.finish_s for o in outcomes.values())
        return gbps(total, finish - start)
