"""Run log persistence and regression detection."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.bench.runlog import RunLog, RunRecord
from repro.errors import BenchmarkError
from repro.rng import RngRegistry


@pytest.fixture()
def log(tmp_path):
    return RunLog(tmp_path / "runs.jsonl")


class TestRecording:
    def test_record_and_load(self, log):
        log.record("rdma:write/n5", 23.2, machine="hp-dl585-g7", seed=1)
        log.record("rdma:write/n2", 17.1, machine="hp-dl585-g7", seed=1)
        records = log.load()
        assert len(records) == 2
        assert records[0].key == "rdma:write/n5"
        assert records[1].gbps == 17.1

    def test_latest_wins_per_key(self, log):
        log.record("k", 10.0, machine="m", seed=1)
        log.record("k", 12.0, machine="m", seed=2)
        assert log.latest()["k"].gbps == 12.0

    def test_empty_log(self, log):
        assert log.load() == []
        assert log.latest() == {}

    def test_record_job(self, log, host):
        runner = FioRunner(host, RngRegistry())
        result = runner.run(
            FioJob(name="rl", engine="rdma", rw="write", numjobs=2, cpunodebind=5)
        )
        record = log.record_job(result, machine=host.name, seed=0)
        assert "rdma:write" in record.key
        assert "numjobs2" in record.key
        assert log.latest()[record.key].gbps == result.aggregate_gbps

    def test_bad_bandwidth_rejected(self, log):
        with pytest.raises(BenchmarkError):
            log.record("k", 0.0, machine="m", seed=1)

    def test_malformed_line_rejected(self, log):
        log.path.write_text('{"nonsense": true}\n', encoding="utf-8")
        with pytest.raises(BenchmarkError):
            log.load()

    def test_roundtrip_json(self):
        record = RunRecord(key="k", gbps=21.3, machine="m", seed=7,
                           tags={"note": "x"})
        assert RunRecord.from_json(record.to_json()) == record


class TestCompare:
    def test_no_drift_within_tolerance(self, tmp_path):
        old = RunLog(tmp_path / "old.jsonl")
        new = RunLog(tmp_path / "new.jsonl")
        old.record("k", 20.0, machine="m", seed=1)
        new.record("k", 20.5, machine="m", seed=2)
        assert old.compare(new, tolerance=0.05) == []

    def test_drift_detected_and_sorted(self, tmp_path):
        old = RunLog(tmp_path / "old.jsonl")
        new = RunLog(tmp_path / "new.jsonl")
        old.record("small", 20.0, machine="m", seed=1)
        old.record("big", 20.0, machine="m", seed=1)
        new.record("small", 18.0, machine="m", seed=2)   # -10 %
        new.record("big", 10.0, machine="m", seed=2)     # -50 %
        drifts = old.compare(new, tolerance=0.05)
        assert [d.key for d in drifts] == ["big", "small"]
        assert drifts[0].relative_change == pytest.approx(-0.5)
        assert "regressed" in drifts[0].render()

    def test_new_keys_ignored(self, tmp_path):
        old = RunLog(tmp_path / "old.jsonl")
        new = RunLog(tmp_path / "new.jsonl")
        old.record("gone", 20.0, machine="m", seed=1)
        new.record("fresh", 20.0, machine="m", seed=2)
        assert old.compare(new) == []

    def test_compare_accepts_records(self, tmp_path):
        old = RunLog(tmp_path / "old.jsonl")
        old.record("k", 20.0, machine="m", seed=1)
        drifts = old.compare(
            [RunRecord(key="k", gbps=30.0, machine="m", seed=2)]
        )
        assert len(drifts) == 1
        assert "improved" in drifts[0].render()

    def test_bad_tolerance(self, tmp_path):
        log = RunLog(tmp_path / "x.jsonl")
        with pytest.raises(BenchmarkError):
            log.compare(log, tolerance=0.0)

    def test_determinism_guard_end_to_end(self, tmp_path, host):
        """The library's own determinism, checked the way a CI would."""
        baseline = RunLog(tmp_path / "baseline.jsonl")
        rerun = RunLog(tmp_path / "rerun.jsonl")
        job = FioJob(name="ci", engine="tcp", rw="send", numjobs=4,
                     cpunodebind=6)
        for log in (baseline, rerun):
            runner = FioRunner(host, RngRegistry())
            log.record_job(runner.run(job), machine=host.name, seed=0)
        assert baseline.compare(rerun, tolerance=0.001) == []
