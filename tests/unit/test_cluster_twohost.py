"""Two-host transfer composition."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.cluster.link import EthernetLink
from repro.cluster.twohost import NetJob, TwoHostSystem
from repro.errors import BenchmarkError, DeviceError
from repro.rng import RngRegistry
from repro.topology.builders import reference_host


@pytest.fixture(scope="module")
def system():
    return TwoHostSystem(reference_host(), reference_host(),
                         registry=RngRegistry())


class TestEthernetLink:
    def test_defaults_match_testbed(self):
        link = EthernetLink()
        assert link.raw_gbps == 40.0
        assert link.rtt_s == pytest.approx(5e-6)

    def test_payload_below_raw(self):
        link = EthernetLink()
        assert 0.99 * link.raw_gbps < link.payload_gbps < link.raw_gbps

    def test_small_frames_cost_more(self):
        jumbo = EthernetLink(frame_bytes=9000)
        standard = EthernetLink(frame_bytes=1500)
        assert standard.payload_gbps < jumbo.payload_gbps

    def test_validation(self):
        with pytest.raises(DeviceError):
            EthernetLink(raw_gbps=0)
        with pytest.raises(DeviceError):
            EthernetLink(frame_bytes=64)


class TestNetJob:
    def test_validation(self):
        with pytest.raises(BenchmarkError):
            NetJob(name="j", engine="smtp")
        with pytest.raises(BenchmarkError):
            NetJob(name="j", numjobs=0)


class TestComposition:
    def test_sender_sweep_matches_one_host_engine(self, system):
        """With the far end well tuned, the two-host sender sweep must
        reproduce the single-host calibrated tcp_send values."""
        runner = FioRunner(system.sender, RngRegistry())
        for node in (2, 5):
            two = system.run(
                NetJob(name=f"cmp{node}", engine="tcp", numjobs=4,
                       sender_node=node)
            ).aggregate_gbps
            one = runner.run(
                FioJob(name=f"cmp{node}", engine="tcp", rw="send",
                       numjobs=4, cpunodebind=node)
            ).aggregate_gbps
            assert two == pytest.approx(one, rel=0.05)

    def test_receiver_node4_collapses(self, system):
        sweep = system.sweep_receiver(NetJob(name="rs", engine="tcp", numjobs=4))
        values = {n: r.aggregate_gbps for n, r in sweep.items()}
        assert values[4] < 0.75 * min(v for n, v in values.items() if n != 4)

    def test_rdma_receiver_sweep_matches_table5(self, system):
        sweep = system.sweep_receiver(NetJob(name="rr", engine="rdma", numjobs=4))
        values = {n: r.aggregate_gbps for n, r in sweep.items()}
        assert values[2] == pytest.approx(22.0, rel=0.05)
        assert values[0] == pytest.approx(18.3, rel=0.05)
        assert values[4] == pytest.approx(16.1, rel=0.05)

    def test_both_ends_bad_is_min(self, system):
        bad_send = system.run(
            NetJob(name="bs", engine="tcp", numjobs=4, sender_node=2)
        ).aggregate_gbps
        bad_recv = system.run(
            NetJob(name="br", engine="tcp", numjobs=4, receiver_node=4)
        ).aggregate_gbps
        both = system.run(
            NetJob(name="bb", engine="tcp", numjobs=4,
                   sender_node=2, receiver_node=4)
        ).aggregate_gbps
        assert both <= min(bad_send, bad_recv) * 1.05

    def test_wire_caps_everything(self):
        slow = TwoHostSystem(
            reference_host(), reference_host(),
            link=EthernetLink(raw_gbps=10.0), registry=RngRegistry(),
        )
        result = slow.run(NetJob(name="w", engine="rdma", numjobs=4))
        assert result.aggregate_gbps <= 10.0

    def test_well_tuned_defaults(self, system):
        result = system.run(NetJob(name="d", engine="tcp", numjobs=4))
        assert result.tags["sender_node"] in (6, 7, 0, 1, 4, 5)
        assert result.aggregate_gbps > 19.0

    def test_nic_required(self):
        bare = reference_host(with_devices=False)
        with pytest.raises(BenchmarkError):
            TwoHostSystem(bare, reference_host())

    def test_unknown_node_rejected(self, system):
        with pytest.raises(BenchmarkError):
            system.run(NetJob(name="x", engine="tcp", sender_node=42))

    def test_deterministic(self):
        job = NetJob(name="det", engine="tcp", numjobs=4, sender_node=5)
        a = TwoHostSystem(reference_host(), reference_host(),
                          registry=RngRegistry(4)).run(job).aggregate_gbps
        b = TwoHostSystem(reference_host(), reference_host(),
                          registry=RngRegistry(4)).run(job).aggregate_gbps
        assert a == b
