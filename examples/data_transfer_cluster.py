#!/usr/bin/env python3
"""A data-transfer cluster: four NUMA hosts behind one switch.

The paper's single host becomes a building block.  Four reference hosts
share a 40 GbE switch; we run three shuffle patterns and watch where
the bottleneck lives:

* **pairwise** — two disjoint transfers: both run at the RDMA cap;
* **fan-in** — three hosts push into one: the receiver's NIC is the
  bottleneck and the switch shares it fairly;
* **naive NUMA** — same fan-in, but every sender pinned to its node 2:
  now the *senders'* fabrics are the bottleneck, and fixing a single
  host's placement buys cluster-wide throughput.

Run:  python examples/data_transfer_cluster.py
"""

from repro import reference_host
from repro.cluster import SwitchedCluster, Transfer

def show(title: str, outcomes) -> None:
    """Print one pattern's results."""
    print(title)
    total = 0.0
    for outcome in outcomes.values():
        total += outcome.aggregate_gbps
        src_host, src_node = outcome.src_placement
        dst_host, dst_node = outcome.dst_placement
        print(
            f"  {outcome.name}: {src_host}:n{src_node} -> "
            f"{dst_host}:n{dst_node}  {outcome.aggregate_gbps:5.1f} Gbps"
        )
    print(f"  total: {total:.1f} Gbps\n")

def main() -> None:
    hosts = {f"dtn{i}": reference_host() for i in range(4)}
    cluster = SwitchedCluster(hosts)
    print(f"4 hosts behind a switch ({cluster.uplink}, "
          f"backplane {cluster.backplane_gbps:.0f} Gbps)\n")

    show("pairwise (disjoint, well tuned):", cluster.run([
        Transfer(name="a->b", src_host="dtn0", dst_host="dtn1"),
        Transfer(name="c->d", src_host="dtn2", dst_host="dtn3"),
    ]))

    show("fan-in (3 -> 1, well tuned):", cluster.run([
        Transfer(name=f"in{i}", src_host=f"dtn{i}", dst_host="dtn3")
        for i in range(3)
    ]))

    show("pairwise with naive sender placement (node 2 everywhere):",
         cluster.run([
             Transfer(name="a->b", src_host="dtn0", dst_host="dtn1",
                      src_node=2),
             Transfer(name="c->d", src_host="dtn2", dst_host="dtn3",
                      src_node=2),
         ]))

    print(
        "reading: a cluster inherits every host's NUMA pathology — one "
        "mis-pinned sender throttles its whole transfer, and the class "
        "model that fixes a host fixes the cluster."
    )


if __name__ == "__main__":
    main()
