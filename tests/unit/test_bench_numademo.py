"""The numademo module/policy grid."""

import pytest

from repro.bench.numademo import NUMADEMO_MODULES, NUMADEMO_POLICIES, Numademo
from repro.errors import BenchmarkError


@pytest.fixture()
def demo(host, registry):
    return Numademo(host, registry=registry)


class TestPolicies:
    def test_local_binding(self, demo):
        binding = demo.binding_for("local", 3)
        assert binding.nodes == (3,)

    def test_remote_is_hop_farthest(self, demo):
        # From node 7 the farthest node is 2 hops away.
        binding = demo.binding_for("remote", 7)
        assert binding.nodes[0] in (1, 3, 5)

    def test_interleave_spans_all_nodes(self, demo, host):
        binding = demo.binding_for("interleave", 0)
        assert set(binding.nodes) == set(host.node_ids)

    def test_unknown_policy_rejected(self, demo):
        with pytest.raises(BenchmarkError):
            demo.binding_for("weird", 0)


class TestModules:
    def test_seven_modules(self):
        assert len(NUMADEMO_MODULES) == 7
        assert "memset" in NUMADEMO_MODULES
        assert "memcpy" in NUMADEMO_MODULES

    def test_local_beats_remote_everywhere(self, demo):
        for module in NUMADEMO_MODULES:
            local = demo.run_module(module, "local", 6)
            remote = demo.run_module(module, "remote", 6)
            assert local > remote, module

    def test_interleave_between_local_and_remote(self, demo):
        for module in ("memcpy", "stream-copy"):
            local = demo.run_module(module, "local", 6)
            remote = demo.run_module(module, "remote", 6)
            inter = demo.run_module(module, "interleave", 6)
            assert remote * 0.9 < inter < local, module

    def test_memset_beats_memcpy(self, demo):
        assert (demo.run_module("memset", "local", 5)
                > demo.run_module("memcpy", "local", 5))

    def test_ptrchase_far_below_streams(self, demo):
        assert (demo.run_module("ptrchase", "local", 5)
                < demo.run_module("stream-copy", "local", 5))

    def test_unknown_module_rejected(self, demo):
        with pytest.raises(BenchmarkError):
            demo.run_module("fma", "local", 0)

    def test_unknown_node_rejected(self, demo):
        with pytest.raises(BenchmarkError):
            demo.run_module("memcpy", "local", 42)


class TestGridAndRender:
    def test_run_all_shape(self, demo):
        grid = demo.run_all(0)
        assert set(grid) == set(NUMADEMO_MODULES)
        for module in grid:
            assert set(grid[module]) == set(NUMADEMO_POLICIES)

    def test_render(self, demo):
        text = demo.render(0)
        for module in NUMADEMO_MODULES:
            assert module in text
        for policy in NUMADEMO_POLICIES:
            assert policy in text

    def test_iomodel_module_delegates(self, demo):
        model = demo.iomodel(7, "write")
        assert [sorted(c.node_ids) for c in model.classes] == [
            [6, 7], [0, 1, 4, 5], [2, 3]
        ]

    def test_deterministic(self, host, registry):
        from repro.rng import RngRegistry

        a = Numademo(host, registry=RngRegistry()).run_module("memcpy", "local", 3)
        b = Numademo(host, registry=RngRegistry()).run_module("memcpy", "local", 3)
        assert a == b
