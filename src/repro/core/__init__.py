"""The paper's contribution: NUMA I/O performance modelling.

* :class:`~repro.core.iomodel.IOModelBuilder` — Algorithm 1: characterise
  a device-attached node with memcpy only, no device involved.
* :mod:`~repro.core.classify` — group nodes into performance classes
  (local+neighbour are always class 1, per §V-A).
* :class:`~repro.core.model.IOPerformanceModel` /
  :class:`~repro.core.model.ModelTable` — the Tables IV/V structures.
* :class:`~repro.core.predictor.MixturePredictor` — Eq. 1 multi-user
  aggregate prediction.
* :class:`~repro.core.scheduler_advisor.PlacementAdvisor` — spread I/O
  tasks across equivalent classes (§V-B).
* :class:`~repro.core.characterize.HostCharacterizer` — whole-host
  characterisation with probe-cost accounting.
* :mod:`~repro.core.validation` — model-vs-measurement agreement metrics.
"""

from repro.core.classify import PerfClass, classify_kmeans, classify_nodes
from repro.core.characterize import HostCharacterization, HostCharacterizer
from repro.core.iomodel import IOModelBuilder
from repro.core.migration import (
    OnlineSimulator,
    OnlineWorkload,
    PolicyOutcome,
    StreamJob,
)
from repro.core.model import IOPerformanceModel, ModelTable, OperationRow
from repro.core.predictor import MixturePredictor, PredictionReport
from repro.core.scheduler_advisor import PlacementAdvisor, PlacementPlan

__all__ = [
    "PerfClass",
    "classify_nodes",
    "classify_kmeans",
    "IOModelBuilder",
    "IOPerformanceModel",
    "ModelTable",
    "OperationRow",
    "MixturePredictor",
    "PredictionReport",
    "PlacementAdvisor",
    "PlacementPlan",
    "HostCharacterizer",
    "HostCharacterization",
    "OnlineSimulator",
    "OnlineWorkload",
    "PolicyOutcome",
    "StreamJob",
]
