"""Report rendering."""

from repro.analysis.numa_factor import Table1Row
from repro.analysis.report import (
    render_node_sweep,
    render_series,
    render_table1,
    render_table2,
    render_table3,
)


class TestTable1:
    def test_rows_rendered(self):
        rows = [Table1Row(label="Test box", measured=2.66, paper=2.7)]
        text = render_table1(rows)
        assert "Test box" in text
        assert "2.66" in text
        assert "2.7" in text


class TestTable2:
    def test_reference_host(self, host):
        text = render_table2(host)
        assert "32/8" in text
        assert "PCIe Gen2 x8" in text
        assert "5 MB per die" in text


class TestTable3:
    def test_parameters(self):
        text = render_table3()
        assert "400 GB" in text
        assert "cubic" in text
        assert "128 KiB" in text
        assert "9000" in text


class TestSeries:
    def test_series_layout(self):
        series = {5: {1: 7.0, 4: 20.4}, 7: {1: 6.9, 4: 19.6}}
        text = render_series("TCP send", series)
        assert "streams=1" in text
        assert "streams=4" in text
        assert "20.40" in text

    def test_missing_points_dashed(self):
        series = {5: {1: 7.0}, 7: {4: 19.6}}
        text = render_series("x", series)
        assert "-" in text


class TestNodeSweep:
    def test_bars(self):
        text = render_node_sweep("model", {0: 20.0, 1: 10.0})
        lines = text.splitlines()
        assert lines[0] == "model"
        assert lines[1].count("#") == 20
        assert lines[2].count("#") == 10
