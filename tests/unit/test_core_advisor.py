"""Placement advisor."""

import pytest

from repro.core.iomodel import IOModelBuilder
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.errors import ModelError


@pytest.fixture()
def write_model(host, registry):
    return IOModelBuilder(host, registry=registry, runs=10).build(7, "write")


@pytest.fixture()
def rdma_write_values(write_model):
    by_rank = {1: 23.3, 2: 23.2, 3: 17.1}
    return {n: by_rank[write_model.class_of(n).rank] for n in write_model.values}


@pytest.fixture()
def advisor(host, write_model, rdma_write_values):
    return PlacementAdvisor(host, write_model, rdma_write_values, tolerance=0.05)


class TestEquivalence:
    def test_classes_1_and_2_equivalent_for_rdma_write(self, advisor):
        # The paper: "class 1 and class 2 have almost identical performance".
        assert advisor.equivalent_classes() == (1, 2)

    def test_candidate_nodes(self, advisor):
        assert set(advisor.candidate_nodes()) == {0, 1, 4, 5, 6, 7}

    def test_tight_tolerance_keeps_only_best(self, host, write_model,
                                             rdma_write_values):
        advisor = PlacementAdvisor(host, write_model, rdma_write_values,
                                   tolerance=0.001)
        assert advisor.equivalent_classes() == (1,)

    def test_model_values_used_when_no_operation(self, host, write_model):
        advisor = PlacementAdvisor(host, write_model, tolerance=0.05)
        # On memcpy values class 2 (44.5) is >5 % below class 1 (51.4).
        assert advisor.equivalent_classes() == (1,)


class TestAdvise:
    def test_spread_respects_core_counts(self, advisor, host):
        plan = advisor.advise(16)
        assert plan.n_tasks == 16
        for node, count in plan.tasks_per_node.items():
            assert count <= host.node(node).n_cores

    def test_even_spread(self, advisor):
        plan = advisor.advise(12)
        counts = [c for c in plan.tasks_per_node.values() if c]
        assert max(counts) - min(counts) <= 1

    def test_avoid_irq_node(self, advisor):
        plan = advisor.advise(5, avoid_irq_node=True)
        assert plan.tasks_per_node.get(7, 0) == 0

    def test_oversubscribes_when_necessary(self, advisor):
        plan = advisor.advise(40)
        assert plan.n_tasks == 40

    def test_stream_nodes_flat_list(self, advisor):
        plan = advisor.advise(6)
        nodes = plan.stream_nodes()
        assert len(nodes) == 6
        assert sorted(set(nodes)) == sorted(plan.nodes)

    def test_naive_plan(self, advisor):
        plan = advisor.naive_plan(8)
        assert plan.tasks_per_node == {7: 8}

    def test_invalid_task_count(self, advisor):
        with pytest.raises(ModelError):
            advisor.advise(0)
        with pytest.raises(ModelError):
            advisor.naive_plan(0)

    def test_invalid_tolerance(self, host, write_model):
        with pytest.raises(ModelError):
            PlacementAdvisor(host, write_model, tolerance=1.0)

    def test_render(self, advisor):
        plan = advisor.advise(4)
        text = plan.render()
        assert "4 tasks" in text
