"""F4 — Fig. 4: CPU-centric and memory-centric STREAM models of node 7."""


def test_fig4_node7_models(run_paper_experiment):
    result = run_paper_experiment("f4")
    assert set(result.data) == {"cpu_centric", "memory_centric"}
