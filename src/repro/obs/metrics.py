"""The process-wide metrics registry: named counters and gauges.

One :class:`MetricsRegistry` (:data:`metrics`) serves the whole process.
Counters are monotonically increasing integers (cache hits, routes
computed, faults injected, RNG draws per stream); gauges hold the last
value written (queue depths, ratios).  Writers go through
:func:`repro.obs.recorder.count` / :func:`~repro.obs.recorder.gauge`,
which are no-ops unless a recorder is installed — the registry itself
never costs anything on un-instrumented runs.

Names are free-form strings, conventionally ``"<subsystem>.<what>"``
(``"routing.route.cached"``) with ``/``-suffixed instances where a
counter is per-entity (``"rng.draws/iomodel/write/k7-i0-m4"``).
"""

from __future__ import annotations

__all__ = ["MetricsRegistry", "metrics"]


class MetricsRegistry:
    """Named counters and gauges with a JSON-ready snapshot."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # --- writers ----------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    # --- readers ----------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never written)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """All counters whose name starts with ``prefix``, sorted by name."""
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """A plain-dict copy: ``{"counters": {...}, "gauges": {...}}``."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
        }

    def reset(self) -> None:
        """Drop every counter and gauge (recording start / tests)."""
        self._counters.clear()
        self._gauges.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges)"
        )


#: The process-wide registry every instrumented layer writes into.
metrics = MetricsRegistry()
