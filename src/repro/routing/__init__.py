"""Per-plane routing over the fabric.

Routes are computed the way static HT routing registers behave: minimal
hop count first, then a plane-specific preference among equal-length
candidates (bulk/DMA traffic prefers the widest bottleneck; PIO prefers
the highest streaming cap, then lowest latency).  Ties break
lexicographically so routing — and therefore the whole reproduction — is
deterministic.  Explicit per-pair overrides are supported for machines
whose BIOS programs something the heuristic would not pick.
"""

from repro.routing.batch import batch_routes
from repro.routing.incremental import (
    LinkDelta,
    RerouteStats,
    incremental_routes,
    link_delta,
)
from repro.routing.paths import Path
from repro.routing.table import RoutingTable, enumerate_min_hop_routes, select_route

__all__ = [
    "Path",
    "RoutingTable",
    "batch_routes",
    "enumerate_min_hop_routes",
    "select_route",
    "LinkDelta",
    "RerouteStats",
    "link_delta",
    "incremental_routes",
]
