"""Merge laws and ring invariants of the live metrics plane.

The exposition layer folds per-``(method, tier)`` histograms into
per-method/per-tier views by merging, so the merge laws are
load-bearing: ``merge(a, b)`` must be indistinguishable (buckets,
count, min, max; sum up to float addition order) from one histogram
fed the concatenated stream.  The flight recorder's ring must retain
exactly the newest records, oldest-first, across any wraparound.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.live import HIST_BASE, FlightRecorder, Hist

#: Observed values: durations (tiny to huge) plus the zero-bucket edge
#: cases the logical clock produces.
VALUES = st.one_of(
    st.floats(1e-9, 1e9, allow_nan=False, allow_infinity=False),
    st.just(0.0),
    st.floats(-10.0, 0.0, allow_nan=False),
)
STREAMS = st.lists(VALUES, min_size=0, max_size=200)


def fed(values) -> Hist:
    h = Hist()
    for v in values:
        h.record(v)
    return h


class TestMergeLaws:
    @given(left=STREAMS, right=STREAMS)
    @settings(max_examples=150, deadline=None)
    def test_merge_equals_concatenated_stream(self, left, right):
        merged = fed(left).merge(fed(right))
        concat = fed(left + right)
        assert merged.counts == concat.counts
        assert merged.count == concat.count
        assert merged.min == concat.min
        assert merged.max == concat.max
        assert merged.sum == pytest.approx(concat.sum, rel=1e-9, abs=1e-12)

    @given(values=STREAMS)
    @settings(max_examples=100, deadline=None)
    def test_merge_with_empty_is_identity(self, values):
        base = fed(values)
        merged = fed(values).merge(Hist())
        assert merged.counts == base.counts
        assert merged.count == base.count
        other = Hist().merge(fed(values))
        assert other.counts == base.counts

    @given(a=STREAMS, b=STREAMS)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative_on_buckets(self, a, b):
        ab = fed(a).merge(fed(b))
        ba = fed(b).merge(fed(a))
        assert ab.counts == ba.counts
        assert ab.count == ba.count
        assert ab.min == ba.min and ab.max == ba.max


class TestBucketLaws:
    @given(value=st.floats(1e-12, 1e12, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_bucket_contains_value(self, value):
        idx = Hist.bucket_index(value)
        upper = Hist.bucket_upper(idx)
        lower = upper / HIST_BASE
        assert value <= upper * (1 + 1e-12)
        assert value >= lower * (1 - 1e-12)

    @given(
        a=st.floats(1e-12, 1e12, allow_nan=False),
        b=st.floats(1e-12, 1e12, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_bucket_index_is_monotone(self, a, b):
        if a > b:
            a, b = b, a
        assert Hist.bucket_index(a) <= Hist.bucket_index(b)

    @given(values=st.lists(st.floats(1e-9, 1e9, allow_nan=False),
                           min_size=1, max_size=100),
           q=st.sampled_from([0.5, 0.9, 0.99]))
    @settings(max_examples=150, deadline=None)
    def test_quantile_within_one_bucket_width(self, values, q):
        h = fed(values)
        got = h.quantile(q)
        ordered = sorted(values)
        true = ordered[min(max(math.ceil(q * len(values)), 1),
                           len(values)) - 1]
        # The reported quantile is a bucket upper bound: at least the
        # true empirical quantile, at most one bucket width above it.
        assert got >= true * (1 - 1e-12)
        assert got <= true * HIST_BASE * (1 + 1e-12)


class TestFlightRing:
    @given(capacity=st.integers(1, 16), total=st.integers(0, 64))
    @settings(max_examples=150, deadline=None)
    def test_ring_retains_newest_oldest_first(self, capacity, total):
        fr = FlightRecorder(span_capacity=capacity, event_capacity=capacity)
        for i in range(total):
            fr.note_span(float(i), f"m{i}", i * 0.5, tag=i % 3)
            fr.note_event(float(i), "error", {"i": i})
        spans = fr.spans()
        events = fr.events()
        expected = list(range(max(0, total - capacity), total))
        assert [s["seq"] for s in spans] == expected
        assert [e["seq"] for e in events] == expected
        assert [s["name"] for s in spans] == [f"m{i}" for i in expected]
        occ = fr.occupancy()
        assert occ["spans"] == min(total, capacity)
        assert occ["span_total"] == total
