"""Algorithm 1: NUMA I/O performance modelling with memory semantics.

The paper's methodology, line for line:

1. ``n <- numa_num_configured_nodes()``
2. ``m <- numa_num_configured_cores() / n`` parallel copy threads
3. for every node ``i``: allocate ``memsrc``/``memsnk`` per mode
   (write: src on ``i``, sink on the target ``k``; read: the reverse),
4. bind the copy threads to node ``k`` (simulating the device's DMA
   engine), copy 100 times, record the **average** bandwidth,
5. emit the device write/read performance model for node ``k``.

No I/O device is touched: the model is built purely from memory-to-
memory bulk copies, and validated elsewhere against real (simulated)
TCP/RDMA/SSD runs.
"""

from __future__ import annotations

import numpy as np

from repro.bench.engines import bulk_copy_gbps, bulk_copy_gbps_many
from repro.bench.results import Measurement
from repro.core.classify import classify_nodes
from repro.core.model import IOPerformanceModel
from repro.errors import ModelError
from repro.memory.allocator import PageAllocator
from repro.obs import recorder as _obs
from repro.osmodel import libnuma
from repro.osmodel.noise import NoiseModel
from repro.rng import RngRegistry
from repro.solver.session import get_session
from repro.topology.machine import Machine
from repro.units import MiB

__all__ = ["IOModelBuilder"]


class IOModelBuilder:
    """Build device write/read performance models per Algorithm 1.

    Parameters
    ----------
    machine:
        Host under characterisation.
    registry:
        Seeded RNG registry for measurement noise.
    runs:
        Copies per thread; the algorithm records their average (100 in
        the paper).
    buffer_bytes:
        Per-thread copy buffer; must dwarf the LLC like STREAM's arrays.
    rel_gap:
        Class-splitting threshold passed to
        :func:`~repro.core.classify.classify_nodes`.
    sigma:
        Per-run measurement noise.
    """

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        runs: int = 100,
        buffer_bytes: int = 64 * MiB,
        rel_gap: float = 0.08,
        sigma: float = 0.012,
    ) -> None:
        if runs < 1:
            raise ModelError(f"runs must be >= 1, got {runs}")
        if sigma < 0:
            raise ModelError(f"noise sigma must be >= 0, got {sigma}")
        if buffer_bytes < 4 * machine.params.llc_bytes:
            raise ModelError(
                f"copy buffers must be >= 4x LLC ({4 * machine.params.llc_bytes} "
                f"bytes) to defeat caching, got {buffer_bytes}"
            )
        self.machine = machine
        self.registry = registry or RngRegistry()
        self.runs = runs
        self.buffer_bytes = buffer_bytes
        self.rel_gap = rel_gap
        self.sigma = sigma
        # One solver session per characterization run: every probe of the
        # Algorithm 1 loop shares the cached capacity map and allocation
        # memo instead of building N cold networks.
        self.session = get_session(machine)

    def threads_per_node(self) -> int:
        """Algorithm 1 line 2: cores divided by nodes."""
        n = libnuma.numa_num_configured_nodes(self.machine)
        return libnuma.numa_num_configured_cpus(self.machine) // n

    def measure_pair(self, other_node: int, target_node: int, mode: str) -> Measurement:
        """One (node ``i``, target ``k``) probe: m threads, ``runs`` copies.

        Buffers are genuinely allocated on their nodes (lines 5-10) so a
        node without memory fails like ``numa_alloc_onnode`` would.
        """
        if mode not in ("write", "read"):
            raise ModelError(f"mode must be 'write' or 'read', got {mode!r}")
        machine = self.machine
        m = self.threads_per_node()
        allocator = PageAllocator(machine)
        src_node, dst_node = (
            (other_node, target_node) if mode == "write" else (target_node, other_node)
        )
        src = libnuma.numa_alloc_onnode(allocator, m * self.buffer_bytes, src_node)
        snk = libnuma.numa_alloc_onnode(allocator, m * self.buffer_bytes, dst_node)
        try:
            libnuma.numa_run_on_node(machine, target_node)  # bind copy threads to k
            base = bulk_copy_gbps(
                machine, src_node, dst_node, threads=m, session=self.session
            )
            noise = NoiseModel(
                self.registry.stream(
                    f"iomodel/{mode}/k{target_node}-i{other_node}-m{m}"
                )
            )
            samples = base * noise.factors(self.sigma, self.runs)
            return Measurement.from_samples(samples, protocol="mean")
        finally:
            libnuma.numa_free(allocator, snk)
            libnuma.numa_free(allocator, src)

    def _noise_matrix(self, target_node: int, mode: str, m: int) -> "np.ndarray":
        """The (nodes x runs) noise matrix of one model, one ``exp`` call.

        Each node keeps its own registry stream
        (``iomodel/{mode}/k…-i…-m…``) and the draws match
        :class:`~repro.osmodel.noise.NoiseModel` row by row, so the
        vectorized sweep stays bit-identical to per-pair measurement.
        """
        if self.sigma == 0:
            return np.ones((self.machine.n_nodes, self.runs))
        mu = -0.5 * self.sigma * self.sigma
        return np.exp(
            np.stack(
                [
                    self.registry.stream(
                        f"iomodel/{mode}/k{target_node}-i{i}-m{m}"
                    ).normal(mu, self.sigma, size=self.runs)
                    for i in self.machine.node_ids
                ]
            )
        )

    def build(self, target_node: int, mode: str) -> IOPerformanceModel:
        """The full Algorithm 1 loop over every node ``i``, vectorized."""
        return self.build_many((target_node,), mode)[target_node]

    def build_many(
        self, targets: "tuple[int, ...] | list[int]", mode: str
    ) -> dict[int, IOPerformanceModel]:
        """Algorithm 1 for several target nodes in one batched sweep.

        Semantically the per-node :meth:`measure_pair` loop per target,
        executed as a sweep: buffer allocation and thread binding still
        happen per (node, target) probe — so a node without memory fails
        exactly as before — but every bulk-copy capacity query of the
        whole sweep goes through the solver session in one
        :meth:`~repro.solver.session.SolverSession.rates_many` batch,
        and each model's noise matrix is drawn with a single vectorized
        ``exp``.  Values are bit-identical to node-by-node measurement.
        """
        machine = self.machine
        for target_node in targets:
            if target_node not in machine.node_ids:
                raise ModelError(f"unknown target node {target_node}")
        if mode not in ("write", "read"):
            raise ModelError(f"mode must be 'write' or 'read', got {mode!r}")
        with _obs.span(
            "iomodel.build_many", mode=mode, targets=len(targets)
        ):
            return self._build_many(targets, mode)

    def _build_many(
        self, targets: "tuple[int, ...] | list[int]", mode: str
    ) -> dict[int, IOPerformanceModel]:
        machine = self.machine
        m = self.threads_per_node()
        copy_pairs = []
        for target_node in targets:
            for i in machine.node_ids:
                allocator = PageAllocator(machine)
                src_node, dst_node = (
                    (i, target_node) if mode == "write" else (target_node, i)
                )
                src = libnuma.numa_alloc_onnode(
                    allocator, m * self.buffer_bytes, src_node
                )
                snk = libnuma.numa_alloc_onnode(
                    allocator, m * self.buffer_bytes, dst_node
                )
                try:
                    libnuma.numa_run_on_node(machine, target_node)
                    copy_pairs.append((src_node, dst_node))
                finally:
                    libnuma.numa_free(allocator, snk)
                    libnuma.numa_free(allocator, src)
        bases = bulk_copy_gbps_many(machine, copy_pairs, m, session=self.session)
        n = machine.n_nodes
        models: dict[int, IOPerformanceModel] = {}
        for t_idx, target_node in enumerate(targets):
            base_row = np.asarray(bases[t_idx * n:(t_idx + 1) * n])
            samples = base_row[:, None] * self._noise_matrix(target_node, mode, m)
            values = {
                i: Measurement.from_samples(samples[row], protocol="mean").gbps
                for row, i in enumerate(machine.node_ids)
            }
            classes = classify_nodes(values, machine, target_node, rel_gap=self.rel_gap)
            _obs.count("iomodel.models_built")
            models[target_node] = IOPerformanceModel(
                machine_name=machine.name,
                target_node=target_node,
                mode=mode,
                values=values,
                classes=classes,
                threads=m,
                runs=self.runs,
            )
        return models

    def build_both(self, target_node: int) -> tuple[IOPerformanceModel, IOPerformanceModel]:
        """Write and read models for one target (the Fig. 10 pair)."""
        return self.build(target_node, "write"), self.build(target_node, "read")
