"""Property-based tests for class construction."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import classify_nodes
from repro.topology.builders import reference_host

_HOST = reference_host(with_devices=False)

values_strategy = st.fixed_dictionaries(
    {
        n: st.floats(min_value=1.0, max_value=60.0,
                     allow_nan=False, allow_infinity=False)
        for n in _HOST.node_ids
    }
)


@given(values_strategy, st.sampled_from(_HOST.node_ids),
       st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_classes_partition_nodes(values, target, rel_gap):
    classes = classify_nodes(values, _HOST, target, rel_gap=rel_gap)
    seen = [n for c in classes for n in c.node_ids]
    assert sorted(seen) == list(_HOST.node_ids)
    assert [c.rank for c in classes] == list(range(1, len(classes) + 1))


@given(values_strategy, st.sampled_from(_HOST.node_ids))
@settings(max_examples=200, deadline=None)
def test_local_and_neighbor_in_class_one(values, target):
    classes = classify_nodes(values, _HOST, target)
    pkg = _HOST.node(target).package_id
    expected = set(_HOST.packages[pkg].node_ids)
    assert set(classes[0].node_ids) == expected


@given(values_strategy, st.sampled_from(_HOST.node_ids))
@settings(max_examples=200, deadline=None)
def test_remote_classes_ordered_and_gapped(values, target):
    classes = classify_nodes(values, _HOST, target, rel_gap=0.08)
    remote = classes[1:]
    # Within each class and across classes, values are non-increasing.
    flattened = []
    for cls in remote:
        ordered = sorted((values[n] for n in cls.node_ids), reverse=True)
        flattened.extend(ordered)
        assert cls.avg <= remote[0].hi + 1e-9
    assert flattened == sorted(flattened, reverse=True)
    # Adjacent classes are separated by more than the gap threshold.
    for earlier, later in zip(remote, remote[1:]):
        assert (earlier.lo - later.hi) / earlier.lo > 0.08 - 1e-9


@given(values_strategy, st.sampled_from(_HOST.node_ids))
@settings(max_examples=100, deadline=None)
def test_class_stats_consistent(values, target):
    for cls in classify_nodes(values, _HOST, target):
        # np.mean of identical floats can differ in the last ulp.
        assert cls.lo - 1e-9 <= cls.avg <= cls.hi + 1e-9
        assert cls.lo == min(values[n] for n in cls.node_ids)
        assert cls.hi == max(values[n] for n in cls.node_ids)
