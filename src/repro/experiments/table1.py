"""T1 — Table I: NUMA factor of four server configurations."""

from __future__ import annotations

from repro.analysis.numa_factor import table1
from repro.analysis.report import render_table1
from repro.experiments.common import check_close
from repro.experiments.registry import ExperimentResult

TITLE = "Table I: NUMA factor of different server configurations"

#: Tolerance for the latency-model calibration.
REL_TOL = 0.10


def run(machine=None, registry=None, quick: bool = False) -> ExperimentResult:
    """Build the four machines, measure factors, compare to Table I."""
    rows = table1()
    checks = tuple(
        check_close(f"NUMA factor: {row.label}", row.measured, row.paper, REL_TOL)
        for row in rows
    )
    return ExperimentResult(
        exp_id="t1",
        title=TITLE,
        text=render_table1(rows),
        data={row.label: row.measured for row in rows},
        checks=checks,
    )
