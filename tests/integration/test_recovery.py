"""SIGKILL-mid-sweep recovery: resumed runs are byte-identical.

These tests arm the journal's seeded crash points
(:data:`repro.journal.CRASH_ENV`) in a subprocess running the real CLI,
kill it mid-sweep, resume with ``--resume``, and assert the resumed
stdout matches an uninterrupted golden run byte for byte — plus no
leaked ``/dev/shm`` arena segments.  The full randomized soak lives in
``repro-numa recover`` / ``scripts/recovery_smoke.sh``; this is the
fast deterministic slice of it that runs under pytest.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.journal import CRASH_ENV, JOURNAL_FILENAME, scan_journal

pytestmark = [pytest.mark.recovery, pytest.mark.fabric]

ARGS = [
    "--machine", "reference", "--seed", "123",
    "iomodel", "--targets", "0,1,2", "--mode", "write",
    "--runs", "2", "--jobs", "2",
]


def _run(extra, env=None, expect_kill=False):
    base = {k: v for k, v in os.environ.items() if k != CRASH_ENV}
    base.update(env or {})
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli.main"] + ARGS + extra,
        # A SIGKILLed parent leaves pool workers holding the stdout
        # pipe, so capturing a crash run's output could block on EOF.
        stdout=subprocess.DEVNULL if expect_kill else subprocess.PIPE,
        stderr=subprocess.DEVNULL if expect_kill else subprocess.PIPE,
        env=base,
        timeout=120,
    )
    return proc


def _live_segments():
    from repro.fabric.arena import live_segments, reap_orphans

    reap_orphans(max_age_s=0.0)
    return live_segments()


@pytest.mark.parametrize("crash_spec", ["2", "2:torn"])
def test_sigkill_mid_sweep_resumes_byte_identical(tmp_path, crash_spec):
    golden = _run([])
    assert golden.returncode == 0, golden.stderr.decode()

    run_dir = tmp_path / "run"
    crashed = _run(["--resume", str(run_dir)],
                   env={CRASH_ENV: crash_spec}, expect_kill=True)
    assert crashed.returncode != 0  # SIGKILL fired mid-sweep

    records, _, torn = scan_journal(run_dir / JOURNAL_FILENAME)
    torn_mode = crash_spec.endswith(":torn")
    assert torn == torn_mode
    # Plain crash lands right after record 2 (meta + 2 units); torn mode
    # cuts record 2 in half, leaving meta + 1 complete unit.
    assert len(records) == (2 if torn_mode else 3)

    resumed = _run(["--resume", str(run_dir)])
    assert resumed.returncode == 0, resumed.stderr.decode()
    assert resumed.stdout == golden.stdout
    notes = resumed.stderr.decode()
    assert "unit(s) already completed" in notes
    if torn_mode:
        assert "truncated a torn tail" in notes

    assert _live_segments() == []  # nothing leaked by the crash


def test_resume_of_complete_run_recomputes_nothing(tmp_path):
    run_dir = tmp_path / "run"
    first = _run(["--resume", str(run_dir)])
    assert first.returncode == 0, first.stderr.decode()

    again = _run(["--resume", str(run_dir)])
    assert again.returncode == 0
    assert again.stdout == first.stdout
    assert "3/3 unit(s) already completed" in again.stderr.decode()

    # The journal gained no records the second time around.
    records, _, torn = scan_journal(run_dir / JOURNAL_FILENAME)
    assert not torn and len(records) == 4
    assert _live_segments() == []
