"""fio job specs and the ini parser."""

import pytest

from repro.bench.jobfile import (
    NETWORK_TEST_DEFAULTS,
    FioJob,
    parse_jobfile,
    parse_size,
)
from repro.errors import BenchmarkError
from repro.units import GB, KiB


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096

    def test_kib(self):
        assert parse_size("128k") == 128 * KiB

    def test_gb(self):
        assert parse_size("400g") == 400 * GB

    def test_suffix_b_allowed(self):
        assert parse_size("128kb") == 128 * KiB

    def test_garbage_rejected(self):
        with pytest.raises(BenchmarkError):
            parse_size("lots")


class TestFioJob:
    def test_table3_defaults(self):
        job = FioJob(name="j", engine="tcp", rw="send")
        assert job.size_bytes == NETWORK_TEST_DEFAULTS["size_bytes"]
        assert job.blocksize == 128 * KiB
        assert job.tcp_variant == "cubic"
        assert job.frame_bytes == 9000

    def test_device_auto_selected(self):
        assert FioJob(name="j", engine="tcp", rw="send").device == "nic"
        assert FioJob(name="j", engine="libaio", rw="read").device == "ssd"

    def test_profile_names(self):
        assert FioJob(name="j", engine="tcp", rw="recv").profile_name == "tcp_recv"
        assert FioJob(name="j", engine="rdma", rw="read").profile_name == "rdma_read"
        assert (FioJob(name="j", engine="libaio", rw="write").profile_name
                == "libaio_write")

    def test_direction_mapping(self):
        assert FioJob(name="j", engine="tcp", rw="send").direction == "write"
        assert FioJob(name="j", engine="tcp", rw="recv").direction == "read"
        assert FioJob(name="j", engine="rdma", rw="send").direction == "write"
        assert FioJob(name="j", engine="rdma", rw="read").direction == "read"

    def test_memcpy_requires_target(self):
        with pytest.raises(BenchmarkError):
            FioJob(name="j", engine="memcpy", rw="write")

    def test_invalid_engine(self):
        with pytest.raises(BenchmarkError):
            FioJob(name="j", engine="nvme", rw="read")

    def test_invalid_direction_for_engine(self):
        with pytest.raises(BenchmarkError):
            FioJob(name="j", engine="tcp", rw="read")

    def test_stream_nodes_length_checked(self):
        with pytest.raises(BenchmarkError):
            FioJob(name="j", engine="rdma", rw="read", numjobs=3,
                   stream_nodes=(0, 1))

    def test_sweep_helpers(self):
        job = FioJob(name="j", engine="tcp", rw="send")
        assert job.with_node(5).cpunodebind == 5
        assert job.with_node(5).name == "j@n5"
        assert job.with_numjobs(8).numjobs == 8

    def test_memcpy_profile_name_rejected(self):
        job = FioJob(name="j", engine="memcpy", rw="write", target_node=7,
                     cpunodebind=0)
        with pytest.raises(BenchmarkError):
            job.profile_name


class TestParseJobfile:
    def test_global_section_merges(self):
        jobs = parse_jobfile(
            """
            [global]
            bs=128k
            size=400g

            [send4]
            ioengine=tcp
            rw=send
            numjobs=4
            cpunodebind=5
            """
        )
        assert len(jobs) == 1
        job = jobs[0]
        assert job.name == "send4"
        assert job.blocksize == 128 * KiB
        assert job.size_bytes == 400 * GB
        assert job.numjobs == 4
        assert job.cpunodebind == 5

    def test_comments_ignored(self):
        jobs = parse_jobfile(
            """
            ; a comment
            [j]  # trailing comment
            ioengine=rdma
            rw=write
            """
        )
        assert jobs[0].engine == "rdma"

    def test_multiple_jobs(self):
        jobs = parse_jobfile(
            """
            [a]
            ioengine=tcp
            rw=send
            [b]
            ioengine=tcp
            rw=recv
            """
        )
        assert [j.name for j in jobs] == ["a", "b"]

    def test_passthrough_keys_preserved(self):
        jobs = parse_jobfile(
            "[j]\nioengine=tcp\nrw=send\ndirect=1\ntime_based=1\n"
        )
        assert jobs[0].extra == {"direct": "1", "time_based": "1"}

    def test_option_before_section_rejected(self):
        with pytest.raises(BenchmarkError):
            parse_jobfile("ioengine=tcp\n[j]\nrw=send\n")

    def test_missing_required_rejected(self):
        with pytest.raises(BenchmarkError):
            parse_jobfile("[j]\nnumjobs=2\n")

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            parse_jobfile("[global]\nbs=4k\n")


class TestHardening:
    """Every rejection names the offending field and job."""

    def test_unknown_option_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*unknown option 'bandwith'"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nbandwith=10\n")

    def test_non_integer_numjobs_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*numjobs=.*not an integer"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nnumjobs=four\n")

    def test_non_positive_numjobs_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*numjobs must be >= 1"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nnumjobs=0\n")

    def test_non_positive_blocksize_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*blocksize must be positive"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nbs=0\n")

    def test_bad_size_string_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*size.*cannot parse"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nsize=lots\n")

    def test_non_positive_size_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*size must be positive"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nsize=0\n")

    def test_bad_engine_rejected_with_name(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*unknown engine 'nvme'"):
            parse_jobfile("[j]\nioengine=nvme\nrw=read\n")

    def test_non_numeric_runtime_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*runtime=.*not a number"):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\nruntime=soon\n")

    def test_non_integer_cpunodebind_rejected(self):
        with pytest.raises(BenchmarkError, match=r"job 'j'.*cpunodebind="):
            parse_jobfile("[j]\nioengine=tcp\nrw=send\ncpunodebind=first\n")
