"""Response curves and engine profiles."""

import pytest

from repro.devices.response import EngineProfile, ResponseCurve
from repro.errors import DeviceError


class TestResponseCurve:
    def test_saturates_at_cap(self):
        curve = ResponseCurve(cap_gbps=22.0, path_ref_gbps=47.0, beta=1.6, gamma=0.44)
        assert curve.value(47.0) == pytest.approx(22.0)
        assert curve.value(60.0) == pytest.approx(22.0)

    def test_monotone_below_ref(self):
        curve = ResponseCurve(cap_gbps=22.0, path_ref_gbps=47.0, beta=1.6, gamma=0.44)
        values = [curve.value(p) for p in (20.0, 30.0, 40.0, 47.0)]
        assert values == sorted(values)

    def test_floor_at_five_percent(self):
        curve = ResponseCurve(cap_gbps=20.0, path_ref_gbps=50.0, beta=100.0, gamma=2.0)
        assert curve.value(1.0) == pytest.approx(1.0)  # 5 % of cap

    def test_rejects_non_positive_path(self):
        curve = ResponseCurve(cap_gbps=20.0, path_ref_gbps=50.0, beta=1.0, gamma=1.0)
        with pytest.raises(DeviceError):
            curve.value(0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(DeviceError):
            ResponseCurve(cap_gbps=0, path_ref_gbps=50, beta=1, gamma=1)
        with pytest.raises(DeviceError):
            ResponseCurve(cap_gbps=20, path_ref_gbps=50, beta=-1, gamma=1)
        with pytest.raises(DeviceError):
            ResponseCurve(cap_gbps=20, path_ref_gbps=50, beta=1, gamma=0)


class TestEngineProfile:
    def _curve(self):
        return ResponseCurve(cap_gbps=20.0, path_ref_gbps=50.0, beta=1.0, gamma=1.0)

    def test_defaults(self):
        p = EngineProfile(name="x", curve=self._curve())
        assert p.cpu_gbps_per_stream is None
        assert p.irq_sensitivity == 1.0
        assert p.crowd_threshold == 8

    def test_validation(self):
        with pytest.raises(DeviceError):
            EngineProfile(name="x", curve=self._curve(), cpu_gbps_per_stream=0)
        with pytest.raises(DeviceError):
            EngineProfile(name="x", curve=self._curve(), irq_sensitivity=1.5)
        with pytest.raises(DeviceError):
            EngineProfile(name="x", curve=self._curve(), sigma=-0.1)
