"""The advisory backend: models, warm sessions, and last-good answers.

The backend owns everything behind the wire protocol:

* a **warm session pool** — placement queries are solver-cache-bound,
  so the pool pins one :class:`~repro.solver.session.SolverSession` per
  machine fingerprint (on top of the process-wide registry) and accounts
  hits/misses for ``health``;
* a **model cache** — Algorithm 1 characterizations keyed by
  ``(fingerprint, target, mode)``; a faulted machine view has a new
  fingerprint, so fault injection naturally invalidates models without
  touching the healthy entries;
* the **last-good snapshot** — every successful characterization
  records its class-level summary (:class:`ClassSnapshot`).  When the
  circuit breaker is open, the service answers *from these snapshots*:
  class-level placement, classification and Eq. 1 prediction that need
  no solver at all.  That is the Dynamo-style contract: always
  answerable, possibly degraded.

Backend calls raise :class:`~repro.errors.ServiceError` for caller
mistakes (unknown node, bad stream list) and let solver-layer errors
(:data:`SOLVER_FAILURES`) propagate for the breaker to count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.planner import DeviceAttachmentPlanner
from repro.core.iomodel import IOModelBuilder
from repro.core.model import IOPerformanceModel
from repro.core.scheduler_advisor import PlacementAdvisor
from repro.errors import (
    FaultError,
    RoutingError,
    ServiceError,
    SimulationError,
    TopologyError,
)
from repro.rng import RngRegistry
from repro.solver.capacity import machine_fingerprint
from repro.solver.session import SolverSession, get_session
from repro.topology.machine import Machine

__all__ = [
    "SOLVER_FAILURES",
    "SessionPool",
    "ClassSnapshot",
    "AdvisoryBackend",
]

#: Exception classes the circuit breaker counts as solver failures.
#: (:class:`~repro.errors.RouteLostError` is a :class:`FaultError`.)
SOLVER_FAILURES = (RoutingError, TopologyError, SimulationError, FaultError)


class SessionPool:
    """Warm solver sessions, pinned per machine fingerprint (LRU).

    A thin accounting layer over the process-wide session registry:
    ``acquire`` returns the shared session for a machine's topology and
    holds a strong reference so the global LRU cannot evict a session
    the service is amortising caches through.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"session pool maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._sessions: OrderedDict[str, SolverSession] = OrderedDict()

    def acquire(self, machine: Machine) -> SolverSession:
        """The warm session for ``machine``'s topology."""
        fingerprint = machine_fingerprint(machine)
        session = self._sessions.get(fingerprint)
        if session is None:
            self.misses += 1
            session = get_session(machine)
            self._sessions[fingerprint] = session
            while len(self._sessions) > self.maxsize:
                self._sessions.popitem(last=False)
        else:
            self.hits += 1
            self._sessions.move_to_end(fingerprint)
        return session

    def __len__(self) -> int:
        return len(self._sessions)

    def stats(self) -> dict:
        """JSON-able pool state for ``health`` responses."""
        return {"size": len(self), "hits": self.hits, "misses": self.misses}


@dataclass(frozen=True)
class ClassSnapshot:
    """Class-level summary of one characterization — the degraded answer.

    ``classes`` rows are ``(rank, node_ids, avg, lo, hi)`` in rank
    order: everything a class-level placement, classification or Eq. 1
    prediction needs, nothing that requires a live solver.
    """

    machine_name: str
    target_node: int
    mode: str
    classes: tuple[tuple[int, tuple[int, ...], float, float, float], ...]

    @classmethod
    def from_model(cls, model: IOPerformanceModel) -> "ClassSnapshot":
        """Snapshot the class structure of a freshly built model."""
        return cls(
            machine_name=model.machine_name,
            target_node=model.target_node,
            mode=model.mode,
            classes=tuple(
                (c.rank, tuple(c.node_ids), c.avg, c.lo, c.hi)
                for c in model.classes
            ),
        )

    def rank_of(self, node: int) -> "int | None":
        """The class rank holding ``node``, or ``None`` if unknown."""
        for rank, node_ids, _avg, _lo, _hi in self.classes:
            if node in node_ids:
                return rank
        return None

    def class_avgs(self) -> dict[int, float]:
        """``rank -> avg Gbps`` for every class."""
        return {rank: avg for rank, _nodes, avg, _lo, _hi in self.classes}

    def equivalent_classes(self, tolerance: float) -> tuple[int, ...]:
        """Ranks within ``tolerance`` (relative) of the best class."""
        avgs = self.class_avgs()
        best = max(avgs.values())
        return tuple(
            rank for rank, avg in sorted(avgs.items())
            if (best - avg) / best <= tolerance
        )

    def to_dict(self) -> dict:
        """JSON-able form (the ``classify`` degraded payload)."""
        return {
            "machine": self.machine_name,
            "target": self.target_node,
            "mode": self.mode,
            "classes": [
                {
                    "rank": rank,
                    "node_ids": list(node_ids),
                    "avg_gbps": avg,
                    "lo_gbps": lo,
                    "hi_gbps": hi,
                }
                for rank, node_ids, avg, lo, hi in self.classes
            ],
        }


class AdvisoryBackend:
    """Placement answers over one host, fault-swappable, degradable.

    Parameters
    ----------
    machine:
        The healthy host the service advises for.
    registry:
        Seeded RNG registry; characterization streams restart per name,
        so rebuilding a model is bit-deterministic.
    runs:
        Algorithm 1 copies per probe (trade accuracy for latency).
    pool:
        Warm session pool (defaults to a fresh one).
    model_cache:
        LRU bound on cached characterizations.
    solver_pool:
        Optional :class:`~repro.fabric.FabricPool`: cold model builds
        run in its worker processes (shared-memory arenas, no event-loop
        stalls) instead of in-process.  Results are bit-identical either
        way, so the tier is a latency knob, not a semantics knob; solver
        failures keep their types so the breaker counts them unchanged.
    """

    def __init__(
        self,
        machine: Machine,
        registry: RngRegistry | None = None,
        runs: int = 25,
        pool: SessionPool | None = None,
        model_cache: int = 32,
        solver_pool=None,
    ) -> None:
        self.healthy_machine = machine
        self.machine = machine
        self.registry = registry if registry is not None else RngRegistry()
        self.runs = runs
        self.pool = pool if pool is not None else SessionPool()
        self.solver_pool = solver_pool
        self._model_cache_size = model_cache
        self._models: OrderedDict[tuple[str, int, str], IOPerformanceModel]
        self._models = OrderedDict()
        self._last_good: dict[tuple[int, str], ClassSnapshot] = {}
        self._last_good_plans: dict[float, dict] = {}
        self.warmed = False

    # --- machine lifecycle -------------------------------------------------
    def set_machine(self, machine: Machine) -> None:
        """Swap the live machine view (fault injection / recovery).

        Model and session caches are fingerprint-keyed so nothing is
        dropped; last-good snapshots survive by design — they are the
        degraded answers served while the new view is unsolvable.
        """
        self.machine = machine

    def restore_machine(self) -> None:
        """Swap back to the healthy host."""
        self.machine = self.healthy_machine

    # --- characterization --------------------------------------------------
    def _check_node(self, node: int, what: str) -> None:
        if node not in self.healthy_machine.node_ids:
            raise ServiceError(
                "invalid_params",
                f"{what} {node} is not a node of "
                f"{self.healthy_machine.name!r} "
                f"(nodes {list(self.healthy_machine.node_ids)})",
                data={"param": what},
            )

    def model(self, target: int, mode: str) -> IOPerformanceModel:
        """The (cached) Algorithm 1 model for ``(target, mode)``.

        A successful build refreshes the last-good snapshot; a solver
        failure propagates for the breaker to count.
        """
        self._check_node(target, "target")
        session = self.pool.acquire(self.machine)  # warm the capacity cache
        key = (machine_fingerprint(self.machine), target, mode)
        model = self._models.get(key)
        if model is None:
            if self.solver_pool is not None:
                model = self.solver_pool.build_model(
                    self.machine, target, mode,
                    registry=self.registry, runs=self.runs,
                )
            else:
                builder = IOModelBuilder(
                    self.machine, registry=self.registry, runs=self.runs
                )
                builder.session = session  # reuse the pinned warm session
                model = builder.build(target, mode)
            self._models[key] = model
            while len(self._models) > self._model_cache_size:
                self._models.popitem(last=False)
        else:
            self._models.move_to_end(key)
        self._last_good[(target, mode)] = ClassSnapshot.from_model(model)
        return model

    def warm(self, targets: "tuple[int, ...] | None" = None) -> None:
        """Pre-build both models for ``targets`` (device nodes by default)."""
        if targets is None:
            device_nodes = tuple(
                sorted({d.node_id for d in self.healthy_machine.devices.values()})
            )
            targets = device_nodes or (self.healthy_machine.node_ids[-1],)
        for target in targets:
            for mode in ("write", "read"):
                self.model(target, mode)
        self.warmed = True

    # --- live answers ------------------------------------------------------
    def advise(
        self,
        target: int,
        mode: str,
        tasks: int,
        avoid_irq_node: bool = False,
        tolerance: float = 0.05,
    ) -> dict:
        """Full class-aware placement over the live machine."""
        model = self.model(target, mode)
        advisor = PlacementAdvisor(self.machine, model, tolerance=tolerance)
        plan = advisor.advise(tasks, avoid_irq_node=avoid_irq_node)
        return {
            "degraded": False,
            "source": "characterization",
            "machine": self.machine.name,
            "target": target,
            "mode": mode,
            "tasks_per_node": {
                str(n): c for n, c in sorted(plan.tasks_per_node.items()) if c
            },
            "classes_used": list(plan.classes_used),
            "stream_nodes": plan.stream_nodes(),
        }

    def plan(self, write_weight: float = 0.5) -> dict:
        """Analytic device-attachment ranking over the live machine."""
        planner = DeviceAttachmentPlanner(self.machine, write_weight=write_weight)
        scores = [planner.score(n) for n in self.machine.node_ids]
        scores.sort(key=lambda s: (-s.combined_gbps, s.node))
        result = {
            "degraded": False,
            "source": "characterization",
            "machine": self.machine.name,
            "write_weight": write_weight,
            "best_node": scores[0].node,
            "ranking": [
                {
                    "node": s.node,
                    "combined_gbps": s.combined_gbps,
                    "write_mean_gbps": s.write_mean_gbps,
                    "read_mean_gbps": s.read_mean_gbps,
                }
                for s in scores
            ],
        }
        self._last_good_plans[round(float(write_weight), 9)] = result
        return result

    def predict_eq1(self, target: int, mode: str, streams: list[int]) -> dict:
        """Eq. 1 aggregate prediction from the memcpy class model."""
        for node in streams:
            self._check_node(node, "stream node")
        model = self.model(target, mode)
        alpha: dict[int, float] = {}
        for node in streams:
            rank = model.class_of(node).rank
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        avgs = {c.rank: c.avg for c in model.classes}
        total = sum(alpha.values())
        predicted = sum(
            (share / total) * avgs[rank] for rank, share in alpha.items()
        )
        return {
            "degraded": False,
            "source": "characterization",
            "machine": self.machine.name,
            "target": target,
            "mode": mode,
            "streams": list(streams),
            "predicted_gbps": predicted,
            "class_fractions": {
                str(rank): share / total for rank, share in sorted(alpha.items())
            },
        }

    def classify(self, target: int, mode: str) -> dict:
        """The class structure for ``(target, mode)`` on the live machine."""
        model = self.model(target, mode)
        payload = ClassSnapshot.from_model(model).to_dict()
        payload["values"] = {str(n): v for n, v in sorted(model.values.items())}
        payload["degraded"] = False
        payload["source"] = "characterization"
        return payload

    # --- degraded answers --------------------------------------------------
    def snapshot(self, target: int, mode: str) -> "ClassSnapshot | None":
        """The last-good snapshot for ``(target, mode)``, if any."""
        return self._last_good.get((target, mode))

    def degraded_answer(self, method: str, params: dict) -> "dict | None":
        """A class-level answer from the last-good characterization.

        Returns ``None`` when no snapshot covers the request — the
        dispatcher then refuses with a typed ``unavailable`` error.
        Every answer is marked ``degraded: true`` with its provenance.
        """
        if method == "plan":
            cached = self._last_good_plans.get(
                round(float(params["write_weight"]), 9)
            )
            if cached is None:
                return None
            return dict(
                cached, degraded=True, source="last-good-characterization"
            )
        if method not in ("advise", "predict_eq1", "classify"):
            return None
        snapshot = self.snapshot(params["target"], params["mode"])
        if snapshot is None:
            return None
        if method == "classify":
            payload = snapshot.to_dict()
            payload["degraded"] = True
            payload["source"] = "last-good-characterization"
            return payload
        if method == "advise":
            ranks = set(snapshot.equivalent_classes(params["tolerance"]))
            avgs = snapshot.class_avgs()
            nodes: list[int] = []
            for rank, node_ids, _avg, _lo, _hi in sorted(
                snapshot.classes, key=lambda row: -avgs[row[0]]
            ):
                if rank in ranks:
                    nodes.extend(node_ids)
            if params["avoid_irq_node"] and len(nodes) > 1:
                nodes = [n for n in nodes if n != snapshot.target_node]
            placement = {n: 0 for n in nodes}
            for i in range(params["tasks"]):
                placement[nodes[i % len(nodes)]] += 1
            stream_nodes: list[int] = []
            for node in sorted(placement):
                stream_nodes.extend([node] * placement[node])
            return {
                "degraded": True,
                "source": "last-good-characterization",
                "machine": snapshot.machine_name,
                "target": params["target"],
                "mode": params["mode"],
                "tasks_per_node": {
                    str(n): c for n, c in sorted(placement.items()) if c
                },
                "classes_used": list(ranks and sorted(ranks)),
                "stream_nodes": stream_nodes,
            }
        # predict_eq1
        alpha: dict[int, float] = {}
        for node in params["streams"]:
            rank = snapshot.rank_of(node)
            if rank is None:
                return None
            alpha[rank] = alpha.get(rank, 0.0) + 1.0
        avgs = snapshot.class_avgs()
        total = sum(alpha.values())
        predicted = sum(
            (share / total) * avgs[rank] for rank, share in alpha.items()
        )
        return {
            "degraded": True,
            "source": "last-good-characterization",
            "machine": snapshot.machine_name,
            "target": params["target"],
            "mode": params["mode"],
            "streams": list(params["streams"]),
            "predicted_gbps": predicted,
            "class_fractions": {
                str(rank): share / total for rank, share in sorted(alpha.items())
            },
        }
