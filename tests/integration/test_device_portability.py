"""Device portability: the pipeline works with devices on any node.

The paper attaches everything to node 7; a downstream user's adapter
might sit behind any I/O hub.  Moving the reference devices to another
node must leave the whole pipeline consistent: Algorithm 1's model for
that node predicts the fio measurements against the relocated devices.
"""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.core.validation import class_ordering_holds, rank_correlation
from repro.devices.standard import attach_device, reference_nic, reference_ssd_array
from repro.rng import RngRegistry
from repro.topology.builders import reference_host


@pytest.fixture(scope="module", params=[0, 3])
def relocated(request):
    """The reference host with devices behind node 0 or node 3."""
    node = request.param
    machine = reference_host(with_devices=False)
    attach_device(machine, "nic", reference_nic(node_id=node))
    attach_device(machine, "ssd", reference_ssd_array(node_id=node))
    return machine, node


class TestRelocatedDevices:
    def test_model_predicts_relocated_rdma(self, relocated):
        machine, node = relocated
        registry = RngRegistry()
        model = IOModelBuilder(machine, registry=registry, runs=10).build(
            node, "write"
        )
        runner = FioRunner(machine, registry=registry)
        sweep = {
            n: runner.run(
                FioJob(name=f"port-{node}-{n}", engine="rdma", rw="write",
                       numjobs=4, cpunodebind=n)
            ).aggregate_gbps
            for n in machine.node_ids
        }
        assert rank_correlation(model.values, sweep) > 0.6
        assert class_ordering_holds(model, sweep, tolerance=0.06)

    def test_local_class_contains_device_node(self, relocated):
        machine, node = relocated
        model = IOModelBuilder(machine, registry=RngRegistry(), runs=5).build(
            node, "read"
        )
        assert node in model.class_by_rank(1).node_ids

    def test_irq_penalty_follows_the_device(self, relocated):
        machine, node = relocated
        runner = FioRunner(machine, RngRegistry())
        neighbour = next(
            n for n in machine.packages[machine.node(node).package_id].node_ids
            if n != node
        )
        local = runner.run(
            FioJob(name=f"irq-l{node}", engine="tcp", rw="send",
                   numjobs=4, cpunodebind=node)
        ).aggregate_gbps
        nearby = runner.run(
            FioJob(name=f"irq-n{node}", engine="tcp", rw="send",
                   numjobs=4, cpunodebind=neighbour)
        ).aggregate_gbps
        assert nearby > local
