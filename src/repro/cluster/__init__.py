"""Two-host transfers: the paper's Fig. 2 testbed.

The network experiments (§IV-B1/2) run between two identical hosts
connected back to back over 40 GbE; the paper varies the NUMA binding
on the *sender* side and on the *receiver* side separately, keeping the
far end well tuned.  The single-host fio engines bake the "far end well
tuned" assumption into their calibrated profiles; this package lifts it:
a :class:`~repro.cluster.twohost.TwoHostSystem` composes a sender-side
service level, a receiver-side service level, and the wire, so both
ends' placements (and both ends' interrupt and oversubscription
effects) matter at once.
"""

from repro.cluster.fabric import SwitchedCluster, Transfer, TransferOutcome
from repro.cluster.link import EthernetLink
from repro.cluster.twohost import NetJob, TwoHostSystem

__all__ = [
    "EthernetLink",
    "TwoHostSystem",
    "NetJob",
    "SwitchedCluster",
    "Transfer",
    "TransferOutcome",
]
