"""The coherent fabric: HyperTransport links and traffic planes.

The paper's central empirical fact is that the *same physical fabric*
shows different effective topologies to different traffic classes:

* **PIO traffic** (CPU load/store streams, i.e. what STREAM measures) is
  bounded by round-trip latency times per-core outstanding requests, and
  follows the coherent request/response routing.
* **DMA/bulk traffic** (device DMA, and bulk non-temporal ``memcpy``,
  which is what the paper's Algorithm 1 exploits) is bounded by link
  width x transfer rate x buffer credits, and may be routed differently
  (AMD BKDG routing registers are per virtual channel).

This package models a **directed** link with independent parameters for
the two planes, so both behaviours coexist on one machine description.
"""

from repro.interconnect.link import DirectedLink, LinkKind, link_pair
from repro.interconnect.planes import PLANE_DMA, PLANE_PIO, Plane, validate_plane

__all__ = [
    "DirectedLink",
    "LinkKind",
    "link_pair",
    "PLANE_DMA",
    "PLANE_PIO",
    "Plane",
    "validate_plane",
]
