"""The placement service: sync dispatch core + asyncio transports.

Layering, outermost in:

* :class:`AsyncPlacementServer` — TCP transport.  A bounded admission
  queue gives **explicit backpressure** (queue full → immediate typed
  ``overloaded`` rejection, never silent buffering); worker tasks apply
  **per-request deadlines** with real cancellation at the await point;
  :meth:`~AsyncPlacementServer.drain` stops admissions, finishes
  queued work, then closes — every in-flight request still gets its
  response.
* :func:`serve_stdio` — the strictly serial stdio transport: read a
  line, answer it, repeat.  Serial order makes the response stream a
  pure function of the request stream (the deterministic-twin property
  the smoke test pins).
* :class:`PlacementService` — the shared synchronous dispatch core:
  decode → validate → breaker gate → backend → encode.  Both
  transports and the chaos soak drive this one object, so robustness
  semantics cannot drift between them.

Breaker semantics (the degraded-mode contract):

* breaker **closed** → the solver is consulted.  A solver failure is
  counted; when the count trips the breaker *and* a last-good snapshot
  covers the request, the reply downgrades to the degraded answer in
  the same turn — otherwise a typed ``solver_error``.
* breaker **open** → the solver is not touched; last-good class-level
  answers are served (marked ``degraded: true``), or ``unavailable``
  when no snapshot covers the request.
* breaker **half-open** → exactly one probe request reaches the solver;
  success closes the breaker, failure re-opens it with a longer window.

``health``, ``ready`` and ``metrics`` never touch the solver and are
answered even while the breaker is open or the server is draining.

Every served line is also folded into the service's **live metrics
plane** (:mod:`repro.obs.live`): one latency observation into a
per-``(method, tier)`` streaming histogram, one completed span into
the flight recorder, and — for errors, degraded answers, slow requests
and breaker trips — a flight-recorder event.  All of it is measured on
the service clock (no wall-clock reads of its own), so the
deterministic soak's logical clock keeps same-seed twins
byte-identical, and all of it is plain dict/array updates gated under
5 % of serving throughput by ``scripts/bench_service.py``.
"""

from __future__ import annotations

import asyncio
import sys
import time
from collections import Counter
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.obs import recorder as _obs
from repro.obs.live import DriftWatch, LivePlane
from repro.service.backend import SOLVER_FAILURES, AdvisoryBackend
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import (
    METHODS,
    decode_request,
    encode_message,
    encode_result_line,
    error_response,
    result_response,
    validate_params,
)
from repro.service.tiers import WireAnswer

__all__ = [
    "ServiceConfig",
    "PlacementService",
    "AsyncPlacementServer",
    "serve_stdio",
]

#: Pre-built per-tier counter names — an f-string per answered request
#: is measurable at tier-1 rates.
_TIER_COUNTERS = {t: f"service.tier.{t}.answers" for t in (1, 2, 3)}

#: Flat-buffer entries (4 per line) that force a drain — a memory
#: bound; every read of the plane (``metrics``, a flight dump) drains
#: too.  The buffer is a flat list of scalars rather than one tuple
#: per line deliberately: floats, strings and ints are invisible to
#: the cyclic GC, so a full buffer adds nothing to gen-0 collection
#: scans — with per-line tuples the GC tax alone was ~1us per request.
_OBS_BATCH = 4 * 4096

#: Error responses have no ``result``; a shared empty dict keeps the
#: hot-path tier lookup branch-free.
_NO_RESULT: dict = {}

#: Self-healing counters pre-seeded at zero so `metrics`/`obs scrape`
#: always expose the repair plane, active or not.
_HEALING_COUNTERS = (
    "routing.rerouted_pairs",
    "routing.reroute_skipped_pairs",
    "service.repair.started",
    "service.repair.promoted",
    "service.repair.failed",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for the service transports and robustness machinery."""

    host: str = "127.0.0.1"
    port: int = 8713
    queue_limit: int = 32  # bounded admission queue (backpressure)
    workers: int = 4  # concurrent solver-side workers (TCP transport)
    failure_threshold: int = 3  # consecutive solver failures that trip

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ServiceError(
                "invalid_params",
                f"queue_limit must be >= 1, got {self.queue_limit}",
            )
        if self.workers < 1:
            raise ServiceError(
                "invalid_params", f"workers must be >= 1, got {self.workers}"
            )


class PlacementService:
    """The synchronous dispatch core shared by every transport.

    Parameters
    ----------
    backend:
        The advisory backend (models, snapshots, warm sessions).
    breaker:
        Circuit breaker guarding the solver path (defaults to a
        3-failure breaker on the wall clock).
    clock:
        Monotonic seconds; injected by the soak for determinism.
    live:
        The live metrics plane (defaults to a fresh always-on
        :class:`~repro.obs.live.LivePlane`); pass a
        :class:`~repro.obs.live.NullLivePlane` to opt out — that is
        how the benchmark measures the plane's overhead.
    drift_threshold:
        Relative deviation of served fast-tier answers from a fresh
        solve past which the drift watch fires (see
        :class:`~repro.obs.live.DriftWatch`).
    slow_request_s:
        Requests slower than this (service clock) leave a ``slow``
        flight-recorder event.
    """

    def __init__(
        self,
        backend: AdvisoryBackend,
        breaker: CircuitBreaker | None = None,
        clock=time.monotonic,
        live: LivePlane | None = None,
        drift_threshold: float = 0.10,
        slow_request_s: float = 0.25,
    ) -> None:
        self.backend = backend
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.clock = clock
        # One clock rules the whole stack: staleness tags on tiered
        # answers tick on the service clock, so the soak's logical
        # clock makes same-seed twins byte-identical.
        backend.clock = clock
        self.live = live if live is not None else LivePlane()
        self.drift = (
            DriftWatch(self.live, threshold=drift_threshold)
            if self.live.enabled else None
        )
        self.slow_request_s = slow_request_s
        self.started_at = clock()
        # The backend reports through the same plane/watch (solve-time
        # histogram, drift estimators) — assigned like the clock is.
        backend.live = self.live
        backend.drift = self.drift
        backend._drift_note = (
            None if self.drift is None else self.drift.note_fast
        )
        # Breaker trips land in the flight recorder (and, when a sink
        # is wired — the TCP CLI wires stderr — dump it immediately).
        self.breaker.on_trip = self._on_breaker_trip
        self.flight_dump_sink = None
        # The self-healing repair loop, assigned by
        # RepairSupervisor.attach (None = no supervision, the pre-PR-10
        # behavior: fingerprint mismatches bypass the fast tiers and
        # nothing re-characterizes in the background).
        self.repair = None
        if self.live.enabled:
            for name in _HEALING_COUNTERS:
                self.live.count(name, 0)
        solver_pool = getattr(backend, "solver_pool", None)
        if solver_pool is not None:
            # Graft the fabric pool: utilization gauges read live at
            # snapshot time, dispatch latency into the plane's hists.
            self.live.graft_gauges("fabric_pool", solver_pool.stats)
            solver_pool.live = self.live if self.live.enabled else None
        # (method, tier) -> Hist, prebuilt on first use — an f-string
        # per request is measurable at tier-1 rates.
        self._lat_hists: dict[tuple, object] = {}
        # Per-line observation buffer (None when the plane is off):
        # the hot path appends four scalars per line — flat, so the
        # buffer is invisible to the GC; _drain_obs folds them.
        self._obs_buf: "list | None" = [] if self.live.enabled else None
        # A hand-advanced clock (the soak's LogicalClock) cannot move
        # within a synchronous handle_line call, so per-line elapsed
        # is identically 0.0 — skip the second clock read on the hot
        # path and spend it only on real clocks.
        self._obs_end = None if hasattr(clock, "advance") else clock
        # Typed-error events ride the same drain cycle as flat
        # (t, kind) pairs: the error path is hot under hostile traffic
        # and must not pay a per-line ring insert.
        self._obs_err: list = []
        self.draining = False
        self.requests = 0
        self.degraded_served = 0
        self.tier_answers: dict[int, int] = {1: 0, 2: 0, 3: 0}
        self.errors: dict[str, int] = {}

    # --- bookkeeping -------------------------------------------------------
    def _on_breaker_trip(self) -> None:
        """The breaker just opened: event, counter, immediate dump."""
        self._drain_obs()  # the dump must show the lines leading here
        live = self.live
        live.count("service.breaker.trips")
        live.flight.note_event(self.clock(), "breaker-trip", {
            "trips": self.breaker.trip_count, "state": self.breaker.state,
        })
        sink = self.flight_dump_sink
        if sink is not None:
            sink(live.flight.dump())

    def _error(self, req_id, exc: ServiceError) -> dict:
        self.errors[exc.kind] = self.errors.get(exc.kind, 0) + 1
        _obs.count(f"service.error.{exc.kind}")
        if self._obs_buf is not None:
            self._obs_err.extend((self.clock(), exc.kind))
        return error_response(req_id, exc)

    def _note_tier(self, result: dict) -> None:
        """Account which tier answered (live and degraded results alike)."""
        tier = result.get("tier")
        if tier in self.tier_answers:
            # The live plane's per-tier counters are not bumped here:
            # the batched drain derives them from the buffered tiers.
            self.tier_answers[tier] += 1
            _obs.count(_TIER_COUNTERS[tier])

    def health_payload(self) -> dict:
        """The ``health`` result: breaker, pools, counters."""
        # Flight occupancy must reflect every line, but health is on
        # the hot soak path — adjust arithmetically instead of paying
        # a small drain per call.
        occ = self.live.flight.occupancy()
        buf = self._obs_buf
        if buf:
            pending = len(buf) // 4
            occ["span_total"] += pending
            occ["spans"] = min(occ["spans"] + pending, occ["span_capacity"])
        errs = len(self._obs_err) // 2
        if errs:
            occ["event_total"] += errs
            occ["events"] = min(occ["events"] + errs, occ["event_capacity"])
        payload = {
            "status": "degraded" if self.breaker.state != CircuitBreaker.CLOSED
            else "ok",
            "uptime_s": round(max(0.0, self.clock() - self.started_at), 6),
            "breaker": self.breaker.state,
            "breaker_trips": self.breaker.trip_count,
            "draining": self.draining,
            "flight_recorder": occ,
            "machine": self.backend.machine.name,
            "requests": self.requests,
            "degraded_served": self.degraded_served,
            "errors": {k: self.errors[k] for k in sorted(self.errors)},
            "session_pool": self.backend.pool.stats(),
            "tiers": {
                "answers": {
                    str(t): self.tier_answers[t]
                    for t in sorted(self.tier_answers)
                },
                "coalesced": self.backend.coalesced,
                "solves": self.backend.solves,
                "max_staleness_s": self.backend.tier_max_staleness_s,
                "store": self.backend.tiers.stats(self.clock()),
            },
        }
        solver_pool = getattr(self.backend, "solver_pool", None)
        if solver_pool is not None:
            payload["solver_pool"] = solver_pool.stats()
        if self.repair is not None:
            payload["repair"] = self.repair.stats()
        return payload

    def ready_payload(self) -> dict:
        """The ``ready`` result: warm (and how warm) and not draining."""
        ready = self.backend.warmed and not self.draining
        return {"ready": ready, "warmed": self.backend.warmed,
                "warm_targets": len(getattr(self.backend, "warm_targets", ())),
                "draining": self.draining}

    def metrics_payload(self, flight: bool = False) -> dict:
        """The ``metrics`` result: the live plane, JSON-able.

        Counters, histogram summaries (per ``(method, tier)`` plus the
        merged per-method / per-tier views), grafted gauges, breaker
        and tier accounting, drift-watch state, and flight-recorder
        occupancy — with ``flight=True``, the full flight-recorder
        dump too.  Everything is read on the service clock; the
        payload is a pure function of the request history, which is
        what lets the soak's twin-diff gate pin it byte-identical and
        ``obs scrape`` hold a golden exposition.
        """
        self._drain_obs()
        snap = self.live.snapshot()
        payload = {
            "machine": self.backend.machine.name,
            "uptime_s": round(max(0.0, self.clock() - self.started_at), 6),
            "requests": self.requests,
            "degraded_served": self.degraded_served,
            "breaker": {
                "state": self.breaker.state,
                "trips": self.breaker.trip_count,
            },
            "tiers": {
                str(t): self.tier_answers[t]
                for t in sorted(self.tier_answers)
            },
            "errors": {k: self.errors[k] for k in sorted(self.errors)},
            "counters": snap["counters"],
            "histograms": snap["histograms"],
            "gauges": snap["gauges"],
            "flight_recorder": snap["flight_recorder"],
        }
        if self.drift is not None:
            payload["drift"] = self.drift.stats()
        if flight:
            payload["flight"] = self.live.flight.dump()
        return payload

    # --- dispatch ----------------------------------------------------------
    def _execute(self, method: str, params: dict) -> dict:
        if method == "advise":
            return self.backend.advise(**params)
        if method == "plan":
            return self.backend.plan(**params)
        if method == "predict_eq1":
            return self.backend.predict_eq1(**params)
        if method == "classify":
            return self.backend.classify(**params)
        raise ServiceError("method_not_found", f"unknown method {method!r}")

    def _degraded_or_error(self, req_id, method, params, exc: ServiceError):
        answer = self.backend.degraded_answer(method, params)
        if answer is not None:
            self.degraded_served += 1
            _obs.count("service.degraded_served")
            if self.live.enabled:
                self.live.flight.note_event(
                    self.clock(), "degraded", {"method": method}
                )
            self._note_tier(answer)
            return result_response(req_id, answer)
        return self._error(req_id, exc)

    def handle_request(self, req_id, method: str, params, deadline_ms) -> dict:
        """Dispatch one decoded request; always returns a response dict."""
        self.requests += 1
        if _obs.enabled():
            _obs.count("service.requests")
            with _obs.span("service.request", method=method):
                return self._dispatch(req_id, method, params, deadline_ms)
        return self._dispatch(req_id, method, params, deadline_ms)

    def _dispatch(self, req_id, method: str, params, deadline_ms) -> dict:
        try:
            filled = validate_params(method, params)
        except ServiceError as exc:
            return self._error(req_id, exc)
        if method == "health":
            return result_response(req_id, self.health_payload())
        if method == "ready":
            return result_response(req_id, self.ready_payload())
        if method == "metrics":
            return result_response(
                req_id, self.metrics_payload(filled["flight"])
            )
        if self.draining:
            return self._error(
                req_id,
                ServiceError(
                    "shutting_down", "server is draining; not accepting work"
                ),
            )
        if deadline_ms is not None and deadline_ms <= 0:
            return self._error(
                req_id,
                ServiceError(
                    "deadline_exceeded",
                    f"deadline of {deadline_ms} ms expired before dispatch",
                    data={"deadline_ms": deadline_ms},
                ),
            )
        if not self.breaker.allow():
            return self._degraded_or_error(
                req_id, method, filled,
                ServiceError(
                    "unavailable",
                    f"circuit breaker is {self.breaker.state} and no "
                    f"last-good characterization covers this request",
                    data={"breaker": self.breaker.state},
                ),
            )
        try:
            result = self._execute(method, filled)
        except ServiceError as exc:
            # Caller mistake (e.g. unknown node): not a solver failure.
            return self._error(req_id, exc)
        except SOLVER_FAILURES as exc:
            self.breaker.record_failure()
            _obs.count("service.solver_failures")
            if self.breaker.state != CircuitBreaker.CLOSED:
                return self._degraded_or_error(
                    req_id, method, filled,
                    ServiceError(
                        "solver_error",
                        f"{type(exc).__name__}: {exc}",
                        data={"breaker": self.breaker.state},
                    ),
                )
            return self._error(
                req_id,
                ServiceError(
                    "solver_error",
                    f"{type(exc).__name__}: {exc}",
                    data={"breaker": self.breaker.state},
                ),
            )
        self.breaker.record_success()
        self._note_tier(result)
        return result_response(req_id, result)

    def _drain_obs(self) -> None:
        """Fold the buffered per-line observations into the live plane.

        The hot path only appends four scalars per answered line —
        ``t, method, wall_s, tier``, flat (see :meth:`handle_line`);
        everything heavier happens here, batched: the buffer is
        grouped by ``(method, tier, wall_s)`` — one C-speed
        :class:`Counter` pass; on the deterministic logical clock a
        whole batch collapses to a handful of groups — then each group
        lands as one :meth:`~repro.obs.live.Hist.record_many` plus one
        tier-counter update, and the newest ``span_capacity`` lines
        enter the flight-recorder span ring as one ``deque.extend``.
        ``slow`` events are also detected here (a slow group is
        rescanned for its lines), so they reach the event ring at the
        next drain rather than mid-request.  Drains run when the
        buffer fills (:data:`_OBS_BATCH`) and before every read of the
        plane (``metrics``, breaker-trip and crash dumps), so no
        reader ever sees a stale view.
        """
        buf = self._obs_buf
        err = self._obs_err
        if not buf and not err:
            return
        live = self.live
        lat = self._lat_hists
        counters = live.counters
        flight = live.flight
        if err:
            note = flight.note_event
            for i in range(0, len(err), 2):
                note(err[i], "error", {"kind": err[i + 1]})
            err.clear()
        if not buf:
            return
        slow_s = self.slow_request_s
        slow_seen = False
        methods = buf[1::4]
        walls = buf[2::4]
        tiers = buf[3::4]
        w0 = walls[0]
        if walls.count(w0) == len(walls):
            # One wall value for the whole batch — the rule on a
            # logical clock, where elapsed is identically zero: group
            # on the cheaper 2-tuple.
            groups = [
                (m, t, w0, n)
                for (m, t), n in Counter(zip(methods, tiers)).items()
            ]
        else:
            groups = [
                (m, t, w, n)
                for (m, t, w), n in Counter(
                    zip(methods, tiers, walls)
                ).items()
            ]
        for method, tier, wall_s, n in groups:
            key = (method, tier)
            hist = lat.get(key)
            if hist is None:
                if method not in METHODS:
                    # Bound hist cardinality against hostile names.
                    method = "?"
                    key = ("?", tier)
                    hist = lat.get(key)
                if hist is None:
                    hist = lat[key] = live.hist(
                        f"service.latency/{method}/{tier}"
                    )
            hist.record_many(wall_s, n)
            name = _TIER_COUNTERS.get(tier)
            if name is not None:
                counters[name] = counters.get(name, 0) + n
            if wall_s >= slow_s:
                slow_seen = True
        if slow_seen:
            for i in range(0, len(buf), 4):
                wall_s = buf[i + 2]
                if wall_s >= slow_s:
                    method = buf[i + 1]
                    flight.note_event(buf[i], "slow", {
                        "method": method if method in METHODS else "?",
                        "wall_s": round(wall_s, 6),
                    })
        lines = len(buf) // 4
        keep = flight.span_capacity
        if lines > keep:
            flight.span_total += lines - keep  # evicted before arrival
            tail = buf[-4 * keep:]
            flight.note_spans(
                list(zip(tail[0::4], tail[1::4], tail[2::4], tail[3::4]))
            )
        else:
            flight.note_spans(list(zip(buf[0::4], methods, walls, tiers)))
        buf.clear()
        drift = self.drift
        if drift is not None:
            drift.fold_if_large()  # its per-answer path skips the cap check

    def handle_line(self, line: str) -> str:
        """One wire line in, one wire line out — never a traceback."""
        started = self.clock()
        method = "-"
        try:
            req_id, method, params, deadline_ms = decode_request(line)
        except ServiceError as exc:
            response = self._error(None, exc)
        else:
            try:
                response = self.handle_request(
                    req_id, method, params, deadline_ms
                )
            except ServiceError as exc:
                response = self._error(req_id, exc)
            except Exception as exc:  # the sanitising wall: no tracebacks out
                response = self._error(
                    req_id,
                    ServiceError(
                        "internal_error",
                        f"internal error: {type(exc).__name__}",
                    ),
                )
        result = response.get("result")
        buf = self._obs_buf
        if buf is not None:
            # The whole per-line live-plane cost: four flat scalars
            # extended in (t, method, wall_s, tier) — plus one clock
            # read on real clocks only; histogram/counter folds, tier
            # counters and slow-event detection all happen batched in
            # _drain_obs.
            end = self._obs_end
            buf.extend((
                started, method,
                end() - started if end is not None else 0.0,
                (result or _NO_RESULT).get("tier", "-"),
            ))
            if len(buf) >= _OBS_BATCH:
                self._drain_obs()
        if type(result) is WireAnswer:
            # Warm tiers carry their pre-encoded wire form: splice the
            # request id and live staleness instead of re-encoding —
            # byte-identical to encode_message on the same envelope.
            return encode_result_line(
                response["id"], result.wire_pre,
                result["staleness_s"], result.wire_post,
            )
        return encode_message(response)


def serve_stdio(service: PlacementService, stdin=None, stdout=None) -> int:
    """Serve line requests serially from ``stdin`` to ``stdout``.

    Blank lines are skipped; EOF ends the loop.  Returns the number of
    requests answered.  Strictly serial, so the response stream is a
    deterministic function of the request stream — and when the service
    runs on a :class:`~repro.service.soak.LogicalClock` (the CLI's
    stdio mode does), the clock ticks once per answered line, so the
    ``staleness_s`` tags are a pure function of the request stream too.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    advance = getattr(service.clock, "advance", None)
    answered = 0
    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        stdout.write(service.handle_line(line))
        stdout.flush()
        answered += 1
        if advance is not None:
            advance()
    return answered


class AsyncPlacementServer:
    """The TCP transport: bounded admission, deadlines, graceful drain."""

    def __init__(
        self, service: PlacementService, config: ServiceConfig | None = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServiceConfig()
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self.rejected = 0

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    # --- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and launch the worker pool."""
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"service-worker-{i}")
            for i in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish queued work, close.

        After ``drain`` returns, every admitted request has been
        answered, every worker has exited, and the listener is closed.
        """
        self.service.draining = True
        if self._server is not None:
            self._server.close()
        if self._queue is not None:
            await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._server is not None:
            await self._server.wait_closed()

    # --- data path ---------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()  # one response write at a time per client
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                await self._admit(line, writer, lock)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _admit(self, line, writer, lock) -> None:
        """Bounded admission: reject instantly when the queue is full."""
        assert self._queue is not None
        if self.service.draining:
            await self._reply(
                writer, lock,
                self._typed_line(line, "shutting_down",
                                 "server is draining; not accepting work"),
            )
            return
        item = (line, writer, lock, self.service.clock())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.rejected += 1
            _obs.count("service.rejected")
            await self._reply(
                writer, lock,
                self._typed_line(
                    line, "overloaded",
                    f"admission queue full "
                    f"({self.config.queue_limit} requests); retry later",
                ),
            )

    def _typed_line(self, line: str, kind: str, message: str) -> str:
        """A typed error line that still echoes the request id if parseable."""
        try:
            req_id, _method, _params, _deadline = decode_request(line)
        except ServiceError:
            req_id = None
        return encode_message(
            self.service._error(req_id, ServiceError(kind, message))
        )

    async def _reply(self, writer, lock, payload: str) -> None:
        async with lock:
            try:
                writer.write(payload.encode("utf-8"))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to tell it

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            line, writer, lock, admitted_at = await self._queue.get()
            try:
                service = self.service
                if service.live.enabled:
                    service.live.record(
                        "service.queue_wait",
                        service.clock() - admitted_at,
                    )
                try:
                    payload = await self._answer(line, admitted_at)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # keep the worker alive, always
                    payload = self._typed_line(
                        line, "internal_error",
                        f"internal error: {type(exc).__name__}",
                    )
                await self._reply(writer, lock, payload)
            finally:
                self._queue.task_done()

    async def _answer(self, line: str, admitted_at: float) -> str:
        """Execute one request off-loop, enforcing its deadline."""
        try:
            _req_id, _method, params, deadline_ms = decode_request(line)
        except ServiceError:
            deadline_ms = None
        if deadline_ms is None:
            return await asyncio.to_thread(self.service.handle_line, line)
        waited_s = self.service.clock() - admitted_at
        remaining_s = deadline_ms / 1000.0 - waited_s
        if remaining_s <= 0:
            return self._typed_line(
                line, "deadline_exceeded",
                f"deadline of {deadline_ms} ms expired while queued",
            )
        try:
            return await asyncio.wait_for(
                asyncio.to_thread(self.service.handle_line, line),
                timeout=remaining_s,
            )
        except asyncio.TimeoutError:
            _obs.count("service.deadline_cancelled")
            solver_pool = getattr(self.service.backend, "solver_pool", None)
            if solver_pool is not None:
                # The abandoned solve may still be running in a fabric
                # worker; the future is dropped, the slot stays busy
                # until that solve finishes, and the pool accounts it.
                solver_pool.note_abandoned()
            return self._typed_line(
                line, "deadline_exceeded",
                f"deadline of {deadline_ms} ms expired mid-solve; "
                f"request cancelled",
            )
