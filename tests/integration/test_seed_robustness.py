"""The headline results must not depend on the lucky default seed."""

import pytest

from repro.bench.fio import FioRunner
from repro.bench.jobfile import FioJob
from repro.core.iomodel import IOModelBuilder
from repro.core.predictor import MixturePredictor
from repro.experiments.paper_values import TABLE4_CLASSES, TABLE5_CLASSES
from repro.rng import RngRegistry


@pytest.mark.parametrize("seed", [1, 777, 424242])
class TestSeedRobustness:
    def test_model_classes_stable_across_seeds(self, host, seed):
        builder = IOModelBuilder(host, registry=RngRegistry(seed), runs=50)
        write_model, read_model = builder.build_both(7)
        assert [sorted(c.node_ids) for c in write_model.classes] == TABLE4_CLASSES
        assert [sorted(c.node_ids) for c in read_model.classes] == TABLE5_CLASSES

    def test_eq1_error_small_across_seeds(self, host, seed):
        registry = RngRegistry(seed)
        model = IOModelBuilder(host, registry=registry, runs=50).build(7, "read")
        runner = FioRunner(host, registry)
        sweep = {
            n: runner.run(
                FioJob(name=f"sr-{seed}-{n}", engine="rdma", rw="read",
                       numjobs=4, cpunodebind=n)
            ).aggregate_gbps
            for n in host.node_ids
        }
        predictor = MixturePredictor(model, sweep)
        mixed = runner.run(
            FioJob(name=f"sr-mix-{seed}", engine="rdma", rw="read",
                   numjobs=4, stream_nodes=(2, 2, 0, 0))
        )
        report = predictor.validate(mixed.aggregate_gbps, [2, 2, 0, 0])
        assert report.relative_error < 0.08

    def test_rdma_reversal_across_seeds(self, host, seed):
        runner = FioRunner(host, RngRegistry(seed))
        sweep = {
            n: runner.run(
                FioJob(name=f"rev-{seed}-{n}", engine="rdma", rw="read",
                       numjobs=4, cpunodebind=n)
            ).aggregate_gbps
            for n in (0, 1, 2, 3)
        }
        assert (sweep[2] + sweep[3]) / 2 > (sweep[0] + sweep[1]) / 2
