"""Run manifests: the auditable summary written beside every trace.

A manifest is one JSON document recording *what ran and what it did*:
the command and argv, the git revision, the effective config, the seed
registry state (root seed plus per-stream draw counts), per-phase span
aggregates, and the full metric snapshot.  Together with the JSONL
trace it makes every number a run printed attributable after the fact.

The schema is validated structurally (:func:`validate_manifest`) with a
plain declarative spec — no external JSON-schema dependency.  Wall
times live only here and in the trace; byte-compared outputs (stdout,
EXPERIMENTS.md) never contain them.
"""

from __future__ import annotations

import json
import subprocess

from repro.errors import ObsError

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_SCHEMA",
    "git_sha",
    "build_manifest",
    "validate_manifest",
    "write_manifest",
    "load_manifest",
    "diff_manifests",
]

#: Bumped whenever a field is added/renamed; readers check compatibility.
MANIFEST_SCHEMA_VERSION = 1

#: Declarative structural schema: field -> type, or a nested dict of the
#: same shape.  ``(type, None)`` marks a nullable field.
MANIFEST_SCHEMA: dict = {
    "schema_version": int,
    "command": str,
    "argv": list,
    "git_sha": str,
    "config": dict,
    "seed": {
        "root_seed": (int, type(None)),
        "streams": dict,
    },
    "phases": dict,
    "metrics": {
        "counters": dict,
        "gauges": dict,
    },
    "spans": {
        "total": int,
        "max_depth": int,
    },
    "error": (str, type(None)),
    "trace_file": str,
}


def git_sha() -> str:
    """The working tree's HEAD commit, or ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def build_manifest(
    recorder,
    command: str = "",
    argv: "list[str] | None" = None,
    seed: int | None = None,
    config: dict | None = None,
    error: str | None = None,
) -> dict:
    """Assemble the manifest dict for one finished recording.

    ``recorder`` is the :class:`~repro.obs.recorder.TraceRecorder` that
    just ran; its metrics registry supplies the counter snapshot and the
    per-stream RNG draw counts (``rng.draws/<stream>`` counters).
    """
    snapshot = recorder.metrics.snapshot()
    prefix = "rng.draws/"
    streams = {
        name[len(prefix):]: value
        for name, value in snapshot["counters"].items()
        if name.startswith(prefix)
    }
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else [],
        "git_sha": git_sha(),
        "config": dict(config) if config else {},
        "seed": {"root_seed": seed, "streams": streams},
        "phases": recorder.phase_totals(),
        "metrics": snapshot,
        "spans": {"total": len(recorder.events), "max_depth": recorder.max_depth},
        "error": error,
        "trace_file": "trace.jsonl",
    }


def _check(spec, value, path: str, problems: list[str]) -> None:
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key, sub in spec.items():
            if key not in value:
                problems.append(f"{path}.{key}: missing")
            else:
                _check(sub, value[key], f"{path}.{key}", problems)
        return
    types = spec if isinstance(spec, tuple) else (spec,)
    # bool is an int subclass; a True where an int belongs is a bug.
    if isinstance(value, bool) and bool not in types:
        problems.append(f"{path}: expected {spec}, got bool")
    elif not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        problems.append(f"{path}: expected {expected}, got {type(value).__name__}")


def validate_manifest(data: dict) -> None:
    """Raise :class:`~repro.errors.ObsError` unless ``data`` fits the schema."""
    if not isinstance(data, dict):
        raise ObsError(f"manifest must be an object, got {type(data).__name__}")
    problems: list[str] = []
    _check(MANIFEST_SCHEMA, data, "manifest", problems)
    version = data.get("schema_version")
    if isinstance(version, int) and version > MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"manifest.schema_version: {version} is newer than supported "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    for name, entry in (data.get("phases") or {}).items():
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("count"), int)
            or not isinstance(entry.get("wall_s"), (int, float))
        ):
            problems.append(f"manifest.phases[{name!r}]: expected {{count, wall_s}}")
    if problems:
        raise ObsError("invalid manifest: " + "; ".join(problems))


def write_manifest(data: dict, path) -> None:
    """Validate ``data`` and write it as pretty JSON to ``path``.

    The write is atomic (temp + fsync + rename): a reader — or a
    crash-recovery byte-compare — never sees a torn manifest.
    """
    validate_manifest(data)
    from repro.journal.atomic import atomic_write_json

    atomic_write_json(path, data, indent=2, sort_keys=True)


def load_manifest(path) -> dict:
    """Read and validate a manifest file."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError as exc:
        raise ObsError(f"no manifest at {path}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"manifest {path} is not valid JSON: {exc}") from exc
    validate_manifest(data)
    return data


def diff_manifests(a: dict, b: dict) -> dict:
    """Structured comparison of two manifests.

    Returns::

        {"identity": {...},          # command/seed/git differences
         "config": {key: [a, b]},    # differing config entries
         "counters": {name: [a, b]}, # differing counter values
         "gauges": {name: [a, b]},
         "phases": {name: {"wall_s": [a, b], "count": [a, b]}},
         "deterministic": bool}      # True when counters+config agree

    Wall times always differ between runs; determinism is judged on
    counters and config only.
    """
    identity = {}
    for key in ("command", "git_sha"):
        if a.get(key) != b.get(key):
            identity[key] = [a.get(key), b.get(key)]
    if a["seed"]["root_seed"] != b["seed"]["root_seed"]:
        identity["root_seed"] = [a["seed"]["root_seed"], b["seed"]["root_seed"]]

    def _dict_diff(da: dict, db: dict) -> dict:
        out = {}
        for key in sorted(set(da) | set(db)):
            va, vb = da.get(key), db.get(key)
            if va != vb:
                out[key] = [va, vb]
        return out

    config = _dict_diff(a.get("config", {}), b.get("config", {}))
    counters = _dict_diff(a["metrics"]["counters"], b["metrics"]["counters"])
    gauges = _dict_diff(a["metrics"]["gauges"], b["metrics"]["gauges"])
    phases = {}
    for name in sorted(set(a["phases"]) | set(b["phases"])):
        pa = a["phases"].get(name, {"count": 0, "wall_s": 0.0})
        pb = b["phases"].get(name, {"count": 0, "wall_s": 0.0})
        entry = {}
        if pa["count"] != pb["count"]:
            entry["count"] = [pa["count"], pb["count"]]
        entry["wall_s"] = [pa["wall_s"], pb["wall_s"]]
        phases[name] = entry
    return {
        "identity": identity,
        "config": config,
        "counters": counters,
        "gauges": gauges,
        "phases": phases,
        "deterministic": not identity.get("root_seed") and not config and not counters,
    }
