"""Unit tests for the live metrics plane (`repro.obs.live`)."""

import json
import math

import pytest

from repro.obs.live import (
    EVENT_CAPACITY,
    HIST_BASE,
    REGIME_BANDWIDTH,
    REGIME_CONTENTION,
    REGIME_LATENCY,
    REGIME_RECLASSIFIED,
    SPAN_CAPACITY,
    ZERO_BUCKET,
    DriftWatch,
    FlightRecorder,
    Hist,
    LivePlane,
    NullLivePlane,
    classify_regime,
    render_scrape,
)


class TestHist:
    def test_empty(self):
        h = Hist()
        assert h.count == 0
        assert h.quantile(0.5) is None
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] is None and d["p99"] is None

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = Hist()
        h.record(0.0)
        h.record(-1.5)
        assert h.counts == {ZERO_BUCKET: 2}
        assert h.quantile(0.99) == 0.0
        assert h.min == -1.5 and h.max == 0.0

    def test_bucket_bounds_contain_value(self):
        for v in (1e-9, 0.001, 0.37, 1.0, 7.25, 1e6):
            idx = Hist.bucket_index(v)
            upper = Hist.bucket_upper(idx)
            assert v <= upper
            assert v > upper / HIST_BASE or math.isclose(v, upper / HIST_BASE)

    def test_exact_moments(self):
        h = Hist()
        values = [0.1, 0.2, 0.3, 0.0, 4.5]
        for v in values:
            h.record(v)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.min == 0.0 and h.max == 4.5

    def test_quantile_within_one_bucket(self):
        h = Hist()
        for i in range(1, 101):
            h.record(i / 100.0)
        for q in (0.5, 0.9, 0.99):
            true = q  # uniform 0.01..1.00
            got = h.quantile(q)
            assert got >= true - 1e-12
            assert got <= true * HIST_BASE + 1e-12

    def test_merge_equals_concatenated_stream(self):
        a, b, c = Hist(), Hist(), Hist()
        left = [0.01, 0.5, 0.0, 3.0]
        right = [0.02, 0.5, 9.0]
        for v in left:
            a.record(v)
            c.record(v)
        for v in right:
            b.record(v)
            c.record(v)
        a.merge(b)
        assert a.counts == c.counts
        assert a.count == c.count
        assert a.min == c.min and a.max == c.max
        assert a.sum == pytest.approx(c.sum)

    def test_to_dict_buckets_sorted_noncumulative(self):
        h = Hist()
        for v in (0.0, 1.0, 1.0, 100.0):
            h.record(v)
        uppers = [row[0] for row in h.to_dict()["buckets"]]
        assert uppers == sorted(uppers)
        assert sum(row[1] for row in h.to_dict()["buckets"]) == h.count


class TestFlightRecorder:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(span_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(event_capacity=0)

    def test_defaults(self):
        fr = FlightRecorder()
        occ = fr.occupancy()
        assert occ["span_capacity"] == SPAN_CAPACITY
        assert occ["event_capacity"] == EVENT_CAPACITY

    def test_unwrapped_order(self):
        fr = FlightRecorder(span_capacity=4, event_capacity=4)
        for i in range(3):
            fr.note_span(float(i), f"m{i}", 0.001 * i, tag=i)
        spans = fr.spans()
        assert [s["seq"] for s in spans] == [0, 1, 2]
        assert spans[0]["name"] == "m0" and spans[-1]["tag"] == 2

    def test_wraparound_keeps_newest_oldest_first(self):
        fr = FlightRecorder(span_capacity=4, event_capacity=2)
        for i in range(6):
            fr.note_span(float(i), "m", 0.0)
            fr.note_event(float(i), "error", {"i": i})
        spans = fr.spans()
        assert [s["seq"] for s in spans] == [2, 3, 4, 5]
        events = fr.events()
        assert [e["seq"] for e in events] == [4, 5]
        occ = fr.occupancy()
        assert occ["spans"] == 4 and occ["span_total"] == 6
        assert occ["events"] == 2 and occ["event_total"] == 6

    def test_dump_is_json_able(self):
        fr = FlightRecorder(span_capacity=2, event_capacity=2)
        fr.note_span(1.0, "advise", 0.25, tag=2)
        fr.note_event(1.5, "drift", {"deviation": 0.5})
        dump = json.loads(json.dumps(fr.dump()))
        assert dump["spans"][0]["name"] == "advise"
        assert dump["events"][0]["tags"] == {"deviation": 0.5}


class TestLivePlane:
    def test_counters_and_hists(self):
        plane = LivePlane()
        plane.count("a")
        plane.count("a", 2)
        plane.record("h", 0.5)
        assert plane.counters == {"a": 3}
        assert plane.hists["h"].count == 1

    def test_merged_hists_fold_method_and_tier_views(self):
        plane = LivePlane()
        plane.record("service.latency/advise/1", 0.001)
        plane.record("service.latency/advise/2", 0.002)
        plane.record("service.latency/health/-", 0.0)
        merged = plane.merged_hists()
        assert merged["service.latency.method.advise"].count == 2
        assert merged["service.latency.tier.1"].count == 1
        assert merged["service.latency.tier.2"].count == 1
        # '-' (untiered) answers get no tier aggregate
        assert "service.latency.tier.-" not in merged
        assert merged["service.latency.method.health"].count == 1
        assert list(merged) == sorted(merged)

    def test_snapshot_shape_and_gauges(self):
        plane = LivePlane()
        plane.graft_gauges("pool", lambda: {"jobs": 2})
        snap = plane.snapshot()
        assert snap["gauges"] == {"pool": {"jobs": 2}}
        assert set(snap) == {
            "counters", "histograms", "gauges", "flight_recorder",
        }

    def test_null_plane_is_inert(self):
        plane = NullLivePlane()
        assert plane.enabled is False
        plane.record("h", 1.0)
        plane.count("c")
        assert plane.hists == {} and plane.counters == {}


class TestClassifyRegime:
    def test_uniform_shift_is_bandwidth_bound(self):
        old = {0: 10.0, 1: 5.0}
        new = {0: 7.0, 1: 3.5}  # both -30%
        regime, shift = classify_regime(old, new, 0.10)
        assert regime == REGIME_BANDWIDTH
        assert shift == pytest.approx(0.30)

    def test_uneven_shift_is_contention_bound(self):
        old = {0: 10.0, 1: 5.0}
        new = {0: 5.0, 1: 5.0}  # one class halves, the other holds
        regime, _ = classify_regime(old, new, 0.10)
        assert regime == REGIME_CONTENTION

    def test_small_shift_is_latency_bound(self):
        old = {0: 10.0}
        new = {0: 10.2}
        regime, _ = classify_regime(old, new, 0.10)
        assert regime == REGIME_LATENCY

    def test_disjoint_ranks_is_reclassified(self):
        regime, shift = classify_regime({0: 1.0}, {1: 1.0}, 0.10)
        assert regime == REGIME_RECLASSIFIED
        assert shift == math.inf


class TestDriftWatch:
    def test_threshold_validation(self):
        plane = LivePlane()
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                DriftWatch(plane, threshold=bad)

    def test_first_solve_sets_reference_silently(self):
        plane = LivePlane()
        watch = DriftWatch(plane)
        assert watch.note_solve(7, "write", {0: 10.0}, now=0.0) is None
        assert watch.events == 0
        assert plane.counters == {}

    def test_stable_model_never_fires(self):
        plane = LivePlane()
        watch = DriftWatch(plane)
        watch.note_solve(7, "write", {0: 10.0}, now=0.0)
        for _ in range(5):
            watch.note_answer(7, "write", 10.0)
        assert watch.note_solve(7, "write", {0: 10.0}, now=1.0) is None
        assert plane.counters == {"service.drift.checks": 1}
        assert watch.stats()["events"] == 0

    def test_drift_fires_event_counters_and_flight(self):
        plane = LivePlane()
        watch = DriftWatch(plane, threshold=0.10)
        watch.note_solve(7, "write", {0: 10.0, 1: 5.0}, now=0.0)
        for _ in range(3):
            watch.note_answer(7, "write", 7.5)
        event = watch.note_solve(7, "write", {0: 6.0, 1: 3.0}, now=2.0)
        assert event is not None
        assert event["regime"] == REGIME_BANDWIDTH
        assert event["served_answers"] == 3
        assert event["deviation"] == pytest.approx(
            abs(7.5 - 4.5) / 4.5, rel=1e-6
        )
        assert plane.counters["service.drift.events"] == 1
        assert plane.counters[
            f"service.drift.regime.{REGIME_BANDWIDTH}"
        ] == 1
        drift_events = [
            e for e in plane.flight.events() if e["kind"] == "drift"
        ]
        assert len(drift_events) == 1
        assert drift_events[0]["tags"] == event
        assert watch.stats()["last"] == event

    def test_no_served_traffic_compares_superseded_model(self):
        plane = LivePlane()
        watch = DriftWatch(plane, threshold=0.10)
        watch.note_solve(7, "read", {0: 10.0}, now=0.0)
        event = watch.note_solve(7, "read", {0: 5.0}, now=1.0)
        assert event is not None
        assert event["served_answers"] == 0
        assert event["served_mean_gbps"] == pytest.approx(10.0)

    def test_served_estimator_resets_each_solve(self):
        plane = LivePlane()
        watch = DriftWatch(plane, threshold=0.10)
        watch.note_solve(7, "write", {0: 10.0}, now=0.0)
        watch.note_answer(7, "write", 10.0)
        watch.note_solve(7, "write", {0: 10.0}, now=1.0)
        assert (7, "write") not in watch.served


class TestRenderScrape:
    PAYLOAD = {
        "machine": "ref",
        "uptime_s": 1.5,
        "requests": 4,
        "degraded_served": 1,
        "breaker": {"state": "closed", "trips": 2},
        "tiers": {"1": 3, "2": 1},
        "errors": {"parse_error": 1},
        "counters": {"service.tier.1.answers": 3},
        "histograms": {
            "service.latency.tier.1": {
                "count": 3,
                "sum": 0.003,
                "min": 0.001,
                "max": 0.001,
                "buckets": [[0.001059, 3]],
                "p50": 0.001059,
                "p90": 0.001059,
                "p99": 0.001059,
            }
        },
        "gauges": {"fabric_pool": {"jobs": 2, "arenas": 1}},
        "drift": {"threshold": 0.1, "events": 0, "watched": 2, "last": None},
        "flight_recorder": {
            "spans": 4, "span_capacity": 256, "span_total": 4,
            "events": 0, "event_capacity": 64, "event_total": 0,
        },
    }

    def test_pure_function_stable_output(self):
        assert render_scrape(self.PAYLOAD) == render_scrape(self.PAYLOAD)

    def test_key_rows_present(self):
        text = render_scrape(self.PAYLOAD)
        assert "repro_uptime_seconds 1.5\n" in text
        assert "repro_service_requests_total 4\n" in text
        assert 'repro_breaker_state{state="closed"} 1\n' in text
        assert 'repro_service_tier_answers_total{tier="1"} 3\n' in text
        assert 'repro_service_errors_total{kind="parse_error"} 1\n' in text
        assert "repro_service_tier_1_answers_total 3\n" in text
        assert (
            'repro_service_latency_tier_1_seconds_bucket{le="+Inf"} 3\n'
            in text
        )
        assert "repro_service_latency_tier_1_seconds_count 3\n" in text
        assert (
            'repro_service_latency_tier_1_seconds{quantile="0.99"} 0.001059\n'
            in text
        )
        assert "repro_service_drift_watched 2\n" in text
        assert (
            'repro_flight_recorder_occupancy{ring="spans"} 4\n' in text
        )
        assert "repro_fabric_pool_jobs 2\n" in text

    def test_histogram_buckets_cumulative(self):
        payload = dict(self.PAYLOAD)
        payload["histograms"] = {
            "h": {
                "count": 3, "sum": 1.0, "min": 0.0, "max": 1.0,
                "buckets": [[0.0, 1], [1.0, 2]],
                "p50": 1.0, "p90": 1.0, "p99": 1.0,
            }
        }
        text = render_scrape(payload)
        assert 'repro_h_seconds_bucket{le="0.0"} 1\n' in text
        assert 'repro_h_seconds_bucket{le="1.0"} 3\n' in text

    def test_empty_payload_renders(self):
        assert render_scrape({}) == "\n"
