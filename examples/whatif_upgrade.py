#!/usr/bin/env python3
"""What-if studies: edit the fabric, re-run the characterisation.

Three scenarios against the reference host, all through
:mod:`repro.topology.modify` (the machine itself is immutable):

1. **BIOS fix** — re-provision the starved 2->7 request credits to the
   healthy level: write class 3 should dissolve.
2. **Cable failure** — lose the 0<->7 link: traffic reroutes and nodes
   {0,1} change class.
3. **Memory downgrade** — halve node 7's DRAM bandwidth: the local
   class-1 advantage shrinks.

Each scenario re-runs Algorithm 1 and prints before/after classes, plus
the measured RDMA_WRITE consequence of scenario 1.

Run:  python examples/whatif_upgrade.py
"""

from repro import reference_host
from repro.bench import FioJob, FioRunner
from repro.core import IOModelBuilder
from repro.devices.standard import attach_reference_devices
from repro.topology.modify import with_dram_gbps, with_link_credit, with_link_removed

def classes(machine, mode: str):
    """Class structure of node 7 under one mode."""
    model = IOModelBuilder(machine).build(7, mode)
    return [sorted(c.node_ids) for c in model.classes]

def main() -> None:
    base = reference_host(with_devices=False)
    print(f"baseline write classes: {classes(base, 'write')}")
    print(f"baseline read classes:  {classes(base, 'read')}\n")

    # --- 1. BIOS fix for the 2->7 request credits -------------------------
    fixed = with_link_credit(base, 2, 7, 0.87)
    print("scenario 1 — re-provision 2->7 request credits (0.52 -> 0.87):")
    print(f"  write classes: {classes(fixed, 'write')}")
    attach_reference_devices(fixed)
    runner = FioRunner(fixed)
    bw = runner.run(
        FioJob(name="wf-n2", engine="rdma", rw="write", numjobs=4, cpunodebind=2)
    ).aggregate_gbps
    print(f"  RDMA_WRITE from node 2: {bw:.1f} Gbps "
          f"(was ~17.1 on the stock host)\n")

    # --- 2. Cable failure --------------------------------------------------
    degraded = with_link_removed(base, 0, 7)
    print("scenario 2 — the 0<->7 cable fails:")
    print(f"  write classes: {classes(degraded, 'write')}")
    print(f"  read classes:  {classes(degraded, 'read')}")
    print(f"  node 0's write path now moves "
          f"{degraded.dma_path_gbps(0, 7):.1f} Gbps "
          f"(was {base.dma_path_gbps(0, 7):.1f})\n")

    # --- 3. Memory downgrade ----------------------------------------------
    slower = with_dram_gbps(base, 7, 30.0)
    print("scenario 3 — node 7's DRAM halved to 30 Gbps:")
    print(f"  write classes: {classes(slower, 'write')}")
    print(
        "  local copies now cap at the controller, so the class-1 "
        "advantage over class 2 narrows — memory, not the fabric, "
        "became the bottleneck."
    )


if __name__ == "__main__":
    main()
