"""Dispatch core and TCP transport: deadlines, backpressure, breaker, drain."""

import asyncio
import json
import threading

import pytest

from repro.retrying import RetryPolicy
from repro.rng import RngRegistry
from repro.service.backend import AdvisoryBackend
from repro.service.breaker import CircuitBreaker
from repro.service.server import (
    AsyncPlacementServer,
    PlacementService,
    ServiceConfig,
)
from repro.service.soak import LogicalClock, build_soak_plan


def line(method, params=None, req_id=1):
    msg = {"jsonrpc": "2.0", "id": req_id, "method": method}
    if params is not None:
        msg["params"] = params
    return json.dumps(msg)


@pytest.fixture()
def service(host):
    clock = LogicalClock()
    backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
    breaker = CircuitBreaker(
        failure_threshold=2,
        backoff=RetryPolicy(max_retries=0, base_delay_s=1.0,
                            multiplier=2.0, jitter=0.0),
        clock=clock,
    )
    return PlacementService(backend, breaker=breaker, clock=clock)


class TestDispatch:
    def test_advise_round_trip(self, service):
        out = json.loads(service.handle_line(line("advise", {
            "target": 7, "tasks": 4,
        })))
        assert out["result"]["degraded"] is False

    def test_health_and_ready(self, service):
        health = json.loads(service.handle_line(line("health")))["result"]
        assert health["status"] == "ok"
        ready = json.loads(service.handle_line(line("ready")))["result"]
        assert ready["ready"] is False  # not warmed yet
        service.backend.warm((7,))
        assert json.loads(
            service.handle_line(line("ready"))
        )["result"]["ready"] is True

    def test_expired_deadline_is_typed(self, service):
        out = json.loads(service.handle_line(line("classify", {
            "target": 7, "deadline_ms": 0,
        })))
        assert out["error"]["kind"] == "deadline_exceeded"

    def test_draining_refuses_work_but_answers_health(self, service):
        service.draining = True
        out = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert out["error"]["kind"] == "shutting_down"
        health = json.loads(service.handle_line(line("health")))
        assert "result" in health

    def test_junk_never_raises(self, service):
        for junk in ("", "{", "[]", '{"jsonrpc":"2.0"}', "\x00\xff"):
            out = json.loads(service.handle_line(junk))
            assert "error" in out

    def test_internal_errors_are_sanitised(self, service, monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("secret traceback detail")

        monkeypatch.setattr(service.backend, "classify", boom)
        out = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert out["error"]["kind"] == "internal_error"
        assert "secret" not in out["error"]["message"]


class TestBreakerFlow:
    def test_trip_degraded_reply_then_half_open_recovery(self, service, host):
        clock = service.clock
        backend = service.backend
        backend.warm((7,))  # record last-good snapshots
        plan = build_soak_plan(host, 7, 0.0, 100.0)
        backend.set_machine(plan.apply(host, at_s=1.0))

        # Two consecutive solver failures trip the breaker; the tripping
        # request itself downgrades to the last-good answer.
        first = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert first["error"]["kind"] == "solver_error"
        second = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert second["result"]["degraded"] is True
        assert service.breaker.state == CircuitBreaker.OPEN

        # While open: degraded answers without touching the solver.
        out = json.loads(service.handle_line(line("advise", {
            "target": 7, "tasks": 3,
        })))
        assert out["result"]["degraded"] is True

        # Open + no snapshot coverage -> typed unavailable.
        out = json.loads(service.handle_line(line("plan", {})))
        assert out["error"]["kind"] == "unavailable"

        # Fabric heals; once the window elapses the half-open probe
        # succeeds and the service is fully live again.
        backend.restore_machine()
        clock.advance(2.0)
        out = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert out["result"]["degraded"] is False
        assert service.breaker.state == CircuitBreaker.CLOSED

    def test_caller_mistakes_do_not_trip(self, service):
        for _ in range(3):
            out = json.loads(service.handle_line(line("classify", {
                "target": 99,
            })))
            assert out["error"]["kind"] == "invalid_params"
        assert service.breaker.state == CircuitBreaker.CLOSED


async def _client(port, lines):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for payload in lines:
        writer.write((payload + "\n").encode())
    await writer.drain()
    out = [json.loads(await reader.readline()) for _ in lines]
    writer.close()
    await writer.wait_closed()
    return out


class TestAsyncTransport:
    def test_requests_answered_over_tcp(self, service):
        async def run():
            server = AsyncPlacementServer(
                service, ServiceConfig(port=0, queue_limit=8, workers=2)
            )
            await server.start()
            out = await _client(server.port, [
                line("health", req_id=1),
                line("advise", {"target": 7, "tasks": 2}, req_id=2),
            ])
            await server.drain()
            return out

        replies = asyncio.run(run())
        assert {r["id"] for r in replies} == {1, 2}
        assert all("result" in r for r in replies)

    def test_queue_full_rejects_with_overloaded(self, service):
        release = threading.Event()
        real = service.handle_line

        def slow(request_line):
            release.wait(timeout=10)
            return real(request_line)

        service.handle_line = slow

        async def run():
            server = AsyncPlacementServer(
                service, ServiceConfig(port=0, queue_limit=1, workers=1)
            )
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            # 1 in-flight + 1 queued + N rejected
            for i in range(4):
                writer.write((line("health", req_id=i) + "\n").encode())
                await writer.drain()
                await asyncio.sleep(0.05)  # let admission happen in order
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            release.set()
            rest = [json.loads(await reader.readline()) for _ in range(2)]
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return [first, second] + rest, server.rejected

        replies, rejected = asyncio.run(run())
        kinds = [r["error"]["kind"] for r in replies if "error" in r]
        assert kinds.count("overloaded") == 2
        assert rejected == 2
        assert sum(1 for r in replies if "result" in r) == 2

    def test_deadline_cancels_slow_request(self, service):
        release = threading.Event()
        real = service.handle_line

        def slow(request_line):
            release.wait(timeout=10)
            return real(request_line)

        service.handle_line = slow
        service.clock = __import__("time").monotonic  # real queue-wait timing

        async def run():
            server = AsyncPlacementServer(
                service, ServiceConfig(port=0, queue_limit=4, workers=1)
            )
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write((line("health", req_id=1) + "\n").encode())
            writer.write(
                (line("classify", {"target": 7, "deadline_ms": 100}, req_id=2)
                 + "\n").encode()
            )
            await writer.drain()
            # Pin the single worker on request 1 for longer than request
            # 2's deadline, then let it go.
            await asyncio.sleep(0.3)
            release.set()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            await server.drain()
            return first, second

        first, second = asyncio.run(run())
        # The slow in-flight request pins the single worker; the queued
        # request's deadline expires and it is answered with the typed
        # error as soon as a worker picks it up.
        answered = {first["id"]: first, second["id"]: second}
        assert answered[2]["error"]["kind"] == "deadline_exceeded"

    def test_drain_answers_queued_work_then_refuses(self, service):
        async def run():
            server = AsyncPlacementServer(
                service, ServiceConfig(port=0, queue_limit=8, workers=2)
            )
            await server.start()
            port = server.port
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write((line("health", req_id=1) + "\n").encode())
            await writer.drain()
            first = json.loads(await reader.readline())
            await server.drain()
            assert service.draining
            # The listener is closed: new connections are refused.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            writer.close()
            await writer.wait_closed()
            return first

        first = asyncio.run(run())
        assert "result" in first


class TestLiveMetrics:
    """The always-on live plane: metrics method, flight recorder, drift."""

    def test_health_reports_uptime_and_flight_occupancy(self, service):
        before = json.loads(service.handle_line(line("health")))["result"]
        assert before["uptime_s"] == 0.0  # logical clock has not ticked
        assert before["flight_recorder"]["span_capacity"] > 0
        service.clock.advance(3.0)
        after = json.loads(service.handle_line(line("health")))["result"]
        assert after["uptime_s"] == 3.0
        # The first health answer became a completed span.
        assert after["flight_recorder"]["span_total"] == 1

    def test_ready_reports_warm_target_count(self, service):
        ready = json.loads(service.handle_line(line("ready")))["result"]
        assert ready["warm_targets"] == 0
        service.backend.warm((7,))
        ready = json.loads(service.handle_line(line("ready")))["result"]
        assert ready["warm_targets"] == 1

    def test_metrics_method_round_trip(self, service):
        service.backend.warm((7,))
        service.handle_line(line("advise", {"target": 7, "tasks": 4}))
        service.handle_line(line("classify", {"target": 7}))
        out = json.loads(service.handle_line(line("metrics")))
        result = out["result"]
        assert result["requests"] == 3
        assert result["tiers"]["2"] == 2
        assert result["counters"]["service.tier.2.answers"] == 2
        hist = result["histograms"]["service.latency.method.advise"]
        assert hist["count"] == 1
        assert hist["p99"] == 0.0  # logical clock: every duration is 0
        assert result["drift"]["watched"] == 2  # write + read models
        assert "flight" not in result

    def test_metrics_flight_param_dumps_recorder(self, service):
        service.backend.warm((7,))
        service.handle_line(line("advise", {"target": 7, "tasks": 4}))
        out = json.loads(service.handle_line(
            line("metrics", {"flight": True})
        ))
        flight = out["result"]["flight"]
        assert flight["spans"][0]["name"] == "advise"
        assert flight["spans"][0]["tag"] == 2

    def test_metrics_answered_while_draining(self, service):
        service.draining = True
        out = json.loads(service.handle_line(line("metrics")))
        assert "result" in out

    def test_typed_errors_become_flight_events(self, service):
        service.handle_line(line("classify", {"target": 99}))
        # Error events are buffered; any plane read (here the public
        # metrics method) drains them into the ring.
        out = json.loads(service.handle_line(line("metrics", {"flight": True})))
        events = out["result"]["flight"]["events"]
        assert events[-1]["kind"] == "error"
        assert events[-1]["tags"] == {"kind": "invalid_params"}

    def test_breaker_trip_fires_event_counter_and_dump_sink(
        self, service, host
    ):
        dumps = []
        service.flight_dump_sink = dumps.append
        service.backend.warm((7,))
        plan = build_soak_plan(host, 7, 0.0, 100.0)
        service.backend.set_machine(plan.apply(host, at_s=1.0))
        service.handle_line(line("classify", {"target": 7}))
        service.handle_line(line("classify", {"target": 7}))
        assert service.breaker.state == CircuitBreaker.OPEN
        assert service.live.counters["service.breaker.trips"] == 1
        trip_events = [
            e for e in service.live.flight.events()
            if e["kind"] == "breaker-trip"
        ]
        assert len(trip_events) == 1
        assert trip_events[0]["tags"]["state"] == CircuitBreaker.OPEN
        assert len(dumps) == 1 and "spans" in dumps[0]

    def test_drift_drill_degraded_fabric_fires_event(self, service, host):
        from repro.faults.events import LinkDegrade
        from repro.faults.plan import FaultedMachine
        from repro.obs.live import REGIME_BANDWIDTH, REGIME_CONTENTION

        backend = service.backend
        backend.warm((7,))  # reference characterization
        # Serve a few fast-tier answers off the healthy model.
        for i in range(3):
            service.handle_line(line("classify", {"target": 7}, req_id=i))
        assert service.drift.events == 0

        # Derate every cable touching the device node, both directions:
        # solves still succeed, but the class bandwidths drop far past
        # the 10% drift threshold.
        cables = sorted(
            {tuple(sorted(ends)) for ends in host.links if 7 in ends}
        )
        faults = [
            LinkDegrade(src, dst, 0.4)
            for a, b in cables for src, dst in ((a, b), (b, a))
        ]
        backend.set_machine(FaultedMachine(host, faults))
        out = json.loads(service.handle_line(line("classify", {"target": 7})))
        assert "result" in out  # the faulted solve lands (tier 3)
        assert out["result"]["tier"] == 3

        assert service.drift.events == 1
        event = service.drift.last
        assert event["target"] == 7 and event["mode"] == "write"
        assert event["deviation"] > 0.10
        assert event["served_answers"] == 3
        assert event["regime"] in (REGIME_BANDWIDTH, REGIME_CONTENTION)
        assert service.live.counters["service.drift.events"] == 1
        drift_events = [
            e for e in service.live.flight.events() if e["kind"] == "drift"
        ]
        assert len(drift_events) == 1 and drift_events[0]["tags"] == event

    def test_queue_wait_histogram_fills_over_tcp(self, service):
        async def run():
            server = AsyncPlacementServer(
                service, ServiceConfig(port=0, queue_limit=8, workers=2)
            )
            await server.start()
            await _client(server.port, [line("health", req_id=1)])
            await server.drain()

        asyncio.run(run())
        assert service.live.hists["service.queue_wait"].count == 1

    def test_null_plane_disables_recording(self, host):
        from repro.obs.live import NullLivePlane

        backend = AdvisoryBackend(host, registry=RngRegistry(), runs=3)
        service = PlacementService(
            backend, clock=LogicalClock(), live=NullLivePlane()
        )
        assert service.drift is None
        service.handle_line(line("advise", {"target": 7, "tasks": 4}))
        assert service.live.hists == {}
        assert service.live.counters == {}
        assert service.live.flight.span_total == 0
