"""CLI workflows spanning several subcommands."""

import json

from repro.cli.main import main


class TestPredictMeasure:
    def test_predict_with_measurement(self, capsys):
        assert main(["predict", "--streams", "2,2,0,0", "--measure"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 1 prediction" in out
        assert "relative error" in out


class TestAdviseCompare:
    def test_advise_with_comparison(self, capsys):
        assert main(["advise", "--tasks", "8", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "tasks over classes" in out
        assert "spread:" in out
        assert "all-local:" in out


class TestExperimentJson:
    def test_json_artifact_written(self, tmp_path, capsys):
        target = tmp_path / "t3.json"
        assert main(["experiment", "t3", "--quick", "--json", str(target)]) == 0
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["exp_id"] == "t3"
        assert data["passed"] is True
        assert data["checks"]

    def test_all_with_outdir(self, tmp_path, capsys):
        outdir = tmp_path / "artifacts"
        assert main(["experiment", "all", "--quick", "--outdir", str(outdir)]) == 0
        files = sorted(p.name for p in outdir.glob("*.txt"))
        assert "t1.txt" in files and "fw2.txt" in files
        assert len(files) == 21

    def test_all_with_jobs_merges_in_registry_order(self, tmp_path, capsys):
        outdir = tmp_path / "artifacts"
        assert main(["experiment", "all", "--quick", "--jobs", "2",
                     "--outdir", str(outdir)]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if " PASS " in line]
        assert [line.split()[0] for line in lines] == [
            "t1", "t2", "t3", "f3", "f4", "f5", "f6", "f7", "f10",
            "t4", "t5", "eq1", "s1",
            "a1", "a2", "a3", "a4", "a5", "a6", "fw1", "fw2",
        ]
        # Per-experiment wall time column plus the wall-clock summary.
        assert all(" s  " in line for line in lines)
        assert "21 experiments in" in out
        assert len(list(outdir.glob("*.txt"))) == 21

    def test_all_rejects_nonpositive_jobs(self, capsys):
        assert main(["experiment", "all", "--quick", "--jobs", "0"]) == 2


class TestOnlineTraces:
    def test_save_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "wl.trace"
        assert main(["online", "--streams", "8", "--rate", "0.3",
                     "--save-trace", str(trace)]) == 0
        first = capsys.readouterr().out
        assert trace.exists()
        assert main(["online", "--trace", str(trace)]) == 0
        second = capsys.readouterr().out
        assert "replaying 8 streams" in second
        # Same workload, same seed: identical policy lines.
        policy_lines = lambda text: [  # noqa: E731
            line for line in text.splitlines() if "mean" in line
        ]
        assert policy_lines(first) == policy_lines(second)


class TestPlan:
    def test_plan_recommendation(self, capsys):
        assert main(["plan", "--write-weight", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "attachment ranking" in out
        assert "recommendation: attach at node" in out
