#!/usr/bin/env sh
# Service smoke: replay the scripted soak trace twice — once healthy,
# once with the fault plan firing mid-stream — and prove the
# deterministic-twin contract: same seed -> byte-identical response
# streams, every request answered exactly once, breaker tripped and
# recovered.  Then drive the stdio transport with a scripted session
# and check it, too, answers identically across runs.
set -eu

cd "$(dirname "$0")/.."

TMPDIR="${TMPDIR:-/tmp}"
A="$TMPDIR/service_smoke_a.$$"
B="$TMPDIR/service_smoke_b.$$"
trap 'rm -f "$A" "$B"' EXIT

echo "== chaos soak: fault plan firing mid-stream"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3

echo
echo "== determinism: faulted soak twice with seed 7 (full JSON report)"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --json > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --json > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: faulted soak report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
echo "OK: faulted response stream bit-identical across runs"

echo
echo "== determinism: healthy soak twice with seed 7"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --no-fault --json > "$A"
PYTHONPATH=src python -m repro.cli.main --seed 7 serve --soak \
    --requests 120 --runs 3 --no-fault --json > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: healthy soak report is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
echo "OK: healthy response stream bit-identical across runs"

echo
echo "== stdio transport: scripted session twice"
TRACE='{"jsonrpc":"2.0","id":1,"method":"ready"}
{"jsonrpc":"2.0","id":2,"method":"classify","params":{"target":7}}
{"jsonrpc":"2.0","id":3,"method":"advise","params":{"target":7,"tasks":4,"avoid_irq_node":true}}
{"jsonrpc":"2.0","id":4,"method":"predict_eq1","params":{"target":7,"streams":[0,1,6]}}
{"jsonrpc":"2.0","id":5,"method":"advise","params":{"target":99,"tasks":1}}
not even json
{"jsonrpc":"2.0","id":7,"method":"classify","params":{"target":7,"deadline_ms":0}}'
printf '%s\n' "$TRACE" | PYTHONPATH=src python -m repro.cli.main --seed 7 \
    serve --stdio --runs 3 > "$A"
printf '%s\n' "$TRACE" | PYTHONPATH=src python -m repro.cli.main --seed 7 \
    serve --stdio --runs 3 > "$B"
if ! cmp -s "$A" "$B"; then
    echo "FAIL: stdio response stream is not bit-identical across runs" >&2
    diff "$A" "$B" >&2 || true
    exit 1
fi
RESPONSES=$(wc -l < "$A" | tr -d ' ')
if [ "$RESPONSES" != "7" ]; then
    echo "FAIL: expected 7 responses (one per request), got $RESPONSES" >&2
    exit 1
fi
echo "OK: stdio session answered 7/7 requests, bit-identical across runs"
