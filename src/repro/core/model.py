"""The I/O performance model objects (the paper's Tables IV and V).

Models serialise to JSON-compatible dicts (:meth:`IOPerformanceModel.
to_dict` / :meth:`from_dict`): a host is characterised once and the
saved model is what schedulers load at runtime — the paper's intended
deployment (§V-B, "assist resource schedulers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.classify import PerfClass
from repro.errors import ModelError

__all__ = ["IOPerformanceModel", "OperationRow", "ModelTable"]

_MODEL_FORMAT_VERSION = 1


@dataclass(frozen=True)
class IOPerformanceModel:
    """A per-target-node NUMA I/O performance model.

    Produced by Algorithm 1 (:class:`~repro.core.iomodel.IOModelBuilder`):
    per-node memcpy bandwidths plus their class structure, for one
    ``mode`` (``"write"``: data into the device's node; ``"read"``: data
    out of it).
    """

    machine_name: str
    target_node: int
    mode: str
    values: dict[int, float]
    classes: tuple[PerfClass, ...]
    threads: int
    runs: int

    def __post_init__(self) -> None:
        if self.mode not in ("write", "read"):
            raise ModelError(f"mode must be 'write' or 'read', got {self.mode!r}")
        classified = [n for c in self.classes for n in c.node_ids]
        if sorted(classified) != sorted(self.values):
            raise ModelError(
                "classes do not partition the measured node set: "
                f"{sorted(classified)} vs {sorted(self.values)}"
            )

    @property
    def n_classes(self) -> int:
        """Number of performance classes."""
        return len(self.classes)

    def class_of(self, node: int) -> PerfClass:
        """The class containing ``node``."""
        for cls in self.classes:
            if node in cls:
                return cls
        raise ModelError(f"node {node} is not in this model")

    def class_by_rank(self, rank: int) -> PerfClass:
        """The class with 1-based ``rank``."""
        for cls in self.classes:
            if cls.rank == rank:
                return cls
        raise ModelError(f"no class with rank {rank}")

    def representative_nodes(self) -> tuple[int, ...]:
        """One probe node per class — the §V-B cost-reduction test set."""
        return tuple(cls.node_ids[0] for cls in self.classes)

    def probe_cost_reduction(self) -> float:
        """Fraction of probe configurations the class model saves.

        The paper's example: 8 read setups collapse to 4 classes — a
        50 % reduction.
        """
        return 1.0 - self.n_classes / len(self.values)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible description of this model."""
        return {
            "format_version": _MODEL_FORMAT_VERSION,
            "machine_name": self.machine_name,
            "target_node": self.target_node,
            "mode": self.mode,
            "threads": self.threads,
            "runs": self.runs,
            "values": {str(n): v for n, v in sorted(self.values.items())},
            "classes": [
                {"rank": c.rank, "node_ids": list(c.node_ids)}
                for c in self.classes
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IOPerformanceModel":
        """Rebuild a model saved with :meth:`to_dict`."""
        version = data.get("format_version")
        if version != _MODEL_FORMAT_VERSION:
            raise ModelError(
                f"unsupported model format version {version!r} "
                f"(this library writes {_MODEL_FORMAT_VERSION})"
            )
        try:
            values = {int(n): float(v) for n, v in data["values"].items()}
            classes = tuple(
                PerfClass(
                    rank=entry["rank"],
                    node_ids=tuple(entry["node_ids"]),
                    values={n: values[n] for n in entry["node_ids"]},
                )
                for entry in data["classes"]
            )
            return cls(
                machine_name=data["machine_name"],
                target_node=data["target_node"],
                mode=data["mode"],
                values=values,
                classes=classes,
                threads=data["threads"],
                runs=data["runs"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed model description: {exc}") from exc

    def render(self) -> str:
        """Text table in the Tables IV/V layout (Proposed memcpy row)."""
        lines = [
            f"I/O performance model — {self.machine_name}, node {self.target_node}, "
            f"device {self.mode} (memcpy, {self.threads} threads, "
            f"avg of {self.runs} runs)"
        ]
        header = "            " + "".join(
            f"Class {c.rank}".rjust(16) for c in self.classes
        )
        lines.append(header)
        lines.append(
            "Node ID     "
            + "".join(
                ",".join(map(str, c.node_ids)).rjust(16) for c in self.classes
            )
        )
        lines.append(
            "Range (Gbps)"
            + "".join(f"{c.lo:.1f} - {c.hi:.1f}".rjust(16) for c in self.classes)
        )
        lines.append(
            "Avg (Gbps)  " + "".join(f"{c.avg:.1f}".rjust(16) for c in self.classes)
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class OperationRow:
    """Per-class range/average of one measured operation (a table row)."""

    operation: str
    per_class_lo: tuple[float, ...]
    per_class_hi: tuple[float, ...]
    per_class_avg: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.per_class_lo) == len(self.per_class_hi) == len(self.per_class_avg)
        ):
            raise ModelError(f"row {self.operation!r}: ragged class columns")


@dataclass(frozen=True)
class ModelTable:
    """A full Table IV/V: the memcpy model plus measured I/O rows.

    Built with :meth:`from_measurements`: per-node measured bandwidths of
    each real operation are folded into the *model's* classes, which is
    exactly how the paper presents its validation.
    """

    model: IOPerformanceModel
    rows: tuple[OperationRow, ...] = field(default_factory=tuple)

    @classmethod
    def from_measurements(
        cls,
        model: IOPerformanceModel,
        measurements: Mapping[str, Mapping[int, float]],
    ) -> "ModelTable":
        """Fold per-node operation measurements into the model's classes."""
        rows = [
            OperationRow(
                operation="Proposed memcpy",
                per_class_lo=tuple(c.lo for c in model.classes),
                per_class_hi=tuple(c.hi for c in model.classes),
                per_class_avg=tuple(c.avg for c in model.classes),
            )
        ]
        for operation, per_node in measurements.items():
            missing = [n for n in model.values if n not in per_node]
            if missing:
                raise ModelError(
                    f"operation {operation!r} lacks nodes {missing} "
                    "required by the model"
                )
            lo, hi, avg = [], [], []
            for c in model.classes:
                vals = [per_node[n] for n in c.node_ids]
                lo.append(min(vals))
                hi.append(max(vals))
                avg.append(float(np.mean(vals)))
            rows.append(
                OperationRow(
                    operation=operation,
                    per_class_lo=tuple(lo),
                    per_class_hi=tuple(hi),
                    per_class_avg=tuple(avg),
                )
            )
        return cls(model=model, rows=tuple(rows))

    def row(self, operation: str) -> OperationRow:
        """The row for ``operation``."""
        for r in self.rows:
            if r.operation == operation:
                return r
        raise ModelError(f"table has no row {operation!r}")

    def render(self) -> str:
        """Tables IV/V layout: operations x classes, range + avg."""
        model = self.model
        title = (
            f"NUMA I/O bandwidth performance model for device "
            f"{model.mode} (unit: Gbps) — node {model.target_node}"
        )
        width = 14
        lines = [title]
        lines.append(
            "Operation".ljust(18)
            + "".ljust(7)
            + "".join(f"Class {c.rank}".rjust(width) for c in model.classes)
        )
        lines.append(
            "".ljust(18)
            + "Node".ljust(7)
            + "".join(
                ",".join(map(str, c.node_ids)).rjust(width) for c in model.classes
            )
        )
        for r in self.rows:
            lines.append(
                r.operation.ljust(18)
                + "Range".ljust(7)
                + "".join(
                    f"{lo:.1f}-{hi:.1f}".rjust(width)
                    for lo, hi in zip(r.per_class_lo, r.per_class_hi)
                )
            )
            lines.append(
                "".ljust(18)
                + "Avg".ljust(7)
                + "".join(f"{a:.1f}".rjust(width) for a in r.per_class_avg)
            )
        return "\n".join(lines)
