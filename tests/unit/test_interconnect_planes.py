"""Traffic plane identifiers."""

import pytest

from repro.errors import RoutingError
from repro.interconnect.planes import ALL_PLANES, PLANE_DMA, PLANE_PIO, validate_plane


def test_known_planes():
    assert PLANE_PIO in ALL_PLANES
    assert PLANE_DMA in ALL_PLANES
    assert len(ALL_PLANES) == 2


def test_validate_accepts_known():
    assert validate_plane(PLANE_PIO) == PLANE_PIO
    assert validate_plane(PLANE_DMA) == PLANE_DMA


def test_validate_rejects_unknown():
    with pytest.raises(RoutingError):
        validate_plane("isochronous")
