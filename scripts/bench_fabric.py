#!/usr/bin/env python
"""Record BENCH_fabric.json: the worker-fabric evidence.

Four paired measurements, written in pytest-benchmark JSON shape so
``scripts/bench_gate.py`` gates them like every other suite:

* ``fabric_sweep_serial_64n`` / ``fabric_sweep_jobs4_64n`` — the
  64-node both-mode characterization sweep, serial vs sharded over a
  4-worker :class:`~repro.fabric.FabricPool`.  On a multi-core host the
  sharded mean should sit near serial/4; on a single-core host (CI
  sandboxes) it records the fabric's overhead instead — the honest
  number either way, with ``cpu_count`` in ``machine_info`` saying
  which regime produced it.
* ``fabric_dispatch_pickle_per_task`` / ``fabric_dispatch_attach`` —
  per-task dispatch cost on a 256-node machine: shipping the serialized
  machine with every task (the pre-fabric protocol: every task pays
  serialization, transport, and reconstruction) vs attach-by-fingerprint
  (tasks carry a segment name; workers map the arena once and hit their
  cache after).  This is the zero-copy win and it does not need spare
  cores to show up.
* ``fabric_service_solve_inline`` / ``fabric_service_solve_pool`` —
  cold Algorithm 1 builds through :class:`AdvisoryBackend`, in-process
  vs the process-pool solver tier (per-solve mean, fresh seeds each
  round so no cache tier hides the build).

Usage::

    PYTHONPATH=src python scripts/bench_fabric.py [OUT.json]
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time

from repro.core.characterize import HostCharacterizer
from repro.fabric import FabricPool
from repro.fabric.pool import _WORKER_MACHINE_LIMIT
from repro.rng import RngRegistry
from repro.service.backend import AdvisoryBackend
from repro.solver.capacity import machine_fingerprint
from repro.solver.session import reset_sessions
from repro.topology.builders import reference_host, scaled_host
from repro.topology.serialize import machine_to_dict

SWEEP_RUNS = 5
SWEEP_ROUNDS = 3
DISPATCH_TASKS = 32
DISPATCH_ROUNDS = 5
SERVICE_ROUNDS = 3


def _stats(samples: "list[float]") -> dict:
    return {
        "mean": statistics.fmean(samples),
        "min": min(samples),
        "max": max(samples),
        "stddev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "rounds": len(samples),
    }


def _bench(fn, rounds: int) -> dict:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return _stats(samples)


def bench_sweep(results: list) -> "tuple[float, float]":
    machine = scaled_host(32)  # 64 nodes
    nodes = list(machine.node_ids)

    def serial():
        reset_sessions()
        HostCharacterizer(
            machine, registry=RngRegistry(), runs=SWEEP_RUNS
        ).characterize_many(tuple(nodes))

    serial_stats = _bench(serial, SWEEP_ROUNDS)
    results.append({"name": "fabric_sweep_serial_64n", "stats": serial_stats})

    with FabricPool(jobs=4) as pool:
        def sharded():
            pool.characterize_many(
                machine, nodes, registry=RngRegistry(), runs=SWEEP_RUNS
            )

        sharded()  # warm the workers and the arena once
        sharded_stats = _bench(sharded, SWEEP_ROUNDS)
    results.append({"name": "fabric_sweep_jobs4_64n", "stats": sharded_stats})
    return serial_stats["mean"], sharded_stats["mean"]


def bench_dispatch(results: list) -> "tuple[float, float]":
    machine = scaled_host(128)  # 256 nodes: serialization that hurts
    fingerprint = machine_fingerprint(machine)
    description = machine_to_dict(machine)

    with FabricPool(jobs=1) as pool:
        executor_tasks = pool  # dispatch through the pool's task plumbing

        def pickle_per_task():
            # Unique fingerprints defeat the worker cache on purpose:
            # every task pays serialization + transport + reconstruction,
            # exactly like a pool with no arenas would.
            tasks = [
                executor_tasks._task(
                    "ping",
                    {
                        "fingerprint": f"{fingerprint}-{os.getpid()}-{i}",
                        "segment": None,
                        "machine": description,
                    },
                    pool.seed,
                    {},
                )
                for i in range(DISPATCH_TASKS)
            ]
            executor_tasks._run_tasks(tasks)

        def attach_by_fingerprint():
            ref = executor_tasks._machine_ref(machine)
            tasks = [
                executor_tasks._task("ping", ref, pool.seed, {})
                for _ in range(DISPATCH_TASKS)
            ]
            executor_tasks._run_tasks(tasks)

        # Warm both paths (fork cost, first attach, first rebuild).
        attach_by_fingerprint()
        pickle_per_task()
        pickle_stats = _bench(pickle_per_task, DISPATCH_ROUNDS)
        attach_stats = _bench(attach_by_fingerprint, DISPATCH_ROUNDS)

    results.append(
        {"name": "fabric_dispatch_pickle_per_task", "stats": pickle_stats}
    )
    results.append({"name": "fabric_dispatch_attach", "stats": attach_stats})
    return pickle_stats["mean"], attach_stats["mean"]


def bench_service(results: list) -> "tuple[float, float]":
    host = reference_host()
    targets = list(host.node_ids)

    def cold_solves(solver_pool, seed):
        backend = AdvisoryBackend(
            host, registry=RngRegistry(seed), runs=10, solver_pool=solver_pool
        )
        start = time.perf_counter()
        for target in targets:
            backend.model(target, "write")
        return (time.perf_counter() - start) / len(targets)

    inline_samples = [
        cold_solves(None, 1000 + round_idx) for round_idx in range(SERVICE_ROUNDS)
    ]
    results.append(
        {"name": "fabric_service_solve_inline", "stats": _stats(inline_samples)}
    )

    with FabricPool(jobs=2) as pool:
        cold_solves(pool, 999)  # warm the workers and the arena
        pool_samples = [
            cold_solves(pool, 2000 + round_idx)
            for round_idx in range(SERVICE_ROUNDS)
        ]
    results.append(
        {"name": "fabric_service_solve_pool", "stats": _stats(pool_samples)}
    )
    return _stats(inline_samples)["mean"], _stats(pool_samples)["mean"]


def main(argv: "list[str]") -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_fabric.json"
    cpu_count = os.cpu_count() or 1
    results: list = []

    serial_mean, sharded_mean = bench_sweep(results)
    print(f"sweep 64n: serial {serial_mean * 1e3:.1f} ms, "
          f"jobs=4 {sharded_mean * 1e3:.1f} ms "
          f"(x{serial_mean / sharded_mean:.2f}, {cpu_count} cpus)")

    pickle_mean, attach_mean = bench_dispatch(results)
    print(f"dispatch 256n x{DISPATCH_TASKS}: pickle-per-task "
          f"{pickle_mean * 1e3:.1f} ms, attach {attach_mean * 1e3:.1f} ms "
          f"(x{pickle_mean / attach_mean:.2f})")

    inline_mean, pool_mean = bench_service(results)
    print(f"service cold solve: inline {inline_mean * 1e3:.2f} ms, "
          f"pool {pool_mean * 1e3:.2f} ms")

    payload = {
        "machine_info": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "system": platform.system(),
        },
        "extra_info": {
            "sweep_speedup_jobs4": round(serial_mean / sharded_mean, 3),
            "dispatch_speedup_attach": round(pickle_mean / attach_mean, 3),
            "worker_machine_cache": _WORKER_MACHINE_LIMIT,
            "caveats": (
                "sweep_speedup_jobs4 needs spare cores to exceed 1.0; on a "
                f"{cpu_count}-cpu host it records fabric overhead, not "
                "parallel speedup. dispatch_speedup_attach is "
                "core-count-independent: it compares per-task machine "
                "serialization against attach-by-fingerprint."
            ),
        },
        "benchmarks": results,
    }
    from repro.journal.atomic import atomic_write_json

    atomic_write_json(out_path, payload, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
