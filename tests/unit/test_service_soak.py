"""Chaos soak: totality, seed determinism, breaker recovery."""

import json

import pytest

from repro.rng import RngRegistry
from repro.service.soak import build_soak_plan, build_traffic, run_soak


@pytest.fixture(scope="module")
def report():
    return run_soak(requests=80, runs=3)


class TestTotality:
    def test_every_request_answered_exactly_once(self, report):
        assert len(report.responses) == report.requests
        assert report.answered == report.requests

    def test_every_response_is_result_degraded_or_typed_error(self, report):
        for response in report.responses:
            payload = json.loads(response)
            assert ("result" in payload) != ("error" in payload)
            if "error" in payload:
                assert "kind" in payload["error"]
                assert "Traceback" not in payload["error"]["message"]

    def test_mix_includes_all_three_outcomes(self, report):
        assert report.ok > 0
        assert report.degraded > 0
        assert sum(report.errors.values()) > 0


class TestDeterminism:
    def test_twin_runs_are_byte_identical(self, report):
        twin = run_soak(requests=80, runs=3)
        assert twin.responses == report.responses
        assert twin.to_dict() == report.to_dict()

    def test_different_seed_differs(self, report):
        other = run_soak(requests=80, runs=3, seed=99)
        assert other.responses != report.responses

    def test_traffic_is_registry_deterministic(self, host):
        t1 = build_traffic(RngRegistry(5), host, 7, 40)
        t2 = build_traffic(RngRegistry(5), host, 7, 40)
        assert t1 == t2


class TestRecovery:
    def test_breaker_trips_and_recovers(self, report):
        assert report.tripped
        assert report.recovered
        assert report.final_breaker_state == "closed"

    def test_healthy_twin_never_trips(self):
        healthy = run_soak(requests=40, runs=3, fault=False)
        assert not healthy.tripped
        assert healthy.degraded == 0
        assert healthy.answered == healthy.requests

    def test_fault_plan_isolates_the_victim(self, host):
        plan = build_soak_plan(host, 7, 1.0, 2.0)
        assert len(plan) > 0
        assert all("7" in e.fault.describe() for e in plan.events)
        assert plan.topology_faults_at(0.5) == ()
        assert len(plan.topology_faults_at(1.5)) == len(plan)
        assert plan.topology_faults_at(2.5) == ()

    def test_render_is_deterministic(self, report):
        assert report.render() == report.render()


class TestConvergenceSoak:
    """The self-healing drill: derate -> drift -> repair -> re-converge."""

    @pytest.fixture(scope="class")
    def converged(self):
        from repro.service.soak import run_convergence_soak

        return run_convergence_soak(requests=100, runs=3)

    def test_loop_closes_both_ways(self, converged):
        assert converged.answered == converged.requests
        assert converged.converged_during_fault
        assert converged.reconverged_after_clear
        assert converged.converged

    def test_never_serves_unlabelled_stale(self, converged):
        assert converged.unlabelled_stale == 0
        assert converged.final_quarantined == 0

    def test_repair_accounting_agrees_with_counters(self, converged):
        repair = converged.repair
        assert repair["jobs"] == 0 and repair["failed"] == 0
        assert repair["promoted"] >= 2  # fault window, then clearance
        counters = converged.counters
        assert counters["service.repair.started"] == repair["started"]
        assert counters["service.repair.promoted"] == repair["promoted"]
        assert counters["routing.rerouted_pairs"] > 0
        assert (converged.drift or {}).get("events", 0) >= 1

    def test_twin_runs_are_byte_identical(self, converged):
        from repro.service.soak import run_convergence_soak

        twin = run_convergence_soak(requests=100, runs=3)
        assert json.dumps(twin.to_dict(), sort_keys=True) == json.dumps(
            converged.to_dict(), sort_keys=True
        )

    def test_render_mentions_the_verdict(self, converged):
        text = converged.render()
        assert "-> true" in text
        assert "0 stale answers" in text
