"""Model-vs-measurement agreement metrics.

The paper validates its memcpy models by checking that real I/O
operations respect the same class structure (Tables IV/V) — not that
absolute numbers match.  These metrics quantify that:

* :func:`rank_correlation` — Spearman correlation between two per-node
  bandwidth maps (how well one model predicts another's ordering);
* :func:`class_ordering_holds` — do the measured class averages decrease
  with class rank (allowing a tolerance for the paper's own class-1/2
  ties)?
* :func:`class_separation` — are between-class gaps larger than
  within-class spreads under the measured operation?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import stats

from repro.core.model import IOPerformanceModel
from repro.errors import ModelError

__all__ = [
    "rank_correlation",
    "class_ordering_holds",
    "class_separation",
    "class_stability",
    "ValidationReport",
    "validate_model",
]


def rank_correlation(a: Mapping[int, float], b: Mapping[int, float]) -> float:
    """Spearman rho between two per-node bandwidth maps (common keys)."""
    keys = sorted(set(a) & set(b))
    if len(keys) < 3:
        raise ModelError(f"need >= 3 common nodes for a rank correlation, got {len(keys)}")
    rho = stats.spearmanr([a[k] for k in keys], [b[k] for k in keys]).statistic
    return float(rho)


def class_ordering_holds(
    model: IOPerformanceModel,
    measured: Mapping[int, float],
    tolerance: float = 0.05,
) -> bool:
    """True when measured class averages are non-increasing in rank.

    ``tolerance`` forgives inversions smaller than this relative margin —
    the paper's own tables contain such ties (TCP sender classes 1/2).
    """
    averages = []
    for cls in model.classes:
        vals = [measured[n] for n in cls.node_ids]
        averages.append(float(np.mean(vals)))
    for earlier, later in zip(averages, averages[1:]):
        if later > earlier * (1 + tolerance):
            return False
    return True


def class_separation(
    model: IOPerformanceModel, measured: Mapping[int, float]
) -> float:
    """Smallest between-adjacent-class gap over largest within-class spread.

    > 1 means the measured operation separates the model's classes more
    strongly than its own noise; values near 0 mean the class structure
    dissolved under this operation.
    """
    averages = []
    spreads = []
    for cls in model.classes:
        vals = [measured[n] for n in cls.node_ids]
        averages.append(float(np.mean(vals)))
        spreads.append(max(vals) - min(vals))
    if len(averages) < 2:
        raise ModelError("need >= 2 classes to measure separation")
    gaps = [abs(a - b) for a, b in zip(averages, averages[1:])]
    worst_spread = max(max(spreads), 1e-9)
    return min(gaps) / worst_spread


def class_stability(
    machine,
    target_node: int,
    mode: str,
    repeats: int = 10,
    runs: int = 25,
    seed: int = 0,
) -> float:
    """Fraction of independent re-characterisations yielding identical
    classes.

    Algorithm 1 is a measurement; measurements jitter.  A model worth
    deploying must produce the *same* class structure when the whole
    characterisation is repeated with fresh noise.  Returns the share of
    ``repeats`` runs whose classes match the modal structure (1.0 =
    perfectly stable, the reference host's expected value).
    """
    from collections import Counter

    from repro.core.iomodel import IOModelBuilder
    from repro.rng import RngRegistry

    if repeats < 2:
        raise ModelError(f"need >= 2 repeats, got {repeats}")
    structures = []
    for r in range(repeats):
        builder = IOModelBuilder(
            machine, registry=RngRegistry(seed).child(f"stability/{r}"), runs=runs
        )
        model = builder.build(target_node, mode)
        structures.append(tuple(tuple(sorted(c.node_ids)) for c in model.classes))
    counts = Counter(structures)
    _modal, frequency = counts.most_common(1)[0]
    return frequency / repeats


@dataclass(frozen=True)
class ValidationReport:
    """Agreement between one model and one measured operation."""

    operation: str
    spearman_rho: float
    ordering_holds: bool
    separation: float

    def render(self) -> str:
        """One-line summary."""
        return (
            f"{self.operation}: rho={self.spearman_rho:.3f}, "
            f"class ordering {'holds' if self.ordering_holds else 'VIOLATED'}, "
            f"separation {self.separation:.2f}"
        )


def validate_model(
    model: IOPerformanceModel,
    measurements: Mapping[str, Mapping[int, float]],
    tolerance: float = 0.05,
) -> dict[str, ValidationReport]:
    """Validate a model against several measured operations at once."""
    reports = {}
    for operation, per_node in measurements.items():
        reports[operation] = ValidationReport(
            operation=operation,
            spearman_rho=rank_correlation(model.values, per_node),
            ordering_holds=class_ordering_holds(model, per_node, tolerance),
            separation=class_separation(model, per_node),
        )
    return reports
